//! Conflict-free task scheduling via graph coloring.
//!
//! Vertices are tasks, edges are resource conflicts, colors are time slots.
//! Runs Boman coloring in both directions and all four §5 acceleration
//! strategies, reporting slots used and iterations — the Figure 1 / 6b
//! story on a scheduling workload.
//!
//! ```text
//! cargo run --release --example coloring_scheduler
//! ```

use std::time::Instant;

use pushpull::core::coloring::{self, GcOptions};
use pushpull::core::Direction;
use pushpull::graph::datasets::{Dataset, Scale};

fn main() {
    let threads = rayon::current_num_threads();
    let opts = GcOptions::default();

    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Small);
        println!(
            "\nworkload: {} ({} tasks, {} conflicts)",
            ds.description(),
            g.num_vertices(),
            g.num_edges()
        );
        println!(
            "{:>24} {:>8} {:>8} {:>10} {:>8}",
            "strategy", "slots", "iters", "time[ms]", "valid"
        );

        let run = |name: &str, f: &dyn Fn() -> coloring::GcResult| {
            let t = Instant::now();
            let r = f();
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:>24} {:>8} {:>8} {:>10.2} {:>8}",
                name,
                r.num_colors(),
                r.iterations,
                elapsed,
                coloring::is_proper_coloring(&g, &r.colors)
            );
        };

        run("Boman push", &|| {
            coloring::boman(&g, threads, Direction::Push, &opts)
        });
        run("Boman pull", &|| {
            coloring::boman(&g, threads, Direction::Pull, &opts)
        });
        run("Frontier-Exploit", &|| {
            coloring::frontier_exploit(&g, Direction::Push, &opts)
        });
        run("Generic-Switch", &|| {
            coloring::generic_switch(&g, 0.2, &opts)
        });
        run("Greedy-Switch", &|| coloring::greedy_switch(&g, 0.1, &opts));
        run("Conflict-Removal", &|| {
            coloring::conflict_removal(&g, threads)
        });
        run("sequential greedy", &|| {
            let t = Instant::now();
            let colors = coloring::greedy_seq(&g);
            coloring::GcResult {
                iterations: 1,
                iter_times: vec![t.elapsed()],
                conflicts_per_iter: vec![0],
                colors,
            }
        });
    }
    println!("\nTakeaway (§5/§6.2): Frontier-Exploit trades per-iteration cost");
    println!("for iteration count on dense conflict graphs; the switching");
    println!("strategies recover, and Conflict-Removal needs one pass when");
    println!("the border set is small.");
}
