//! Adaptive push⇄pull switching, live: BFS on the `pp-engine` runtime.
//!
//! Runs the same traversal three ways — always-push, always-pull, and the
//! Beamer-style adaptive policy — and prints the round-by-round trace from
//! the unified `RunReport`: the frontier swelling until the engine flips
//! to bottom-up (pull), then shrinking until it flips back.
//!
//! ```text
//! cargo run --release --example engine_bfs
//! ```

use pushpull::core::Direction;
use pushpull::engine::{algo, DirectionPolicy, Engine, ProbeShards};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::telemetry::{CountingProbe, NullProbe};

fn main() {
    let g = Dataset::Orc.generate(Scale::Test);
    let threads = 4;
    let engine = Engine::new(threads);
    println!(
        "graph: {} vertices, {} edges (orkut stand-in); engine: {} threads",
        g.num_vertices(),
        g.num_edges(),
        engine.threads()
    );

    // --- The adaptive schedule, round by round. ---
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let r = algo::bfs::bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
    println!("\nadaptive BFS from vertex 0 ({} reached):", r.reached());
    println!(
        "{:>6} {:>10} {:>12}  direction",
        "round", "frontier", "edges"
    );
    for round in &r.report.rounds {
        println!(
            "{:>6} {:>10} {:>12}  {}",
            round.round,
            round.frontier,
            round.frontier_edges,
            round.dir.label()
        );
    }
    println!(
        "({} push rounds, {} pull rounds, {} edges traversed)",
        r.report.push_rounds(),
        r.report.pull_rounds(),
        r.report.edges_traversed()
    );

    // --- Same results, different synchronization profile (§4.3). ---
    println!("\nevent counts per fixed schedule (merged from per-worker shards):");
    for dir in Direction::BOTH {
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let fixed = algo::bfs::bfs(&engine, &g, 0, DirectionPolicy::Fixed(dir), &probes);
        assert_eq!(fixed.level, r.level, "schedules must agree on levels");
        let c = probes.merged();
        println!(
            "  {dir:>7}: {:>9} atomics, {:>10} reads, {:>9} writes",
            c.atomics, c.reads, c.writes
        );
    }
    println!("\nidentical levels in all three schedules — switching is free of semantics.");
}
