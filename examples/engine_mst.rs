//! Boruvka MST on the `pp-engine` runtime: the paper's three timed phases
//! (§3.7, Figure 4) surfaced through the unified `RunReport`.
//!
//! Each Boruvka iteration contributes a Find-Minimum edge sweep plus two
//! vertex-step phases (Build Merge Tree, Merge) to the run, so
//! `RunReport::phase_rounds` recovers Figure 4's per-phase structure
//! directly — and the same `MstProgram` runs under every direction policy
//! and both execution modes, landing on the Kruskal-oracle forest weight
//! every time.
//!
//! ```text
//! cargo run --release --example engine_mst
//! ```

use pushpull::core::mst::kruskal_seq;
use pushpull::engine::{
    algo::mst::{MstPhaseKind, MstProgram},
    DirectionPolicy, Engine, ExecutionMode, ProbeShards, Runner,
};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::gen;
use pushpull::telemetry::CountingProbe;

fn main() {
    let g = gen::with_random_weights(&Dataset::Rca.generate(Scale::Test), 1, 100, 0x5eed);
    let engine = Engine::new(4);
    println!(
        "graph: {} vertices, {} weighted edges (road-network stand-in); engine: {} threads",
        g.num_vertices(),
        g.num_edges(),
        engine.threads()
    );

    let (kedges, kweight) = kruskal_seq(&g);
    println!(
        "sequential Kruskal oracle: {} forest edges, total weight {}\n",
        kedges.len(),
        kweight
    );

    println!(
        "{:>9} {:>7} {:>6} {:>5} {:>5} {:>4} {:>10} {:>12}",
        "policy", "mode", "iters", "FM", "BMT", "M", "atomics", "remote-sends"
    );
    for (policy_name, policy) in DirectionPolicy::sweep() {
        for (mode_name, mode) in ExecutionMode::sweep() {
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
            let run = Runner::new(&engine, &probes)
                .policy(policy)
                .mode(mode)
                .run(&g, MstProgram::new(&g));
            let (edges, weight) = run.output;
            assert_eq!(weight, kweight, "{policy_name}/{mode_name}: wrong weight");
            assert_eq!(edges.len(), kedges.len());

            // Phases cycle FM → BMT → M; count the rounds of each kind.
            let mut per_kind = [0usize; 3];
            for p in 0..run.report.phases {
                let idx = match MstPhaseKind::of(p) {
                    MstPhaseKind::FindMin => 0,
                    MstPhaseKind::BuildMergeTree => 1,
                    MstPhaseKind::Merge => 2,
                };
                per_kind[idx] += run.report.phase_rounds(p).count();
            }
            let c = probes.merged();
            println!(
                "{:>9} {:>7} {:>6} {:>5} {:>5} {:>4} {:>10} {:>12}",
                policy_name,
                mode_name,
                run.report.phases.div_ceil(3),
                per_kind[0],
                per_kind[1],
                per_kind[2],
                c.atomics,
                c.remote_sends
            );
        }
    }
    println!("\nsame forest weight from every schedule; the owner-computes mode trades");
    println!("every find-minimum CAS for buffered exchange sends (atomics column → 0).");
}
