//! One `Program`, every schedule: connected components on the `pp-engine`
//! runtime.
//!
//! Demonstrates the `Runner`/`Program` API directly (no convenience
//! wrapper): the same `CcProgram` label-min kernels run under push, pull,
//! and adaptive policies, land on the identical component labeling, and
//! the unified `RunReport` shows how differently the three schedules got
//! there.
//!
//! ```text
//! cargo run --release --example engine_cc
//! ```

use pushpull::core::components::connected_components as cc_seq;
use pushpull::core::Direction;
use pushpull::engine::{algo::components::CcProgram, DirectionPolicy, Engine, ProbeShards, Runner};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::telemetry::CountingProbe;

fn main() {
    let g = Dataset::Rca.generate(Scale::Test);
    let engine = Engine::new(4);
    println!(
        "graph: {} vertices, {} edges (road-network stand-in); engine: {} threads",
        g.num_vertices(),
        g.num_edges(),
        engine.threads()
    );

    let oracle = cc_seq(&g, Direction::Pull);
    println!(
        "sequential oracle: {} components\n",
        oracle.num_components()
    );

    println!(
        "{:>9} {:>8} {:>7} {:>7} {:>12} {:>10} {:>10}",
        "policy", "rounds", "push", "pull", "edges", "atomics", "reads"
    );
    for (name, policy) in DirectionPolicy::sweep() {
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let run = Runner::new(&engine, &probes)
            .policy(policy)
            .run(&g, CcProgram::new(&g));
        assert_eq!(
            run.output, oracle.labels,
            "{name}: schedule changed the fixpoint"
        );
        let c = probes.merged();
        println!(
            "{:>9} {:>8} {:>7} {:>7} {:>12} {:>10} {:>10}",
            name,
            run.report.num_rounds(),
            run.report.push_rounds(),
            run.report.pull_rounds(),
            run.report.edges_traversed(),
            c.atomics,
            c.reads
        );
    }
    println!("\nidentical labels from all three schedules — the Program is the algorithm,");
    println!("the Runner is the schedule.");
}
