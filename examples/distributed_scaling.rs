//! Distributed-memory what-if: pick a variant before you buy the cluster.
//!
//! Sweeps simulated rank counts for PageRank and triangle counting in all
//! three §6.3 variants and prints the modeled strong-scaling curves plus the
//! communication profile that explains them.
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use pushpull::dm::{dm_pagerank, dm_triangle_count, CostModel, DmVariant};
use pushpull::graph::datasets::{Dataset, Scale};

fn main() {
    let cost = CostModel::xc40();
    println!(
        "cost model (µs): α={}, int FAA={}, float accumulate={}",
        cost.alpha, cost.rma_faa_int, cost.rma_accumulate_float
    );

    // --- PageRank. ---
    let g = Dataset::Orc.generate(Scale::Small);
    println!(
        "\nPageRank on orkut stand-in ({} vertices, {} edges), modeled s/iter:",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "P", "Pushing", "Pulling", "Msg-Passing"
    );
    for p in [4usize, 16, 64, 256, 1024] {
        let row: Vec<f64> = DmVariant::ALL
            .iter()
            .map(|&v| dm_pagerank(&g, v, p, 1, 0.85, cost).modeled_seconds)
            .collect();
        println!(
            "{:>6} {:>12.5} {:>12.5} {:>12.5}",
            p, row[0], row[1], row[2]
        );
    }
    let push = dm_pagerank(&g, DmVariant::PushRma, 64, 1, 0.85, cost);
    let pull = dm_pagerank(&g, DmVariant::PullRma, 64, 1, 0.85, cost);
    let mp = dm_pagerank(&g, DmVariant::MsgPassing, 64, 1, 0.85, cost);
    println!("\nwhy (P = 64):");
    println!(
        "  push   issues {:>10} float accumulates (slow locking protocol)",
        push.stats.remote_accumulates
    );
    println!(
        "  pull   issues {:>10} remote gets (rank + degree per neighbor)",
        pull.stats.remote_gets
    );
    println!(
        "  MP     sends  {:>10} messages, peak buffer {} KiB (its memory price)",
        mp.stats.messages,
        mp.stats.peak_buffer_bytes / 1024
    );

    // --- Triangle counting: the asymmetry flips. ---
    let g = Dataset::Ljn.generate(Scale::Test);
    println!(
        "\nTriangle counting on livejournal stand-in ({} vertices), modeled s total:",
        g.num_vertices()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "P", "Pushing", "Pulling", "Msg-Passing"
    );
    for p in [4usize, 16, 64, 256] {
        let row: Vec<f64> = DmVariant::ALL
            .iter()
            .map(|&v| dm_triangle_count(&g, v, p, cost).modeled_seconds)
            .collect();
        println!(
            "{:>6} {:>12.5} {:>12.5} {:>12.5}",
            p, row[0], row[1], row[2]
        );
    }
    println!("\nTakeaway (§6.5): the same RMA machinery serves PR badly and TC");
    println!("well — TC's counters are integers with a hardware FAA fast path,");
    println!("PR's float accumulate takes the slow locking protocol. Variant");
    println!("choice is per-algorithm, not per-system.");
}
