//! Web/social ranking scenario: pick the right PageRank variant for your
//! graph.
//!
//! The paper's §6.2 finding is subtle: partition-aware pushing is the
//! *fastest* variant on dense social graphs but the *slowest* on sparse
//! road-like graphs — the atomics it removes only matter when atomics
//! dominate. This example measures all three variants on both regimes and
//! prints the crossover.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use std::time::Instant;

use pushpull::core::pagerank::{self, PrOptions, PushSync};
use pushpull::core::Direction;
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::{BlockPartition, PartitionAwareGraph};
use pushpull::telemetry::NullProbe;

fn main() {
    let opts = PrOptions {
        iters: 10,
        damping: 0.85,
    };
    let threads = rayon::current_num_threads();
    println!("threads: {threads}\n");

    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Small);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), threads));
        println!(
            "{} — {} vertices, {} edges, d̄ = {:.1}, remote arcs {:.0}%",
            ds.description(),
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            100.0 * pa.num_remote_arcs() as f64 / g.num_arcs() as f64
        );

        let t = Instant::now();
        let ranks = pagerank::pagerank(&g, Direction::Push, &opts);
        let t_push = t.elapsed();
        let t = Instant::now();
        pagerank::pagerank(&g, Direction::Pull, &opts);
        let t_pull = t.elapsed();
        let t = Instant::now();
        pagerank::pagerank_push_pa(&g, &pa, &opts, PushSync::Cas, &NullProbe);
        let t_pa = t.elapsed();

        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3 / opts.iters as f64;
        println!(
            "  push {:8.3} ms/iter | pull {:8.3} ms/iter | push+PA {:8.3} ms/iter",
            ms(t_push),
            ms(t_pull),
            ms(t_pa)
        );
        let best = [
            (ms(t_push), "push"),
            (ms(t_pull), "pull"),
            (ms(t_pa), "push+PA"),
        ]
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap();
        println!("  fastest here: {}\n", best.1);

        // The ranking itself: top five hubs.
        let mut idx: Vec<usize> = (0..ranks.len()).collect();
        idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
        print!("  top-5 ranked vertices:");
        for &v in idx.iter().take(5) {
            print!(" {v} ({:.5})", ranks[v]);
        }
        println!("\n");
    }
    println!("Takeaway (§6.2): PA pays off when remote-update synchronization");
    println!("dominates (dense graphs); on sparse graphs its extra phase and");
    println!("second offset array cost more than the atomics it saves.");
}
