//! Quickstart: the push–pull dichotomy in five minutes.
//!
//! Builds a small social-network stand-in, runs PageRank and BFS in both
//! directions, and shows the paper's core claim directly: identical
//! results, different synchronization profiles.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pushpull::core::{bfs, pagerank, Direction};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::telemetry::CountingProbe;

fn main() {
    let g = Dataset::Ljn.generate(Scale::Test);
    println!(
        "graph: {} vertices, {} edges (livejournal stand-in)",
        g.num_vertices(),
        g.num_edges()
    );

    // --- PageRank: same ranks either way. ---
    let opts = pagerank::PrOptions::default();
    let push = pagerank::pagerank(&g, Direction::Push, &opts);
    let pull = pagerank::pagerank(&g, Direction::Pull, &opts);
    let diff = pagerank::l1_distance(&push, &pull);
    println!("\nPageRank push-vs-pull L1 difference: {diff:.2e} (identical results)");

    // --- but very different synchronization (§4.1). ---
    for dir in Direction::BOTH {
        let probe = CountingProbe::new();
        match dir {
            Direction::Push => {
                pagerank::pagerank_push(&g, &opts, pagerank::PushSync::Cas, &probe);
            }
            Direction::Pull => {
                pagerank::pagerank_pull(&g, &opts, &probe);
            }
        }
        let c = probe.counts();
        println!(
            "  {dir:>7}: {:>9} atomics, {:>9} locks, {:>10} reads, {:>9} writes",
            c.atomics, c.locks, c.reads, c.writes
        );
    }

    // --- BFS: top-down (push), bottom-up (pull), and the switch. ---
    println!("\nBFS from vertex 0:");
    for mode in [
        bfs::BfsMode::Push,
        bfs::BfsMode::Pull,
        bfs::BfsMode::direction_optimizing(),
    ] {
        let r = bfs::bfs(&g, 0, mode);
        let dirs: Vec<&str> = r
            .rounds
            .iter()
            .map(|ri| match ri.dir {
                Direction::Push => "▲",
                Direction::Pull => "▼",
            })
            .collect();
        println!(
            "  {mode:?}: reached {} vertices in {} rounds  [{}]",
            r.reached(),
            r.rounds.len(),
            dirs.join("")
        );
    }
    println!("\n(▲ = top-down/push round, ▼ = bottom-up/pull round)");
}
