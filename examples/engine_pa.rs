//! Partition-aware execution (§5) in action: the same `CcProgram`, two
//! execution modes.
//!
//! `Atomic` is the shared-state baseline — every push round CASes remote
//! labels. `PartitionAware` binds one vertex block per engine thread,
//! applies local updates with plain writes, and routes cross-part updates
//! through the owner-computes exchange — the probe totals show the atomics
//! column collapsing to zero while the buffered-send column takes over,
//! and both modes land on the identical component labeling.
//!
//! ```text
//! cargo run --release --example engine_pa
//! ```

use pushpull::core::components::connected_components as cc_seq;
use pushpull::core::Direction;
use pushpull::engine::{
    algo::components::CcProgram, DirectionPolicy, Engine, ExecutionMode, ProbeShards, Runner,
};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::telemetry::CountingProbe;

fn main() {
    let g = Dataset::Orc.generate(Scale::Test);
    let engine = Engine::new(4);
    println!(
        "graph: {} vertices, {} edges (social-network stand-in); engine: {} threads",
        g.num_vertices(),
        g.num_edges(),
        engine.threads()
    );

    let oracle = cc_seq(&g, Direction::Pull);
    println!(
        "sequential oracle: {} components\n",
        oracle.num_components()
    );

    println!(
        "{:>7} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "mode", "rounds", "atomics", "locks", "remote-upd", "peak-buf", "reads"
    );
    for (name, mode) in ExecutionMode::sweep() {
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(mode)
            .run(&g, CcProgram::new(&g));
        assert_eq!(
            run.output, oracle.labels,
            "{name}: execution mode changed the fixpoint"
        );
        let c = probes.merged();
        assert_eq!(
            c.remote_sends,
            run.report.remote_updates(),
            "probe and report disagree on exchange volume"
        );
        println!(
            "{:>7} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
            name,
            run.report.num_rounds(),
            c.atomics,
            c.locks,
            run.report.remote_updates(),
            run.report.max_buffer_peak(),
            c.reads
        );
    }
    println!("\nidentical labels from both modes; partition-awareness traded every push");
    println!("atomic for a plain local write or one buffered owner-computes send.");
}
