//! Network design on a road-grid stand-in: build a minimum-cost backbone
//! three ways (Boruvka push/pull, Kruskal eager/lazy, Prim), then check the
//! reachability budget with push/pull Bellman–Ford.
//!
//! The scenario: a utility planning cable along existing roads wants the
//! cheapest spanning backbone, and then the worst-case distance from a
//! depot over that backbone. MST algorithms and SSSP baselines are exactly
//! the paper's §3.4/§3.7 material.
//!
//! ```text
//! cargo run --release --example network_design
//! ```

use pushpull::core::{bellman_ford, kruskal, mst, prim, validate, Direction};
use pushpull::graph::{gen, GraphBuilder};

fn main() {
    // A 40x50 road grid with some washed-out segments, metered costs.
    let roads = gen::with_random_weights(&gen::road_grid(40, 50, 0.85, 7), 10, 250, 7);
    println!(
        "road network: {} junctions, {} segments",
        roads.num_vertices(),
        roads.num_edges()
    );

    // --- The backbone, five ways. All must agree on total cost. ---
    println!("\nminimum spanning backbone:");
    let mut totals = Vec::new();
    for dir in Direction::BOTH {
        let b = mst::boruvka(&roads, dir);
        println!(
            "  boruvka {dir:>7}: cost {} over {} segments ({} merge rounds)",
            b.total_weight,
            b.edges.len(),
            b.rounds.len()
        );
        validate::validate_spanning_forest(&roads, &b.edges).expect("boruvka forest invalid");
        totals.push(b.total_weight);
    }
    for dir in Direction::BOTH {
        let k = kruskal::kruskal(&roads, dir);
        let scheme = match dir {
            Direction::Push => "eager relabel",
            Direction::Pull => "union-find",
        };
        println!("  kruskal {dir:>7}: cost {} ({scheme})", k.total_weight);
        validate::validate_spanning_forest(&roads, &k.edges).expect("kruskal forest invalid");
        totals.push(k.total_weight);
    }
    let p = prim::prim(&roads, 0, Direction::Pull);
    println!("  prim       pull: cost {}", p.total_weight);
    totals.push(p.total_weight);
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "all MST algorithms must agree"
    );

    // --- Worst-case depot distance over the backbone. ---
    let k = kruskal::kruskal(&roads, Direction::Pull);
    let backbone = GraphBuilder::undirected(roads.num_vertices())
        .weighted_edges(k.edges.iter().copied())
        .build();
    let depot = 0;
    println!("\ndepot reachability over the backbone (Bellman-Ford):");
    for dir in Direction::BOTH {
        let r = bellman_ford::bellman_ford(&backbone, depot, dir);
        validate::validate_sssp(&backbone, depot, &r.dist).expect("distances invalid");
        let reached = r.dist.iter().filter(|&&d| d != u64::MAX).count();
        let worst = r.dist.iter().filter(|&&d| d != u64::MAX).max().unwrap();
        println!(
            "  {dir:>7}: {reached} junctions reachable, worst cost {worst}, {} rounds",
            r.rounds
        );
    }

    // Against the full road network the backbone detour factor:
    let full = bellman_ford::bellman_ford(&roads, depot, Direction::Push);
    let tree = bellman_ford::bellman_ford(&backbone, depot, Direction::Push);
    let (mut worst_ratio, mut at) = (1.0f64, 0usize);
    for v in 0..roads.num_vertices() {
        if full.dist[v] != u64::MAX && full.dist[v] > 0 {
            let ratio = tree.dist[v] as f64 / full.dist[v] as f64;
            if ratio > worst_ratio {
                worst_ratio = ratio;
                at = v;
            }
        }
    }
    println!("\nworst backbone detour: {worst_ratio:.2}x the direct cost (junction {at})");
}
