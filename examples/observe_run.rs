//! The observability layer, live: one instrumented BFS run at
//! `MetricsLevel::Trace`.
//!
//! Prints what PR 6's timing substrate records — the per-round clock with
//! the policy's decision record (the observed Beamer share vs. the
//! hysteresis threshold it was compared against), the per-worker
//! busy/idle/chunks ledger with the max/mean imbalance ratio, and the
//! round-duration percentiles — then shows the first lines of the Chrome
//! trace-event JSON that `ppgraph run --trace` writes for
//! chrome://tracing.
//!
//! ```text
//! cargo run --release --example observe_run
//! ```

use pushpull::engine::algo::bfs::BfsProgram;
use pushpull::engine::{DirectionPolicy, Engine, ProbeShards, Runner};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::telemetry::timing::imbalance;
use pushpull::telemetry::{MetricsLevel, NullProbe};

fn main() {
    let g = Dataset::Orc.generate(Scale::Test);
    let engine = Engine::new(4);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let run = Runner::new(&engine, &probes)
        .policy(DirectionPolicy::adaptive())
        .metrics(MetricsLevel::Trace)
        .run(&g, BfsProgram::new(&g, 0));
    let r = &run.report;

    println!(
        "adaptive BFS on orkut stand-in (n={}, m={}), {} threads, {:.3} ms",
        g.num_vertices(),
        g.num_edges(),
        engine.threads(),
        r.elapsed_ns as f64 / 1e6
    );

    println!(
        "\n{:>6} {:>5} {:>10} {:>11} {:>9}  decision (share vs threshold)",
        "round", "dir", "frontier", "edges", "ms"
    );
    for s in &r.rounds {
        let decision = match s.decision {
            Some(d) => format!(
                "{:.4} vs {:.4}{}",
                d.observed_share,
                d.threshold,
                if d.switched { "  << switched" } else { "" }
            ),
            None => "-".to_string(),
        };
        println!(
            "{:>6} {:>5} {:>10} {:>11} {:>9.3}  {decision}",
            s.round,
            s.dir.label(),
            s.frontier,
            s.frontier_edges,
            s.duration_ns as f64 / 1e6,
        );
    }
    let h = r.round_histogram();
    println!(
        "round durations: p50 {:.3} ms, p95 {:.3} ms, max {:.3} ms",
        h.p50() as f64 / 1e6,
        h.p95() as f64 / 1e6,
        h.max() as f64 / 1e6
    );

    println!(
        "\n{:>7} {:>9} {:>9} {:>7} {:>6}",
        "worker", "busy_ms", "idle_ms", "chunks", "util"
    );
    for (w, lap) in r.worker_laps.iter().enumerate() {
        println!(
            "{w:>7} {:>9.3} {:>9.3} {:>7} {:>5.0}%",
            lap.busy_ns as f64 / 1e6,
            lap.idle_ns as f64 / 1e6,
            lap.chunks_claimed,
            lap.utilization() * 100.0
        );
    }
    println!(
        "load imbalance (max/mean busy): {:.2}x over {} workers",
        imbalance(&r.worker_laps),
        r.worker_laps.len()
    );

    let trace = r.chrome_trace("bfs adaptive");
    let json = trace.to_json();
    println!(
        "\nchrome trace: {} events ({} bytes; `ppgraph run bfs --trace out.json` writes this)",
        trace.len(),
        json.len()
    );
    for line in json.lines().take(4) {
        println!("  {line}");
    }
    println!("  ...");
}
