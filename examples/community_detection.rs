//! Community detection on a social-network stand-in: label propagation in
//! both directions, with the synchronization bill for each.
//!
//! The scenario: given a friendship graph with planted communities, recover
//! the groups, then identify each community's densest core with a k-core
//! decomposition — both algorithms members of the paper's "iterative
//! schemes" class (§3.8), both written once in push form and once in pull
//! form.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use pushpull::core::{kcore, labelprop, Direction};
use pushpull::graph::gen;
use pushpull::telemetry::CountingProbe;

fn main() {
    // Four planted communities of 200 people, dense friendships inside,
    // a sprinkle of cross-community acquaintances.
    let g = gen::community(4, 200, 3000, 300, 2026);
    println!(
        "friendship graph: {} people, {} friendships, avg degree {:.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // --- Label propagation, both directions: identical communities. ---
    println!("\nlabel propagation (max 30 iterations):");
    let mut results = Vec::new();
    for dir in Direction::BOTH {
        let probe = CountingProbe::new();
        let r = labelprop::label_propagation_probed(&g, dir, 30, &probe);
        let c = probe.counts();
        println!(
            "  {dir:>7}: {} communities in {} iterations | {:>8} locks, {:>9} reads",
            r.num_communities(),
            r.iterations,
            c.locks,
            c.reads
        );
        results.push(r);
    }
    assert_eq!(
        results[0].labels, results[1].labels,
        "push and pull must find identical communities"
    );

    // How well did we do? Check agreement within each planted block.
    let labels = &results[0].labels;
    println!("\nplanted-block recovery:");
    for block in 0..4 {
        let base = block * 200;
        let leader = labels[base];
        let agree = (base..base + 200).filter(|&v| labels[v] == leader).count();
        println!("  block {block}: {agree}/200 members share the block's dominant label");
    }

    // --- k-core: the engaged core of each community. ---
    println!("\nk-core decomposition:");
    for dir in Direction::BOTH {
        let probe = CountingProbe::new();
        let r = kcore::kcore_probed(&g, dir, &probe);
        let c = probe.counts();
        println!(
            "  {dir:>7}: degeneracy {} | {:>7} atomics, {:>9} reads",
            r.degeneracy, c.atomics, c.reads
        );
    }
    let r = kcore::kcore(&g, Direction::Pull);
    let k = r.degeneracy.saturating_sub(2);
    println!(
        "  the {k}-core has {} members — the most engaged users",
        r.core_members(k).len()
    );
}
