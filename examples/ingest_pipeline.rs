//! The ingestion pipeline end-to-end, in-process: generate a graph, write
//! it as a text edge list, parse it back on the engine pool, snapshot it
//! as binary `.ppg`, load that in O(read), and run engine programs on the
//! result by registry name — exactly what the `ppgraph` CLI does across
//! process boundaries (`ppgraph gen | ppgraph convert | ppgraph run`).
//!
//! ```text
//! cargo run --release --example ingest_pipeline
//! ```

use pushpull::engine::registry::{self, RunConfig};
use pushpull::engine::{ingest, Engine, ProbeShards};
use pushpull::graph::io::write_edge_list;
use pushpull::graph::snapshot::{load_ppg_path, save_ppg_path};
use pushpull::graph::{gen, VertexId};

fn main() {
    let engine = Engine::new(4);

    // 1. A graph "from outside": serialized to the SNAP-style text format
    //    the paper's datasets ship in.
    let original = gen::rmat(12, 8, 0xcafe);
    let mut text = Vec::new();
    write_edge_list(&original, &mut text).unwrap();
    println!(
        "edge list: {} bytes for n={}, m={}",
        text.len(),
        original.num_vertices(),
        original.num_edges()
    );

    // 2. Parallel parse on the engine pool (oracle-identical to
    //    pp_graph::io::read_edge_list).
    let t0 = std::time::Instant::now();
    let parsed = ingest::read_edge_list_parallel(&engine, &text, 0).unwrap();
    println!(
        "parallel parse: {:.1} ms on {} threads (round-trip exact: {})",
        t0.elapsed().as_secs_f64() * 1e3,
        engine.threads(),
        parsed == original
    );

    // 3. Snapshot to binary .ppg and load it back — no parsing, no
    //    builder pass, just bulk slab reads.
    let path = std::env::temp_dir().join("ingest_pipeline_example.ppg");
    save_ppg_path(&parsed, &path).unwrap();
    let t0 = std::time::Instant::now();
    let g = load_ppg_path(&path).unwrap();
    println!(
        ".ppg snapshot: {} bytes, loaded in {:.1} ms (exact: {})",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        t0.elapsed().as_secs_f64() * 1e3,
        g == original
    );
    let _ = std::fs::remove_file(&path);

    // 4. Run programs on the ingested graph by name.
    let probes = ProbeShards::new(engine.threads());
    let cfg = RunConfig {
        source: 0 as VertexId,
        ..RunConfig::new(&engine, &probes)
    };
    for name in ["bfs", "cc", "kcore"] {
        let spec = registry::find(name).unwrap();
        let t0 = std::time::Instant::now();
        let run = spec.run(&cfg, &g);
        let summary: Vec<String> = run
            .summary
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "run {:<6} {:>6.1} ms  rounds={:<3} {}",
            spec.name,
            t0.elapsed().as_secs_f64() * 1e3,
            run.report.num_rounds(),
            summary.join(" ")
        );
    }
}
