//! Road-network navigation: Δ-stepping shortest paths on a road grid.
//!
//! Demonstrates §6.1/Figure 2: pushing wins on high-diameter sparse graphs
//! (the pull variant rescans every unsettled vertex each phase), and the
//! bucket width Δ trades epochs against wasted relaxations.
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use std::time::Instant;

use pushpull::core::sssp::{self, SsspOptions};
use pushpull::core::Direction;
use pushpull::graph::datasets::{Dataset, Scale};

fn main() {
    let g = Dataset::Rca.generate_weighted(Scale::Small, 1, 100);
    println!(
        "road network: {} vertices, {} edges, d̄ = {:.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // Route from a corner: compare directions.
    println!("\npush vs pull (Δ = 64):");
    let opts = SsspOptions { delta: 64 };
    for dir in Direction::BOTH {
        let t = Instant::now();
        let r = sssp::sssp_delta(&g, 0, dir, &opts);
        let elapsed = t.elapsed();
        let total_relax: u64 = r.epochs.iter().map(|e| e.relaxations).sum();
        let reached = r.dist.iter().filter(|&&d| d != sssp::INF).count();
        println!(
            "  {dir:>7}: {:>8.2} ms, {:>4} epochs, {:>12} relaxations, {} reached",
            elapsed.as_secs_f64() * 1e3,
            r.epochs.len(),
            total_relax,
            reached
        );
    }

    // Δ sweep: small Δ = Dijkstra-like (many epochs, little waste),
    // huge Δ = Bellman-Ford-like (one epoch, many re-relaxations).
    println!("\nΔ sweep (pushing):");
    println!(
        "{:>10} {:>8} {:>10} {:>14}",
        "Delta", "epochs", "time[ms]", "relaxations"
    );
    for delta in [1u64, 8, 64, 512, 4096, 1 << 16] {
        let t = Instant::now();
        let r = sssp::sssp_delta(&g, 0, Direction::Push, &SsspOptions { delta });
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        let total_relax: u64 = r.epochs.iter().map(|e| e.relaxations).sum();
        println!(
            "{:>10} {:>8} {:>10.2} {:>14}",
            delta,
            r.epochs.len(),
            elapsed,
            total_relax
        );
    }

    // Sanity: agreement with Dijkstra.
    let reference = sssp::dijkstra(&g, 0);
    let check = sssp::sssp_delta(&g, 0, Direction::Pull, &SsspOptions { delta: 32 });
    assert_eq!(reference, check.dist, "Δ-stepping must match Dijkstra");
    println!("\nverified against sequential Dijkstra ✓");
    println!("\nTakeaway (Fig. 2c): larger Δ shrinks the push/pull gap — fewer");
    println!("epochs mean fewer full-graph rescans for the pull variant.");
}
