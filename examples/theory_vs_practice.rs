//! Theory vs. practice: the §4 PRAM predictions against measured counters.
//!
//! For each algorithm, computes the paper's conflict/synchronization
//! profile from the `pp-pram` cost formulas and compares it with the event
//! counts the instrumented kernels actually produce. Upper bounds must
//! dominate measurements; zero predictions must measure zero.
//!
//! ```text
//! cargo run --release --example theory_vs_practice
//! ```

use pushpull::core as algos;
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::pram;
use pushpull::telemetry::CountingProbe;

fn check(name: &str, predicted_zero: bool, measured: u64, bound: f64) {
    let status = if predicted_zero {
        if measured == 0 {
            "✓ zero as predicted"
        } else {
            "✗ UNEXPECTED SYNC"
        }
    } else if (measured as f64) <= bound {
        "✓ within bound"
    } else {
        "✗ BOUND EXCEEDED"
    };
    println!("{name:>34}: measured {measured:>12}  bound {bound:>14.0}  {status}");
}

fn main() {
    let g = Dataset::Ljn.generate(Scale::Test);
    let (n, m) = (g.num_vertices(), g.num_edges());
    let w = pram::Workload::new(n, m)
        .with_d_max(g.max_degree() as f64)
        .with_iters(4);
    let p = rayon::current_num_threads();
    let model = pram::PramModel::CrcwCb;
    println!(
        "workload: n = {n}, m = {m}, d̂ = {}, P = {p}\n",
        g.max_degree()
    );

    // --- PageRank (§4.1): push O(Lm) float conflicts; pull none. ---
    let opts = algos::pagerank::PrOptions {
        iters: 4,
        damping: 0.85,
    };
    let probe = CountingProbe::new();
    algos::pagerank::pagerank_push(&g, &opts, algos::pagerank::PushSync::Cas, &probe);
    let push_pred = pram::algos::pagerank(&w, p, model, pram::Direction::Push);
    // The formula counts undirected edges; the implementation touches both
    // arc directions, hence the factor 2 (plus CAS retries ≤ small constant).
    check(
        "PR push atomics ≤ 4·L·m",
        false,
        probe.counts().atomics,
        4.0 * push_pred
            .profile
            .locks
            .max(push_pred.profile.write_conflicts),
    );
    let probe = CountingProbe::new();
    algos::pagerank::pagerank_pull(&g, &opts, &probe);
    check(
        "PR pull sync = 0",
        true,
        probe.counts().synchronization(),
        0.0,
    );

    // --- Triangle counting (§4.2): push O(m·d̂) FAAs; pull none. ---
    let probe = CountingProbe::new();
    algos::triangles::triangle_counts_probed(&g, algos::Direction::Push, &probe);
    let tc_pred = pram::algos::triangle_count(&w, p, model, pram::Direction::Push);
    check(
        "TC push atomics ≤ 2·m·d̂",
        false,
        probe.counts().atomics,
        2.0 * tc_pred.profile.atomics,
    );
    let probe = CountingProbe::new();
    algos::triangles::triangle_counts_probed(&g, algos::Direction::Pull, &probe);
    check(
        "TC pull sync = 0",
        true,
        probe.counts().synchronization(),
        0.0,
    );

    // --- BFS (§4.3): push O(m) CAS; pull none. ---
    let probe = CountingProbe::new();
    algos::bfs::bfs_probed(&g, 0, algos::bfs::BfsMode::Push, &probe);
    let bfs_pred = pram::algos::bfs(&w, p, model, pram::Direction::Push);
    check(
        "BFS push atomics ≤ 2·m",
        false,
        probe.counts().atomics,
        2.0 * bfs_pred.profile.atomics,
    );
    let probe = CountingProbe::new();
    algos::bfs::bfs_probed(&g, 0, algos::bfs::BfsMode::Pull, &probe);
    check(
        "BFS pull sync = 0",
        true,
        probe.counts().synchronization(),
        0.0,
    );

    // --- Δ-stepping (§4.4): push O(m·lΔ) CAS; pull none. ---
    let gw = Dataset::Ljn.generate_weighted(Scale::Test, 1, 100);
    let probe = CountingProbe::new();
    let r = algos::sssp::sssp_delta_probed(
        &gw,
        0,
        algos::Direction::Push,
        &algos::sssp::SsspOptions { delta: 64 },
        &probe,
    );
    let l_delta = r.epochs.iter().map(|e| e.phases).max().unwrap_or(1) as f64;
    let sssp_pred = pram::algos::sssp_delta(
        &w,
        p,
        model,
        pram::Direction::Push,
        r.epochs.len() as f64,
        l_delta,
    );
    check(
        "SSSP push atomics ≤ 2·m·lΔ",
        false,
        probe.counts().atomics,
        2.0 * sssp_pred.profile.atomics,
    );
    let probe = CountingProbe::new();
    algos::sssp::sssp_delta_probed(
        &gw,
        0,
        algos::Direction::Pull,
        &algos::sssp::SsspOptions { delta: 64 },
        &probe,
    );
    check(
        "SSSP pull sync = 0",
        true,
        probe.counts().synchronization(),
        0.0,
    );

    // --- BC (§4.5/§4.9): push locks floats; pull lock-free. ---
    let bc_opts = algos::bc::BcOptions {
        max_sources: Some(8),
    };
    let probe = CountingProbe::new();
    algos::bc::betweenness_probed(&g, algos::Direction::Push, &bc_opts, &probe);
    let c = probe.counts();
    println!(
        "{:>34}: locks {} > 0 and atomics {} > 0 (float locks + int CAS) {}",
        "BC push conflict types",
        c.locks,
        c.atomics,
        if c.locks > 0 && c.atomics > 0 {
            "✓"
        } else {
            "✗"
        }
    );
    let probe = CountingProbe::new();
    algos::bc::betweenness_probed(&g, algos::Direction::Pull, &bc_opts, &probe);
    check(
        "BC pull sync = 0",
        true,
        probe.counts().synchronization(),
        0.0,
    );

    // --- CREW vs CRCW: the log(d̂) gap (§4.9 "Complexity"). ---
    println!();
    let crew = pram::algos::pagerank(&w, p, pram::PramModel::Crew, pram::Direction::Push);
    let crcw = pram::algos::pagerank(&w, p, pram::PramModel::CrcwCb, pram::Direction::Push);
    println!(
        "PR push CREW/CRCW work ratio: {:.2} (≈ log2 d̂ = {:.2})",
        crew.cost.work / crcw.cost.work,
        (g.max_degree() as f64).log2()
    );
}
