//! §7.1 end-to-end: the linear-algebraic formulations (CSR SpMV = pull,
//! CSC SpMV = push) must compute exactly what the vertex-centric
//! implementations compute, on every dataset stand-in.

use pushpull::core::algebra::{
    self, bfs_algebraic, pagerank_algebraic, spmspv_csc, spmv_csc, spmv_csr, BoolOr, MinPlus,
    PlusTimes,
};
use pushpull::core::{pagerank, sssp, Direction};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::stats;

#[test]
fn algebraic_pagerank_matches_vertex_centric_on_all_datasets() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let direct = pagerank::pagerank(
            &g,
            Direction::Pull,
            &pagerank::PrOptions {
                iters: 8,
                damping: 0.85,
            },
        );
        for dir in Direction::BOTH {
            let algebraic = pagerank_algebraic(&g, dir, 8, 0.85);
            let diff = pagerank::l1_distance(&direct, &algebraic);
            assert!(diff < 1e-9, "{} {dir:?}: L1 {diff}", ds.id());
        }
    }
}

#[test]
fn algebraic_bfs_matches_traversal_on_all_datasets() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        for dir in Direction::BOTH {
            assert_eq!(bfs_algebraic(&g, 0, dir), expected, "{} {dir:?}", ds.id());
        }
    }
}

#[test]
fn csr_csc_duality_on_all_datasets() {
    // spmv_csc over storage S computes (matrix of S)ᵀ ⊗ x; with the
    // transposed value layout both compute the same PageRank operator.
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| 1.0 + (i % 5) as f64)
            .collect();
        let a = spmv_csr::<PlusTimes>(&g, &algebra::pagerank_values_csr(&g), &x);
        let b = spmv_csc::<PlusTimes>(&g, &algebra::pagerank_values_csc(&g), &x);
        for (i, (p, q)) in a.iter().zip(&b).enumerate() {
            assert!((p - q).abs() < 1e-9, "{} row {i}: {p} vs {q}", ds.id());
        }
    }
}

#[test]
fn spmspv_equals_dense_spmv_restricted_to_support() {
    let g = Dataset::Am.generate(Scale::Test);
    let n = g.num_vertices();
    let vals = algebra::pattern_values::<BoolOr>(&g, true);
    // A sparse frontier of a few vertices.
    let support: Vec<u32> = vec![1, 7, 42 % n as u32];
    let sparse_x: Vec<(u32, bool)> = support.iter().map(|&v| (v, true)).collect();
    let mut dense_x = vec![false; n];
    for &v in &support {
        dense_x[v as usize] = true;
    }
    let sparse_y = spmspv_csc::<BoolOr>(&g, &vals, &sparse_x);
    let dense_y = spmv_csr::<BoolOr>(&g, &vals, &dense_x);
    let from_sparse: Vec<bool> = {
        let mut v = vec![false; n];
        for (i, val) in sparse_y {
            v[i as usize] = val;
        }
        v
    };
    assert_eq!(from_sparse, dense_y);
}

#[test]
fn min_plus_bellman_ford_matches_delta_stepping() {
    let g = Dataset::Rca.generate_weighted(Scale::Test, 1, 50);
    let n = g.num_vertices();
    let mut vals = Vec::with_capacity(g.num_arcs());
    for v in g.vertices() {
        for &w in g.neighbor_weights(v) {
            vals.push(w as u64);
        }
    }
    let mut x = vec![u64::MAX; n];
    x[0] = 0;
    // Bellman-Ford to fixpoint.
    loop {
        let ax = spmv_csr::<MinPlus>(&g, &vals, &x);
        let mut changed = false;
        for (xi, a) in x.iter_mut().zip(ax) {
            if a < *xi {
                *xi = a;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let reference = sssp::sssp_delta(&g, 0, Direction::Push, &sssp::SsspOptions { delta: 16 });
    assert_eq!(x, reference.dist);
}
