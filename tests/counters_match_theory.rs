//! Cross-validation of §4's synchronization table against instrumented
//! runs: the qualitative statements of §4.9 (who needs atomics, who needs
//! locks, who reads more) must hold as *measured facts* on every dataset
//! stand-in, and the counted events must respect the PRAM upper bounds.

use pushpull::core::{bc, bfs, coloring, mst, pagerank, sssp, triangles, Direction};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::pram;
use pushpull::telemetry::CountingProbe;

fn pr_opts() -> pagerank::PrOptions {
    pagerank::PrOptions {
        iters: 3,
        damping: 0.85,
    }
}

#[test]
fn pull_variants_are_completely_synchronization_free() {
    // §4.9 "Atomics/Locks": pulling removes atomics/locks for TC, PR, BFS,
    // Δ-stepping, and MST.
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let gw = ds.generate_weighted(Scale::Test, 1, 100);

        let probe = CountingProbe::new();
        pagerank::pagerank_pull(&g, &pr_opts(), &probe);
        assert_eq!(probe.counts().synchronization(), 0, "{} PR", ds.id());

        let probe = CountingProbe::new();
        triangles::triangle_counts_probed(&g, Direction::Pull, &probe);
        assert_eq!(probe.counts().synchronization(), 0, "{} TC", ds.id());

        let probe = CountingProbe::new();
        bfs::bfs_probed(&g, 0, bfs::BfsMode::Pull, &probe);
        assert_eq!(probe.counts().synchronization(), 0, "{} BFS", ds.id());

        let probe = CountingProbe::new();
        sssp::sssp_delta_probed(
            &gw,
            0,
            Direction::Pull,
            &sssp::SsspOptions::default(),
            &probe,
        );
        assert_eq!(probe.counts().synchronization(), 0, "{} SSSP", ds.id());

        let probe = CountingProbe::new();
        mst::boruvka_probed(&gw, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0, "{} MST", ds.id());
        assert_eq!(probe.counts().locks, 0, "{} MST", ds.id());
    }
}

#[test]
fn push_variants_synchronize_with_the_predicted_primitive() {
    // §4's table: PR push → float conflicts (locks or CAS emulation);
    // TC push → FAA; BFS/SSSP/MST push → CAS; BC push → locks *and* ints.
    for ds in [Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let gw = ds.generate_weighted(Scale::Test, 1, 100);

        let probe = CountingProbe::new();
        pagerank::pagerank_push(&g, &pr_opts(), pagerank::PushSync::Locks, &probe);
        let c = probe.counts();
        assert!(c.locks > 0, "{} PR", ds.id());
        assert_eq!(
            c.locks as usize,
            pr_opts().iters * g.num_arcs(),
            "{}",
            ds.id()
        );

        let probe = CountingProbe::new();
        triangles::triangle_counts_probed(&g, Direction::Push, &probe);
        assert_eq!(
            probe.counts().locks,
            0,
            "{} TC uses FAA, not locks",
            ds.id()
        );

        let probe = CountingProbe::new();
        bfs::bfs_probed(&g, 0, bfs::BfsMode::Push, &probe);
        let c = probe.counts();
        assert!(c.atomics > 0, "{} BFS", ds.id());
        assert_eq!(c.locks, 0, "{} BFS", ds.id());

        let probe = CountingProbe::new();
        sssp::sssp_delta_probed(
            &gw,
            0,
            Direction::Push,
            &sssp::SsspOptions::default(),
            &probe,
        );
        assert!(probe.counts().atomics > 0, "{} SSSP", ds.id());

        let probe = CountingProbe::new();
        let r = bc::betweenness_probed(
            &g,
            Direction::Push,
            &bc::BcOptions {
                max_sources: Some(6),
            },
            &probe,
        );
        assert!(probe.counts().locks > 0, "{} BC backward floats", ds.id());
        assert!(r.scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn measured_atomics_respect_pram_upper_bounds() {
    for ds in [Dataset::Am, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let w = pram::Workload::new(g.num_vertices(), g.num_edges())
            .with_d_max(g.max_degree() as f64)
            .with_iters(pr_opts().iters);
        let p = rayon::current_num_threads();

        // PR push: O(L·m) conflicts — implementation touches both arc
        // directions and may retry a CAS, so allow 4×.
        let probe = CountingProbe::new();
        pagerank::pagerank_push(&g, &pr_opts(), pagerank::PushSync::Cas, &probe);
        let predicted =
            pram::algos::pagerank(&w, p, pram::PramModel::CrcwCb, pram::Direction::Push);
        assert!(
            (probe.counts().atomics as f64) <= 4.0 * predicted.profile.write_conflicts,
            "{} PR: {} > 4×{}",
            ds.id(),
            probe.counts().atomics,
            predicted.profile.write_conflicts
        );

        // TC push: O(m·d̂) FAAs.
        let probe = CountingProbe::new();
        triangles::triangle_counts_probed(&g, Direction::Push, &probe);
        let predicted =
            pram::algos::triangle_count(&w, p, pram::PramModel::CrcwCb, pram::Direction::Push);
        assert!(
            (probe.counts().atomics as f64) <= 2.0 * predicted.profile.atomics,
            "{} TC",
            ds.id()
        );

        // BFS push: O(m) CAS.
        let probe = CountingProbe::new();
        bfs::bfs_probed(&g, 0, bfs::BfsMode::Push, &probe);
        let predicted = pram::algos::bfs(&w, p, pram::PramModel::CrcwCb, pram::Direction::Push);
        assert!(
            (probe.counts().atomics as f64) <= 2.0 * predicted.profile.atomics,
            "{} BFS",
            ds.id()
        );
    }
}

#[test]
fn traversal_pulls_read_more_than_pushes() {
    // §4.9 "Write/Read Conflicts": traversals entail more read conflicts
    // with pulling — O(Dm) vs O(m). Most visible on the road network.
    let g = Dataset::Rca.generate(Scale::Test);
    let push = CountingProbe::new();
    bfs::bfs_probed(&g, 0, bfs::BfsMode::Push, &push);
    let pull = CountingProbe::new();
    bfs::bfs_probed(&g, 0, bfs::BfsMode::Pull, &pull);
    assert!(
        pull.counts().reads > 5 * push.counts().reads,
        "pull reads {} vs push reads {}",
        pull.counts().reads,
        push.counts().reads
    );

    let gw = Dataset::Rca.generate_weighted(Scale::Test, 1, 100);
    let push = CountingProbe::new();
    sssp::sssp_delta_probed(
        &gw,
        0,
        Direction::Push,
        &sssp::SsspOptions::default(),
        &push,
    );
    let pull = CountingProbe::new();
    sssp::sssp_delta_probed(
        &gw,
        0,
        Direction::Pull,
        &sssp::SsspOptions::default(),
        &pull,
    );
    assert!(
        pull.counts().reads > 5 * push.counts().reads,
        "SSSP pull reads {} vs push reads {}",
        pull.counts().reads,
        push.counts().reads
    );
}

#[test]
fn coloring_directions_differ_only_in_write_target() {
    // §4.6/§6.1: the same conflicts are detected either way — push resolves
    // them with remote (atomic) writes, pull with own writes.
    let g = Dataset::Ljn.generate(Scale::Test);
    let opts = coloring::GcOptions::default();
    let push = CountingProbe::new();
    coloring::boman_probed(&g, 4, Direction::Push, &opts, &push);
    let pull = CountingProbe::new();
    coloring::boman_probed(&g, 4, Direction::Pull, &opts, &pull);
    assert!(push.counts().atomics > 0);
    assert_eq!(pull.counts().atomics, 0);
    assert_eq!(
        push.counts().reads,
        pull.counts().reads,
        "identical schedules must read identically"
    );
}

#[test]
fn pram_brents_lemma_consistency() {
    // Halving the processors at most doubles predicted time (LP lemma).
    let w = pram::Workload::new(1 << 14, 1 << 18).with_iters(4);
    for dir in pram::Direction::BOTH {
        let t16 = pram::algos::pagerank(&w, 16, pram::PramModel::CrcwCb, dir);
        let t8 = pram::algos::pagerank(&w, 8, pram::PramModel::CrcwCb, dir);
        assert!(t8.cost.time <= 2.0 * t16.cost.time + 1.0, "{dir:?}");
        assert!(t8.cost.time >= t16.cost.time, "{dir:?}");
    }
}
