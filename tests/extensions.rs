//! Integration tests for the paper's extension material: directed graphs
//! (§4.8), the GAS abstraction (§7.4), Prim's algorithm (§3.7 tech report),
//! distributed BFS with switching (§7.2), and edge-list I/O round-trips
//! against the dataset stand-ins.

use pushpull::core::{directed, gas, mst, prim, sssp, Direction};
use pushpull::dm::{dm_bfs, CostModel, DmBfsVariant};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::{gen, io, stats, GraphBuilder};

#[test]
fn directed_pagerank_matches_algebraic_formulation() {
    // A directed PR must equal the algebraic PR over the same directed
    // matrix. Build a small digraph, compare both directions.
    let mut b = GraphBuilder::directed(50);
    for i in 0..50u32 {
        b.add_edge(i, (i + 1) % 50);
        b.add_edge(i, (i * 7 + 3) % 50);
    }
    let g = b.build();
    let dg = directed::DirectedGraph::new(g);
    let opts = pushpull::core::pagerank::PrOptions {
        iters: 12,
        damping: 0.85,
    };
    let push =
        directed::pagerank_directed(&dg, Direction::Push, &opts, &pushpull::telemetry::NullProbe);
    let pull =
        directed::pagerank_directed(&dg, Direction::Pull, &opts, &pushpull::telemetry::NullProbe);
    let diff = pushpull::core::pagerank::l1_distance(&push, &pull);
    assert!(diff < 1e-10, "directed push/pull diverge: {diff}");
    // Every vertex has out-degree ≥ 1, so rank mass is conserved.
    let sum: f64 = pull.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "mass {sum}");
}

#[test]
fn directed_degree_asymmetry_drives_cost_split() {
    // §4.8: a "fan-in" digraph (everyone points at vertex 0) has d̂_in = n-1
    // but d̂_out = 1; the views must expose exactly that.
    let n = 40;
    let mut b = GraphBuilder::directed(n);
    for i in 1..n as u32 {
        b.add_edge(i, 0);
    }
    let dg = directed::DirectedGraph::new(b.build());
    assert_eq!(dg.max_out_degree(), 1);
    assert_eq!(dg.max_in_degree(), n - 1);
    for dir in Direction::BOTH {
        let levels = directed::bfs_directed(&dg, 1, dir);
        assert_eq!(levels[0], 1, "{dir:?}");
        assert_eq!(levels[2], u32::MAX, "{dir:?}: no path 1→2");
    }
}

#[test]
fn gas_sssp_agrees_with_delta_stepping_on_datasets() {
    for ds in [Dataset::Am, Dataset::Rca] {
        let g = ds.generate_weighted(Scale::Test, 1, 50);
        let reference = sssp::dijkstra(&g, 0);
        for dir in Direction::BOTH {
            assert_eq!(gas::gas_sssp(&g, 0, dir), reference, "{} {dir:?}", ds.id());
        }
    }
}

#[test]
fn gas_coloring_is_proper_on_datasets() {
    for ds in [Dataset::Am, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        if g.max_degree() >= 128 {
            continue; // GasColoring's mask is two words wide
        }
        for dir in Direction::BOTH {
            let colors = gas::gas_coloring(&g, dir);
            assert!(
                pushpull::core::coloring::is_proper_coloring(&g, &colors),
                "{} {dir:?}",
                ds.id()
            );
        }
    }
}

#[test]
fn prim_boruvka_and_kruskal_agree_on_connected_datasets() {
    let g = Dataset::Rca.generate_weighted(Scale::Test, 1, 1000);
    assert!(stats::is_connected(&g));
    let (_, kruskal) = mst::kruskal_seq(&g);
    for dir in Direction::BOTH {
        assert_eq!(
            mst::boruvka(&g, dir).total_weight,
            kruskal,
            "boruvka {dir:?}"
        );
        assert_eq!(prim::prim(&g, 0, dir).total_weight, kruskal, "prim {dir:?}");
    }
}

#[test]
fn dm_bfs_variants_agree_with_sequential_levels_on_datasets() {
    for ds in [Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        for variant in DmBfsVariant::ALL {
            let r = dm_bfs(&g, 0, variant, 16, CostModel::xc40());
            assert_eq!(r.levels, expected, "{} {variant:?}", ds.id());
        }
    }
}

#[test]
fn dm_bfs_pull_reads_more_on_high_diameter_graphs() {
    // The §4.3 read asymmetry survives the DM formulation: bottom-up rounds
    // re-probe every unvisited vertex's neighborhood.
    let g = Dataset::Rca.generate(Scale::Test);
    let push = dm_bfs(&g, 0, DmBfsVariant::Push, 8, CostModel::xc40());
    let pull = dm_bfs(&g, 0, DmBfsVariant::Pull, 8, CostModel::xc40());
    assert!(
        pull.stats.remote_gets > 4 * push.stats.remote_puts,
        "pull gets {} vs push puts {}",
        pull.stats.remote_gets,
        push.stats.remote_puts
    );
}

#[test]
fn edge_list_round_trips_every_dataset_standin() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
        assert_eq!(back, g, "{}", ds.id());

        let gw = ds.generate_weighted(Scale::Test, 1, 77);
        let mut buf = Vec::new();
        io::write_edge_list(&gw, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice(), gw.num_vertices()).unwrap();
        assert_eq!(back, gw, "{} weighted", ds.id());
    }
}

#[test]
fn io_graphs_run_through_algorithms_unchanged() {
    // A graph loaded from text must behave identically to the generated
    // one — guards against ordering/canonicalization drift in the parser.
    let g = Dataset::Am.generate(Scale::Test);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let loaded = io::read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
    let a = pushpull::core::pagerank::pagerank(
        &g,
        Direction::Pull,
        &pushpull::core::pagerank::PrOptions::default(),
    );
    let b = pushpull::core::pagerank::pagerank(
        &loaded,
        Direction::Pull,
        &pushpull::core::pagerank::PrOptions::default(),
    );
    assert_eq!(a, b);
}

#[test]
fn gas_engine_rejects_mismatched_state_length() {
    let g = gen::path(4);
    let result = std::panic::catch_unwind(|| {
        gas::gas_execute(&g, &gas::GasSssp, vec![0u64; 3], &[0], Direction::Pull, 10)
    });
    assert!(result.is_err(), "length mismatch must panic");
}

#[test]
fn clustering_coefficient_agrees_with_triangle_counting() {
    // Two independent implementations of the same quantity: the stats
    // module's wedge census and the §3.2 triangle counter must satisfy
    // closed_wedges == 6 · total_triangles on every stand-in.
    use pushpull::core::triangles;
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let triangles = triangles::total_triangles(&g, Direction::Pull);
        assert_eq!(
            stats::closed_wedges(&g),
            6 * triangles,
            "{}: wedge census vs triangle count",
            ds.id()
        );
    }
}

#[test]
fn dataset_standins_have_the_right_clustering_regimes() {
    // The community stand-ins must cluster far above the road network —
    // the structural contrast Table 2's regimes encode.
    let orc = Dataset::Orc.generate(Scale::Test);
    let rca = Dataset::Rca.generate(Scale::Test);
    assert!(
        stats::global_clustering(&orc) > 4.0 * stats::global_clustering(&rca).max(1e-3),
        "orc C = {}, rca C = {}",
        stats::global_clustering(&orc),
        stats::global_clustering(&rca)
    );
}

#[test]
fn dm_coloring_passes_the_shared_validator() {
    use pushpull::core::validate;
    use pushpull::dm::dm_coloring;
    for ds in [Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for push in [true, false] {
            let r = dm_coloring(&g, push, 8, CostModel::xc40());
            validate::validate_coloring(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{} push={push}: {e}", ds.id()));
        }
    }
}

#[test]
fn directed_sssp_degenerates_to_undirected_on_symmetric_digraphs() {
    // A digraph with both arc directions for every edge must reproduce the
    // undirected distances.
    let und = gen::with_random_weights(&gen::erdos_renyi(100, 300, 4), 1, 30, 4);
    let mut b = GraphBuilder::directed(100);
    for (u, v, w) in und.edges() {
        b.add_weighted_edge(u, v, w);
        b.add_weighted_edge(v, u, w);
    }
    let dg = directed::DirectedGraph::new(b.build());
    let expected = sssp::dijkstra(&und, 0);
    for dir in Direction::BOTH {
        assert_eq!(directed::sssp_directed(&dg, 0, dir), expected, "{dir:?}");
    }
}

#[test]
fn approx_bc_ranks_correlate_with_exact_on_standins() {
    use pushpull::core::bc;
    let g = Dataset::Am.generate(Scale::Test);
    let exact = bc::betweenness(&g, Direction::Pull, &bc::BcOptions::default()).scores;
    let approx = bc::approx_betweenness(&g, Direction::Pull, g.num_vertices() / 2, 1);
    // The top exact vertex must sit in the approximate top decile.
    let top_exact = (0..exact.len())
        .max_by(|&a, &b| exact[a].total_cmp(&exact[b]))
        .unwrap();
    let mut order: Vec<usize> = (0..approx.len()).collect();
    order.sort_by(|&a, &b| approx[b].total_cmp(&approx[a]));
    let rank = order.iter().position(|&v| v == top_exact).unwrap();
    assert!(
        rank <= exact.len() / 10,
        "exact top vertex ranked {rank} of {} under sampling",
        exact.len()
    );
}
