//! Ingestion subsystem integration: the parallel edge-list parser is
//! oracle-equivalent to the sequential reader on arbitrarily messy inputs
//! (comments, blank lines, CRLF endings, weighted files), and the engine
//! registry can run every Program by name on a graph that arrived through
//! the ingestion path rather than a generator.

use pp_engine::registry::{self, RunConfig};
use pp_engine::{ingest, Engine, ProbeShards};
use pp_graph::io::{parse_edge_list, write_edge_list, ParseError};
use pp_graph::{gen, snapshot};
use proptest::prelude::*;

/// A syntactically valid but messy edge-list file: random comments, blank
/// lines, CRLF/LF endings, and leading/trailing whitespace around a
/// consistent 2- or 3-column body.
fn arb_messy_edge_list() -> impl Strategy<Value = String> {
    (
        1usize..60, // vertex-id range
        proptest::collection::vec((0u32..60, 0u32..60, 1u32..9, 0u8..6), 0..120),
        0u8..2, // weighted body?
        0u8..2, // emit an n= header?
    )
        .prop_map(|(n, rows, weighted, header)| {
            let (weighted, header) = (weighted == 1, header == 1);
            let n = n as u32;
            let mut text = String::new();
            if header {
                text.push_str(&format!("# pushpull edge list: n={n} m=0 weighted=0\n"));
            }
            for (u, v, w, decoration) in rows {
                match decoration {
                    0 => text.push_str("# a comment line\r\n"),
                    1 => text.push('\n'),
                    2 => text.push_str("   \r\n"),
                    _ => {}
                }
                let (u, v) = (u % n, v % n);
                let line_end = if decoration % 2 == 0 { "\r\n" } else { "\n" };
                if weighted {
                    text.push_str(&format!(" {u}\t{v} {w}{line_end}"));
                } else {
                    text.push_str(&format!("{u} {v}{line_end}"));
                }
            }
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_parse_equals_sequential_parse_on_messy_inputs(
        text in arb_messy_edge_list(),
        threads in 1usize..5,
    ) {
        let seq = parse_edge_list(text.as_bytes(), 0).unwrap();
        let engine = Engine::new(threads);
        let par = ingest::read_edge_list_parallel(&engine, text.as_bytes(), 0).unwrap();
        prop_assert_eq!(par, seq);
    }
}

#[test]
fn parallel_parse_handles_the_documented_decorations() {
    // The satellite's explicit cases: comments, blank lines, CRLF endings.
    let text = "# SNAP-style comment\r\n\r\n0 1\r\n\n1 2\n# another\n 2 3 \r\n";
    let seq = parse_edge_list(text.as_bytes(), 0).unwrap();
    for threads in [1, 2, 4] {
        let engine = Engine::new(threads);
        let par = ingest::read_edge_list_parallel(&engine, text.as_bytes(), 0).unwrap();
        assert_eq!(par, seq, "threads={threads}");
    }
    assert_eq!(seq.num_edges(), 3);
}

#[test]
fn parallel_parse_rejects_mixed_files_like_the_sequential_reader() {
    let text = "0 1 5\n1 2\n";
    let engine = Engine::new(2);
    let seq = parse_edge_list(text.as_bytes(), 0).unwrap_err();
    let par = ingest::read_edge_list_parallel(&engine, text.as_bytes(), 0).unwrap_err();
    assert!(matches!(seq, ParseError::MixedColumns(2, _)));
    assert!(matches!(par, ParseError::MixedColumns(2, _)));
}

/// The acceptance scenario: all ten Programs, dispatched by registry name,
/// on a graph the engine did not generate — it went RMAT → text edge list
/// → parallel parse → `.ppg` → load, and only then to the runner.
#[test]
fn registry_runs_all_ten_programs_on_an_ingested_graph() {
    let original = gen::rmat(8, 6, 0xfeed);
    let mut text = Vec::new();
    write_edge_list(&original, &mut text).unwrap();

    let engine = Engine::new(2);
    let parsed = ingest::read_edge_list_parallel(&engine, &text, 0).unwrap();
    assert_eq!(parsed, original);

    let mut bin = Vec::new();
    snapshot::save_ppg(&parsed, &mut bin).unwrap();
    let g = snapshot::load_ppg(bin.as_slice()).unwrap();
    assert_eq!(g, original);
    let gw = gen::with_random_weights(&g, 1, 32, 7);

    let probes = ProbeShards::new(engine.threads());
    let cfg = RunConfig::new(&engine, &probes);
    assert_eq!(registry::all().len(), 10);
    for spec in registry::all() {
        let run = spec.run(&cfg, if spec.needs_weights { &gw } else { &g });
        assert!(run.report.num_rounds() > 0, "{} ran no rounds", spec.name);
        assert!(!run.summary.is_empty(), "{} had no summary", spec.name);
    }
}
