//! The §5 acceleration strategies must change *cost*, never *meaning*:
//! partition-aware PageRank returns the same ranks, every coloring strategy
//! returns a proper coloring, direction-optimizing BFS the same levels.

use pushpull::core::{bfs, coloring, pagerank, Direction};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::{stats, BlockPartition, PartitionAwareGraph};
use pushpull::telemetry::{CountingProbe, NullProbe};

#[test]
fn partition_awareness_preserves_ranks_for_any_part_count() {
    let opts = pagerank::PrOptions {
        iters: 10,
        damping: 0.85,
    };
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let reference = pagerank::pagerank_seq(&g, &opts);
        for parts in [1usize, 2, 3, 8, 17] {
            let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), parts));
            for sync in [pagerank::PushSync::Locks, pagerank::PushSync::Cas] {
                let r = pagerank::pagerank_push_pa(&g, &pa, &opts, sync, &NullProbe);
                let diff = pagerank::l1_distance(&reference, &r);
                assert!(diff < 1e-9, "{} parts={parts} {sync:?}: L1 {diff}", ds.id());
            }
        }
    }
}

#[test]
fn partition_awareness_strictly_reduces_synchronization() {
    // §5: PA's atomic count is bounded by the remote arcs, strictly below
    // plain push's 2m whenever any edge is partition-local.
    let opts = pagerank::PrOptions {
        iters: 2,
        damping: 0.85,
    };
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), 4));
        if pa.num_local_arcs() == 0 {
            continue;
        }
        let plain = CountingProbe::new();
        pagerank::pagerank_push(&g, &opts, pagerank::PushSync::Locks, &plain);
        let aware = CountingProbe::new();
        pagerank::pagerank_push_pa(&g, &pa, &opts, pagerank::PushSync::Locks, &aware);
        assert!(
            aware.counts().locks < plain.counts().locks,
            "{}: PA {} !< plain {}",
            ds.id(),
            aware.counts().locks,
            plain.counts().locks
        );
        assert_eq!(
            aware.counts().locks as usize,
            opts.iters * pa.num_remote_arcs(),
            "{}: PA locks must equal remote arcs × iterations",
            ds.id()
        );
    }
}

#[test]
fn every_coloring_strategy_yields_proper_colorings_on_all_datasets() {
    let opts = coloring::GcOptions::default();
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let runs: Vec<(&str, coloring::GcResult)> = vec![
            (
                "FE-push",
                coloring::frontier_exploit(&g, Direction::Push, &opts),
            ),
            (
                "FE-pull",
                coloring::frontier_exploit(&g, Direction::Pull, &opts),
            ),
            ("GS", coloring::generic_switch(&g, 0.2, &opts)),
            ("GrS", coloring::greedy_switch(&g, 0.1, &opts)),
            ("CR", coloring::conflict_removal(&g, 8)),
        ];
        for (name, r) in runs {
            assert!(
                coloring::is_proper_coloring(&g, &r.colors),
                "{} {name}",
                ds.id()
            );
            assert!(
                r.num_colors() >= 2,
                "{} {name}: implausibly few colors",
                ds.id()
            );
        }
    }
}

#[test]
fn switching_strategies_do_not_exceed_fe_iterations_on_dense_graphs() {
    // Figure 6b's ordering on community graphs: FE needs the most
    // iterations; GS and GrS cut them.
    for ds in [Dataset::Orc, Dataset::Pok, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        let opts = coloring::GcOptions::default();
        let fe = coloring::frontier_exploit(&g, Direction::Push, &opts);
        let gs = coloring::generic_switch(&g, 0.2, &opts);
        let grs = coloring::greedy_switch(&g, 0.1, &opts);
        assert!(gs.iterations <= fe.iterations, "{}: GS > FE", ds.id());
        assert!(grs.iterations <= fe.iterations, "{}: GrS > FE", ds.id());
    }
}

#[test]
fn conflict_removal_is_single_iteration_everywhere() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        for parts in [2usize, 8, 32] {
            let r = coloring::conflict_removal(&g, parts);
            assert_eq!(r.iterations, 1, "{} parts={parts}", ds.id());
            assert_eq!(r.conflicts_per_iter, vec![0]);
        }
    }
}

#[test]
fn direction_optimizing_bfs_matches_plain_levels() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        let r = bfs::bfs(&g, 0, bfs::BfsMode::direction_optimizing());
        assert_eq!(r.level, expected, "{}", ds.id());
    }
}

#[test]
fn direction_optimizing_bfs_pulls_on_dense_and_pushes_on_sparse() {
    // The Generic-Switch premise: the heuristic must actually take both
    // branches where the paper says each pays off.
    let dense = Dataset::Orc.generate(Scale::Test);
    let r = bfs::bfs(&dense, 0, bfs::BfsMode::direction_optimizing());
    assert!(
        r.rounds.iter().any(|ri| ri.dir == Direction::Pull),
        "dense graph should trigger bottom-up rounds"
    );

    let sparse = Dataset::Rca.generate(Scale::Test);
    let r = bfs::bfs(&sparse, 0, bfs::BfsMode::direction_optimizing());
    let pushes = r
        .rounds
        .iter()
        .filter(|ri| ri.dir == Direction::Push)
        .count();
    assert!(
        pushes * 2 > r.rounds.len(),
        "road network should stay mostly top-down"
    );
}

#[test]
fn hybrid_controller_drives_coloring_switch_boundary() {
    // Generic-Switch with ratio 0 switches immediately after the first
    // conflicted iteration; with a huge ratio it never switches and must
    // behave exactly like FE.
    for ds in [Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let opts = coloring::GcOptions::default();
        let fe = coloring::frontier_exploit(&g, Direction::Push, &opts);
        let never = coloring::generic_switch(&g, f64::INFINITY, &opts);
        assert_eq!(never.iterations, fe.iterations, "{}", ds.id());
        assert_eq!(never.colors, fe.colors, "{}", ds.id());
        let always = coloring::generic_switch(&g, 0.0, &opts);
        assert!(coloring::is_proper_coloring(&g, &always.colors));
    }
}
