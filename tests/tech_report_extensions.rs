//! Cross-crate integration tests for the tech-report extensions: the new
//! push/pull algorithms against the PRAM predictions, the §6.5 SM/DM SSSP
//! inversion, and the prefetcher/locality machinery on real kernels.

use pushpull::core::{bellman_ford, kcore, kruskal, labelprop, pagerank, sssp, Direction};
use pushpull::dm::{dm_sssp, CostModel};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::{gen, reorder};
use pushpull::pram;
use pushpull::telemetry::cachesim::CacheHierarchy;
use pushpull::telemetry::{CacheSimProbe, CountingProbe};

/// §6.5: "SSSP-Δ on SM systems is surprisingly different from the variant
/// for the DM machines presented in the literature, where pulling is
/// faster. This is because intra-node atomics are less costly than
/// messages." The DM cost model must invert the winner.
#[test]
fn dm_sssp_pull_beats_push_where_sm_push_wins() {
    let g = gen::with_random_weights(&Dataset::Pok.generate(Scale::Test), 1, 100, 3);
    let delta = 200u64;

    // Shared memory: push issues cheap atomics; pull rescans edges. Count
    // the work signals rather than racing wall clocks in a test.
    let push_probe = CountingProbe::new();
    let opts = sssp::SsspOptions { delta };
    sssp::sssp_delta_probed(&g, 0, Direction::Push, &opts, &push_probe);
    let pull_probe = CountingProbe::new();
    sssp::sssp_delta_probed(&g, 0, Direction::Pull, &opts, &pull_probe);
    assert!(
        pull_probe.counts().reads > 4 * push_probe.counts().atomics,
        "SM pull reads ({}) must dwarf SM push atomics ({})",
        pull_probe.counts().reads,
        push_probe.counts().atomics
    );

    // Distributed memory: the same algorithm under the network cost model.
    let dm_push = dm_sssp(&g, 0, delta, true, 64, CostModel::xc40());
    let dm_pull = dm_sssp(&g, 0, delta, false, 64, CostModel::xc40());
    assert_eq!(dm_push.dist, dm_pull.dist, "DM variants must agree");
    assert_eq!(
        dm_push.dist,
        sssp::dijkstra(&g, 0),
        "DM distances must be exact"
    );
    assert!(
        dm_pull.modeled_seconds < dm_push.modeled_seconds,
        "DM pull ({}) must beat DM push ({}) — the §6.5 inversion",
        dm_pull.modeled_seconds,
        dm_push.modeled_seconds
    );
}

/// The instrumented kernels and the §4-style PRAM profiles must agree on
/// *which* synchronization class each new algorithm uses.
#[test]
fn new_algorithm_counters_match_pram_profiles() {
    use pram::algos as formulas;
    use pram::model::{Direction as PDir, PramModel};

    let g = Dataset::Ljn.generate(Scale::Test);
    let w = formulas::Workload::new(g.num_vertices(), g.num_edges()).with_iters(10);

    // k-core: push atomics bounded by m (each arc decremented ≤ once), pull
    // atomic-free; the PRAM profile says exactly that.
    let probe = CountingProbe::new();
    kcore::kcore_probed(&g, Direction::Push, &probe);
    let measured = probe.counts().atomics;
    let predicted = formulas::kcore(&w, 16, PramModel::CrcwCb, PDir::Push, 10.0)
        .profile
        .atomics;
    assert!(
        measured as f64 <= predicted,
        "{measured} > bound {predicted}"
    );
    let probe = CountingProbe::new();
    kcore::kcore_probed(&g, Direction::Pull, &probe);
    assert_eq!(probe.counts().atomics, 0);

    // Label propagation: push locks equal L·(arcs) exactly — one ballot
    // deposit per arc per iteration (when it runs the full L iterations).
    let probe = CountingProbe::new();
    let r = labelprop::label_propagation_probed(&g, Direction::Push, 10, &probe);
    let expected_locks = r.iterations as u64 * g.num_arcs() as u64;
    assert_eq!(probe.counts().locks, expected_locks);
    // The PRAM profile counts L·m with m undirected edges; the kernel
    // deposits per *arc* (2m). Same class, constant 2.
    let lp = formulas::label_propagation(&w, 16, PramModel::CrcwCb, PDir::Push);
    assert_eq!(lp.profile.locks, 10.0 * g.num_edges() as f64);
    assert!(lp.profile.locks * 2.0 >= expected_locks as f64 * 0.99);

    // Bellman–Ford: push CAS count bounded by the PRAM worst case.
    let wg = gen::with_random_weights(&g, 1, 50, 1);
    let probe = CountingProbe::new();
    let r = bellman_ford::bellman_ford_probed(&wg, 0, Direction::Push, &probe);
    let bound = formulas::bellman_ford(&w, 16, PramModel::CrcwCb, PDir::Push, r.rounds as f64)
        .profile
        .atomics;
    assert!((probe.counts().atomics as f64) <= bound);
}

/// Push and pull must compute identical results across every new algorithm
/// on every dataset stand-in (the workspace-wide contract).
#[test]
fn new_algorithms_push_pull_agree_on_all_datasets() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let wg = gen::with_random_weights(&g, 1, 100, 11);

        assert_eq!(
            kcore::kcore(&g, Direction::Push).coreness,
            kcore::kcore(&g, Direction::Pull).coreness,
            "{}: kcore",
            ds.id()
        );
        assert_eq!(
            labelprop::label_propagation(&g, Direction::Push, 8).labels,
            labelprop::label_propagation(&g, Direction::Pull, 8).labels,
            "{}: labelprop",
            ds.id()
        );
        let reference = sssp::dijkstra(&wg, 0);
        for dir in Direction::BOTH {
            assert_eq!(
                bellman_ford::bellman_ford(&wg, 0, dir).dist,
                reference,
                "{}: bellman-ford {dir:?}",
                ds.id()
            );
        }
        assert_eq!(
            kruskal::kruskal(&wg, Direction::Push).total_weight,
            kruskal::kruskal(&wg, Direction::Pull).total_weight,
            "{}: kruskal",
            ds.id()
        );
    }
}

/// §6.5 attributes pull-PR's weakness partly to prefetcher-unfriendly
/// access: the stream prefetcher must slash misses on a BFS-ordered layout
/// far more than on a shuffled one.
#[test]
fn prefetcher_helps_ordered_layouts_more() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let base = Dataset::Rca.generate(Scale::Test);
    let mut ids: Vec<u32> = (0..base.num_vertices() as u32).collect();
    ids.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(5));
    let shuffled = reorder::apply_permutation(&base, &reorder::Permutation::new(ids));
    let ordered = reorder::apply_permutation(&shuffled, &reorder::bfs_order(&shuffled, 0));
    let opts = pagerank::PrOptions {
        iters: 1,
        damping: 0.85,
    };

    // XC30 geometry: big enough that prefetch pollution is negligible. The
    // tiny test hierarchy can *lose* from prefetching (fills evict hot
    // lines), which is realistic but not what this test isolates.
    let miss_ratio = |g| {
        let plain = CacheSimProbe::with_hierarchy(CacheHierarchy::xc30());
        pagerank::pagerank_pull(g, &opts, &plain);
        let pf = CacheSimProbe::with_hierarchy(CacheHierarchy::xc30().with_prefetcher());
        pagerank::pagerank_pull(g, &opts, &pf);
        let (a, b) = (plain.counts().l1_misses, pf.counts().l1_misses);
        b as f64 / a.max(1) as f64
    };
    let shuffled_ratio = miss_ratio(&shuffled);
    let ordered_ratio = miss_ratio(&ordered);
    assert!(
        ordered_ratio < shuffled_ratio,
        "prefetcher must help ordered ({ordered_ratio:.3}) more than shuffled ({shuffled_ratio:.3})"
    );
}

/// Locality ordering must cut the edge span (the miss proxy) dramatically
/// on a shuffled road network.
#[test]
fn bfs_reorder_restores_road_network_locality() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let base = gen::road_grid(30, 40, 0.9, 2);
    let mut ids: Vec<u32> = (0..base.num_vertices() as u32).collect();
    ids.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(9));
    let shuffled = reorder::apply_permutation(&base, &reorder::Permutation::new(ids));
    let ordered = reorder::apply_permutation(&shuffled, &reorder::bfs_order(&shuffled, 0));
    assert!(reorder::edge_span(&ordered) * 4.0 < reorder::edge_span(&shuffled));
}
