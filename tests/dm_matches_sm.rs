//! The distributed-memory substrate must compute exactly what the
//! shared-memory algorithms compute — the simulation models *costs*, never
//! results — and its communication statistics must obey the §6.3 structure.

use pushpull::core::{pagerank, triangles, Direction};
use pushpull::dm::{dm_pagerank, dm_triangle_count, CostModel, DmVariant};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::BlockPartition;

#[test]
fn dm_pagerank_equals_sm_pagerank_for_all_variants_and_rank_counts() {
    let opts = pagerank::PrOptions {
        iters: 6,
        damping: 0.85,
    };
    for ds in [Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let reference = pagerank::pagerank_seq(&g, &opts);
        for variant in DmVariant::ALL {
            for p in [1usize, 3, 16, 128] {
                let r = dm_pagerank(&g, variant, p, 6, 0.85, CostModel::xc40());
                let diff = pagerank::l1_distance(&reference, &r.ranks);
                assert!(diff < 1e-9, "{} {variant:?} P={p}: L1 {diff}", ds.id());
            }
        }
    }
}

#[test]
fn dm_triangle_count_equals_sm_triangle_count() {
    for ds in [Dataset::Am, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let expected = triangles::total_triangles(&g, Direction::Pull);
        for variant in DmVariant::ALL {
            for p in [1usize, 4, 32] {
                let r = dm_triangle_count(&g, variant, p, CostModel::xc40());
                assert_eq!(r.triangles, expected, "{} {variant:?} P={p}", ds.id());
            }
        }
    }
}

#[test]
fn communication_counts_match_cut_structure() {
    // Push-RMA PageRank issues exactly one accumulate per remote arc per
    // iteration; pull-RMA issues exactly two gets per remote arc.
    let g = Dataset::Ljn.generate(Scale::Test);
    let iters = 3usize;
    for p in [2usize, 8, 64] {
        let part = BlockPartition::new(g.num_vertices(), p);
        let cut = part.cut_arcs(&g) as u64;
        let push = dm_pagerank(&g, DmVariant::PushRma, p, iters, 0.85, CostModel::xc40());
        assert_eq!(
            push.stats.remote_accumulates,
            iters as u64 * cut,
            "P={p} accumulates"
        );
        let pull = dm_pagerank(&g, DmVariant::PullRma, p, iters, 0.85, CostModel::xc40());
        assert_eq!(pull.stats.remote_gets, iters as u64 * 2 * cut, "P={p} gets");
    }
}

#[test]
fn cut_grows_with_rank_count_and_so_does_communication() {
    let g = Dataset::Orc.generate(Scale::Test);
    let mut last = 0u64;
    for p in [2usize, 4, 16, 64] {
        let r = dm_pagerank(&g, DmVariant::PushRma, p, 1, 0.85, CostModel::xc40());
        assert!(
            r.stats.remote_accumulates >= last,
            "P={p}: communication shrank with more ranks?"
        );
        last = r.stats.remote_accumulates;
    }
}

#[test]
fn figure3_orderings_hold_on_dataset_standins() {
    // §6.3.1: PR — MP fastest, push slowest. §6.3.2: TC — RMA beats MP,
    // pull beats push.
    let g = Dataset::Ljn.generate(Scale::Test);
    let p = 32;
    let push = dm_pagerank(&g, DmVariant::PushRma, p, 2, 0.85, CostModel::xc40());
    let pull = dm_pagerank(&g, DmVariant::PullRma, p, 2, 0.85, CostModel::xc40());
    let mp = dm_pagerank(&g, DmVariant::MsgPassing, p, 2, 0.85, CostModel::xc40());
    assert!(mp.modeled_seconds < pull.modeled_seconds, "PR: MP !< pull");
    assert!(
        pull.modeled_seconds < push.modeled_seconds,
        "PR: pull !< push"
    );

    let g = Dataset::Am.generate(Scale::Test);
    let push = dm_triangle_count(&g, DmVariant::PushRma, p, CostModel::xc40());
    let pull = dm_triangle_count(&g, DmVariant::PullRma, p, CostModel::xc40());
    let mp = dm_triangle_count(&g, DmVariant::MsgPassing, p, CostModel::xc40());
    assert!(
        pull.modeled_seconds <= push.modeled_seconds,
        "TC: pull !≤ push"
    );
    assert!(push.modeled_seconds < mp.modeled_seconds, "TC: RMA !< MP");
}

#[test]
fn modeled_time_is_deterministic() {
    let g = Dataset::Am.generate(Scale::Test);
    let a = dm_pagerank(&g, DmVariant::MsgPassing, 16, 2, 0.85, CostModel::xc40());
    let b = dm_pagerank(&g, DmVariant::MsgPassing, 16, 2, 0.85, CostModel::xc40());
    assert_eq!(a.modeled_seconds, b.modeled_seconds);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn rma_variants_use_constant_buffering() {
    // §6.3.1 "Memory Consumption": RMA is O(1) extra storage; MP buffers.
    let g = Dataset::Ljn.generate(Scale::Test);
    for variant in [DmVariant::PushRma, DmVariant::PullRma] {
        let r = dm_pagerank(&g, variant, 16, 1, 0.85, CostModel::xc40());
        assert_eq!(r.stats.peak_buffer_bytes, 0, "{variant:?}");
    }
    let mp = dm_pagerank(&g, DmVariant::MsgPassing, 16, 1, 0.85, CostModel::xc40());
    assert!(mp.stats.peak_buffer_bytes > 0);
}
