//! Property-based tests (proptest) over random graphs: structural
//! invariants of the graph substrate and algorithm-level push/pull
//! equivalences that must hold for *every* input, not just the curated
//! families.

use proptest::prelude::*;
use pushpull::core::{
    bellman_ford, bfs, coloring, components, gas, kcore, kruskal, labelprop, mst, pagerank, prim,
    sssp, triangles, validate, Direction,
};
use pushpull::graph::{
    gen, io, reorder, stats, BlockPartition, CsrGraph, GraphBuilder, PartitionAwareGraph,
};

/// Strategy: an arbitrary undirected graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(4 * n))
            .prop_map(move |edges| GraphBuilder::undirected(n).edges(edges).build())
    })
}

/// Strategy: an arbitrary weighted graph.
fn arb_weighted_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (arb_graph(max_n), 1u64..u64::MAX)
        .prop_map(|(g, seed)| gen::with_random_weights(&g, 1, 100, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- Graph substrate invariants. ---

    #[test]
    fn csr_degrees_sum_to_arcs(g in arb_graph(64)) {
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.num_arcs());
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    #[test]
    fn csr_adjacency_is_symmetric(g in arb_graph(48)) {
        for (u, v) in g.arcs() {
            prop_assert!(g.has_edge(v, u), "missing reverse arc ({v},{u})");
        }
    }

    #[test]
    fn transpose_is_involutive(g in arb_graph(48)) {
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn partition_covers_and_is_consistent(g in arb_graph(64), parts in 1usize..12) {
        let part = BlockPartition::new(g.num_vertices(), parts);
        let mut seen = vec![false; g.num_vertices()];
        for t in 0..parts {
            for v in part.range(t) {
                prop_assert_eq!(part.owner(v), t);
                prop_assert!(!seen[v as usize], "vertex owned twice");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_aware_split_loses_nothing(g in arb_graph(48), parts in 1usize..8) {
        let part = BlockPartition::new(g.num_vertices(), parts);
        let pa = PartitionAwareGraph::new(&g, part);
        prop_assert_eq!(pa.num_local_arcs() + pa.num_remote_arcs(), g.num_arcs());
        prop_assert_eq!(pa.num_remote_arcs(), part.cut_arcs(&g));
        for v in g.vertices() {
            let mut merged: Vec<_> = pa
                .local_neighbors(v)
                .iter()
                .chain(pa.remote_neighbors(v))
                .copied()
                .collect();
            merged.sort_unstable();
            prop_assert_eq!(merged.as_slice(), g.neighbors(v));
        }
    }

    // --- Push/pull equivalences on arbitrary graphs. ---

    #[test]
    fn pagerank_push_equals_pull(g in arb_graph(48)) {
        let opts = pagerank::PrOptions { iters: 6, damping: 0.85 };
        let push = pagerank::pagerank(&g, Direction::Push, &opts);
        let pull = pagerank::pagerank(&g, Direction::Pull, &opts);
        prop_assert!(pagerank::l1_distance(&push, &pull) < 1e-9);
    }

    #[test]
    fn pagerank_mass_is_conserved_without_dangling_vertices(g in arb_graph(40)) {
        prop_assume!(g.vertices().all(|v| g.degree(v) > 0));
        let opts = pagerank::PrOptions { iters: 10, damping: 0.85 };
        let r = pagerank::pagerank(&g, Direction::Pull, &opts);
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "rank mass {sum}");
    }

    #[test]
    fn triangle_counts_push_equals_pull(g in arb_graph(32)) {
        prop_assert_eq!(
            triangles::triangle_counts(&g, Direction::Push),
            triangles::triangle_counts(&g, Direction::Pull)
        );
    }

    #[test]
    fn triangle_total_is_consistent_with_per_vertex(g in arb_graph(32)) {
        let per_vertex: u64 = triangles::triangle_counts(&g, Direction::Pull).iter().sum();
        prop_assert_eq!(per_vertex % 3, 0, "corner counts must be divisible by 3");
        prop_assert_eq!(triangles::total_triangles(&g, Direction::Pull), per_vertex / 3);
    }

    #[test]
    fn bfs_all_modes_equal_sequential(g in arb_graph(48), root_sel in 0usize..48) {
        let root = (root_sel % g.num_vertices()) as u32;
        let (expected, _, _) = stats::bfs_levels(&g, root);
        for mode in [bfs::BfsMode::Push, bfs::BfsMode::Pull, bfs::BfsMode::direction_optimizing()] {
            prop_assert_eq!(&bfs::bfs(&g, root, mode).level, &expected);
        }
    }

    #[test]
    fn bfs_parents_form_a_valid_tree(g in arb_graph(48)) {
        let r = bfs::bfs(&g, 0, bfs::BfsMode::Push);
        for v in g.vertices() {
            if v != 0 && r.level[v as usize] != bfs::UNVISITED {
                let p = r.parent[v as usize];
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(r.level[p as usize] + 1, r.level[v as usize]);
            }
        }
    }

    #[test]
    fn sssp_push_pull_and_dijkstra_agree(g in arb_weighted_graph(40), delta_exp in 0u32..16) {
        let reference = sssp::dijkstra(&g, 0);
        let delta = 1u64 << delta_exp;
        for dir in Direction::BOTH {
            let r = sssp::sssp_delta(&g, 0, dir, &sssp::SsspOptions { delta });
            prop_assert_eq!(&r.dist, &reference);
        }
    }

    #[test]
    fn sssp_satisfies_triangle_inequality_on_edges(g in arb_weighted_graph(40)) {
        let r = sssp::sssp_delta(&g, 0, Direction::Push, &sssp::SsspOptions { delta: 16 });
        for (u, v, w) in g.edges() {
            let (du, dv) = (r.dist[u as usize], r.dist[v as usize]);
            if du != sssp::INF {
                prop_assert!(dv <= du.saturating_add(w as u64), "edge ({u},{v})");
            }
            if dv != sssp::INF {
                prop_assert!(du <= dv.saturating_add(w as u64), "edge ({v},{u})");
            }
        }
    }

    #[test]
    fn mst_weight_matches_kruskal(g in arb_weighted_graph(40)) {
        let (_, expected) = mst::kruskal_seq(&g);
        for dir in Direction::BOTH {
            prop_assert_eq!(mst::boruvka(&g, dir).total_weight, expected);
        }
    }

    #[test]
    fn mst_edge_count_is_n_minus_components(g in arb_weighted_graph(40)) {
        let components = stats::num_components(&g);
        let r = mst::boruvka(&g, Direction::Pull);
        prop_assert_eq!(r.edges.len(), g.num_vertices() - components);
    }

    #[test]
    fn coloring_strategies_always_proper(g in arb_graph(40), parts in 1usize..6) {
        let opts = coloring::GcOptions::default();
        prop_assert!(coloring::is_proper_coloring(
            &g,
            &coloring::boman(&g, parts, Direction::Push, &opts).colors
        ));
        prop_assert!(coloring::is_proper_coloring(
            &g,
            &coloring::frontier_exploit(&g, Direction::Pull, &opts).colors
        ));
        prop_assert!(coloring::is_proper_coloring(
            &g,
            &coloring::conflict_removal(&g, parts).colors
        ));
    }

    #[test]
    fn greedy_coloring_respects_degree_bound(g in arb_graph(48)) {
        let colors = coloring::greedy_seq(&g);
        prop_assert!(coloring::is_proper_coloring(&g, &colors));
        let used = colors.iter().copied().max().unwrap_or(0) as usize;
        prop_assert!(used <= g.max_degree(), "greedy exceeded Δ+1 colors");
    }

    // --- Extensions: components, GAS, Prim, I/O. ---

    #[test]
    fn components_match_reference_in_both_directions(g in arb_graph(48)) {
        let expected = stats::num_components(&g);
        let push = components::connected_components(&g, Direction::Push);
        let pull = components::connected_components(&g, Direction::Pull);
        prop_assert_eq!(push.num_components(), expected);
        prop_assert_eq!(&push.labels, &pull.labels);
        // Endpoints of every edge share a label.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(push.labels[u as usize], push.labels[v as usize]);
        }
    }

    #[test]
    fn gas_sssp_equals_delta_stepping(g in arb_weighted_graph(32)) {
        let reference = sssp::dijkstra(&g, 0);
        for dir in Direction::BOTH {
            prop_assert_eq!(&gas::gas_sssp(&g, 0, dir), &reference);
        }
    }

    #[test]
    fn prim_matches_kruskal_on_the_roots_component(g in arb_weighted_graph(32)) {
        // Restrict to the root's component by comparing against Kruskal run
        // on a graph filtered to that component.
        let labels = components::connected_components(&g, Direction::Pull).labels;
        let root_label = labels[0];
        let mut b = GraphBuilder::undirected(g.num_vertices());
        for (u, v, w) in g.edges() {
            if labels[u as usize] == root_label {
                b.add_weighted_edge(u, v, w);
            }
        }
        let component = b.build();
        let (_, expected) = if component.is_weighted() {
            mst::kruskal_seq(&component)
        } else {
            (Vec::new(), 0) // component of the root has no edges
        };
        for dir in Direction::BOTH {
            prop_assert_eq!(prim::prim(&g, 0, dir).total_weight, expected);
        }
    }

    #[test]
    fn edge_list_round_trip_is_identity(g in arb_graph(48)) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn pagerank_ranks_are_probabilities(g in arb_graph(40)) {
        let r = pagerank::pagerank(
            &g,
            Direction::Pull,
            &pagerank::PrOptions { iters: 8, damping: 0.85 },
        );
        let sum: f64 = r.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9, "mass {sum} exceeds 1");
        prop_assert!(r.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    // --- Tech-report extension algorithms. ---

    #[test]
    fn kcore_matches_sequential_reference(g in arb_graph(48)) {
        let expected = kcore::coreness_seq(&g);
        for dir in Direction::BOTH {
            prop_assert_eq!(&kcore::kcore(&g, dir).coreness, &expected, "{:?}", dir);
        }
    }

    #[test]
    fn kcore_is_monotone_under_edge_removal(g in arb_graph(32)) {
        // Dropping the last vertex's edges can only lower coreness values.
        prop_assume!(g.num_vertices() > 2);
        let n = g.num_vertices();
        let keep = GraphBuilder::undirected(n)
            .edges(
                g.edges()
                    .filter(|&(u, v, _)| (u as usize) < n - 1 && (v as usize) < n - 1)
                    .map(|(u, v, _)| (u, v)),
            )
            .build();
        let full = kcore::kcore(&g, Direction::Pull).coreness;
        let sub = kcore::kcore(&keep, Direction::Pull).coreness;
        for v in 0..n {
            prop_assert!(sub[v] <= full[v], "vertex {} rose from {} to {}", v, full[v], sub[v]);
        }
    }

    #[test]
    fn labelprop_push_equals_pull(g in arb_graph(40), iters in 1usize..12) {
        let push = labelprop::label_propagation(&g, Direction::Push, iters);
        let pull = labelprop::label_propagation(&g, Direction::Pull, iters);
        prop_assert_eq!(push.labels, pull.labels);
        prop_assert_eq!(push.iterations, pull.iterations);
    }

    #[test]
    fn labelprop_fixpoint_labels_are_witnessed(g in arb_graph(40)) {
        // At a fixpoint every vertex's label is the plurality label of its
        // neighborhood, so a non-isolated vertex's label must appear on one
        // of its neighbors. (Mid-run this is false — labels shift under
        // vertices — so the property is conditioned on convergence.)
        let r = labelprop::label_propagation(&g, Direction::Pull, 64);
        prop_assume!(r.converged);
        for v in g.vertices() {
            let l = r.labels[v as usize];
            let ok = g.degree(v) == 0 && l == v
                || g.neighbors(v).iter().any(|&u| r.labels[u as usize] == l);
            prop_assert!(ok, "vertex {} wears unwitnessed label {}", v, l);
        }
    }

    #[test]
    fn bellman_ford_agrees_with_dijkstra(g in arb_weighted_graph(40)) {
        let reference = sssp::dijkstra(&g, 0);
        for dir in Direction::BOTH {
            prop_assert_eq!(&bellman_ford::bellman_ford(&g, 0, dir).dist, &reference);
        }
    }

    #[test]
    fn kruskal_directions_agree_and_match_boruvka(g in arb_weighted_graph(40)) {
        let push = kruskal::kruskal(&g, Direction::Push);
        let pull = kruskal::kruskal(&g, Direction::Pull);
        prop_assert_eq!(&push.edges, &pull.edges);
        prop_assert_eq!(push.total_weight, mst::boruvka(&g, Direction::Pull).total_weight);
        prop_assert!(validate::validate_spanning_forest(&g, &pull.edges).is_ok());
    }

    #[test]
    fn dsu_union_count_tracks_components(g in arb_graph(48)) {
        let mut dsu = kruskal::DisjointSets::new(g.num_vertices());
        for (u, v, _) in g.edges() {
            dsu.union(u, v);
        }
        prop_assert_eq!(dsu.num_sets(), stats::num_components(&g));
    }

    // --- Validators accept real results on arbitrary graphs. ---

    #[test]
    fn validators_accept_all_real_results(g in arb_weighted_graph(40)) {
        let r = bfs::bfs(&g, 0, bfs::BfsMode::direction_optimizing());
        prop_assert!(validate::validate_bfs(&g, 0, &r).is_ok());
        let d = sssp::dijkstra(&g, 0);
        prop_assert!(validate::validate_sssp(&g, 0, &d).is_ok());
        let colors = coloring::greedy_seq(&g);
        prop_assert!(validate::validate_coloring(&g, &colors).is_ok());
    }

    // --- Reordering is an isomorphism. ---

    #[test]
    fn reordering_preserves_algorithm_results(g in arb_weighted_graph(32)) {
        let p = reorder::degree_order(&g);
        let h = reorder::apply_permutation(&g, &p);
        // Coreness commutes with relabeling.
        let core_g = kcore::kcore(&g, Direction::Pull).coreness;
        let core_h = kcore::kcore(&h, Direction::Pull).coreness;
        prop_assert_eq!(p.map_values(&core_g), core_h);
        // Shortest-path distances commute with relabeling (root tracks too).
        let d_g = sssp::dijkstra(&g, 0);
        let d_h = sssp::dijkstra(&h, p.map(0));
        prop_assert_eq!(p.map_values(&d_g), d_h);
        // Total MST weight is invariant.
        prop_assert_eq!(
            kruskal::kruskal(&g, Direction::Pull).total_weight,
            kruskal::kruskal(&h, Direction::Pull).total_weight
        );
    }

    #[test]
    fn bfs_order_is_a_bijection(g in arb_graph(48)) {
        let p = reorder::bfs_order(&g, 0);
        let inv = p.inverse();
        for v in g.vertices() {
            prop_assert_eq!(inv.map(p.map(v)), v);
        }
    }
}
