//! The paper's foundational invariant (§3): push and pull are two
//! *schedules* of the same algorithm — results must be identical across
//! directions, and identical to a sequential reference, on every graph
//! family the paper evaluates.

use proptest::prelude::*;
use pushpull::core::{
    bc, bfs, coloring, components, kcore, labelprop, mst, pagerank, sssp, triangles, validate,
    Direction,
};
use pushpull::engine::{algo, DirectionPolicy, Engine, ExecutionMode, ProbeShards, Runner};
use pushpull::graph::datasets::{Dataset, Scale};
use pushpull::graph::{gen, stats, CsrGraph, GraphBuilder};
use pushpull::telemetry::{CountingProbe, NullProbe};

fn families() -> Vec<(&'static str, CsrGraph)> {
    let mut v: Vec<(&'static str, CsrGraph)> = vec![
        ("path", gen::path(64)),
        ("cycle", gen::cycle(65)),
        ("star", gen::star(64)),
        ("complete", gen::complete(24)),
        ("binary-tree", gen::binary_tree(63)),
        ("erdos-renyi", gen::erdos_renyi(256, 1024, 7)),
        ("rmat", gen::rmat(8, 8, 7)),
        ("road-grid", gen::road_grid(12, 14, 0.6, 7)),
    ];
    for ds in Dataset::ALL {
        v.push((ds.id(), ds.generate(Scale::Test)));
    }
    v
}

#[test]
fn pagerank_directions_agree_everywhere() {
    let opts = pagerank::PrOptions {
        iters: 12,
        damping: 0.85,
    };
    for (name, g) in families() {
        let reference = pagerank::pagerank_seq(&g, &opts);
        for dir in Direction::BOTH {
            let r = pagerank::pagerank(&g, dir, &opts);
            let diff = pagerank::l1_distance(&reference, &r);
            assert!(diff < 1e-9, "{name} {dir:?}: L1 {diff}");
        }
    }
}

#[test]
fn triangle_counts_agree_everywhere() {
    for (name, g) in families() {
        let reference = triangles::triangle_counts_seq(&g);
        for dir in Direction::BOTH {
            assert_eq!(
                triangles::triangle_counts(&g, dir),
                reference,
                "{name} {dir:?}"
            );
        }
    }
}

#[test]
fn bfs_levels_agree_everywhere() {
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        for mode in [
            bfs::BfsMode::Push,
            bfs::BfsMode::Pull,
            bfs::BfsMode::direction_optimizing(),
        ] {
            let r = bfs::bfs(&g, 0, mode);
            assert_eq!(r.level, expected, "{name} {mode:?}");
        }
    }
}

#[test]
fn sssp_agrees_with_dijkstra_everywhere() {
    for (name, g) in families() {
        let gw = gen::with_random_weights(&g, 1, 64, 0xabc);
        let reference = sssp::dijkstra(&gw, 0);
        for dir in Direction::BOTH {
            for delta in [4u64, 64, 1 << 14] {
                let r = sssp::sssp_delta(&gw, 0, dir, &sssp::SsspOptions { delta });
                assert_eq!(r.dist, reference, "{name} {dir:?} Δ={delta}");
            }
        }
    }
}

#[test]
fn betweenness_agrees_with_brandes_everywhere() {
    for (name, g) in families() {
        // Exact BC is O(n·m): cap sources on the larger families.
        let cap = Some(24usize.min(g.num_vertices()));
        let reference = bc::betweenness_seq(&g, cap);
        for dir in Direction::BOTH {
            let r = bc::betweenness(&g, dir, &bc::BcOptions { max_sources: cap });
            for (i, (a, b)) in r.scores.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                    "{name} {dir:?} vertex {i}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn mst_weight_agrees_with_kruskal_everywhere() {
    for (name, g) in families() {
        let gw = gen::with_random_weights(&g, 1, 1000, 0xdef);
        let (kedges, kweight) = mst::kruskal_seq(&gw);
        for dir in Direction::BOTH {
            let r = mst::boruvka(&gw, dir);
            assert_eq!(r.total_weight, kweight, "{name} {dir:?}");
            assert_eq!(r.edges.len(), kedges.len(), "{name} {dir:?} edge count");
        }
    }
}

#[test]
fn coloring_proper_in_both_directions_everywhere() {
    let opts = coloring::GcOptions::default();
    for (name, g) in families() {
        for dir in Direction::BOTH {
            for parts in [2usize, 5] {
                let r = coloring::boman(&g, parts, dir, &opts);
                assert!(
                    coloring::is_proper_coloring(&g, &r.colors),
                    "{name} {dir:?} parts={parts}"
                );
            }
        }
    }
}

#[test]
fn coloring_push_and_pull_schedule_identically() {
    // §6.1: "the number of locks acquired is the same in both variants" —
    // our deterministic tie-breaking makes the whole iteration trace equal.
    let opts = coloring::GcOptions::default();
    for (name, g) in families() {
        let push = coloring::boman(&g, 4, Direction::Push, &opts);
        let pull = coloring::boman(&g, 4, Direction::Pull, &opts);
        assert_eq!(push.iterations, pull.iterations, "{name}");
        assert_eq!(push.conflicts_per_iter, pull.conflicts_per_iter, "{name}");
        assert_eq!(
            push.colors, pull.colors,
            "{name}: same schedule, same colors"
        );
    }
}

// ---------------------------------------------------------------------------
// The parallel engine against the sequential oracles: the same invariant —
// push and pull are two schedules of one algorithm — must survive real
// threads, every dataset stand-in, and the adaptive scheduler.
// ---------------------------------------------------------------------------

/// Thread counts every engine equivalence test sweeps.
const THREADS: [usize; 3] = [1, 2, 8];

fn engine_policies() -> impl Iterator<Item = DirectionPolicy> {
    DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
}

#[test]
fn engine_bfs_matches_sequential_levels_everywhere() {
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let r = algo::bfs::bfs(&engine, &g, 0, policy, &probes);
                assert_eq!(r.level, expected, "{name} x{threads} {policy:?}");
                assert_eq!(r.report.phases, 1, "{name}: BFS is single-phase");
                // The Graph500-style validator accepts the parent tree too.
                let as_core = bfs::BfsResult {
                    parent: r.parent.clone(),
                    level: r.level.clone(),
                    rounds: Vec::new(),
                };
                assert!(
                    validate::validate_bfs(&g, 0, &as_core).is_ok(),
                    "{name} x{threads} {policy:?}: invalid BFS tree"
                );
            }
        }
    }
}

#[test]
fn engine_pagerank_matches_sequential_oracle_everywhere() {
    let opts = pagerank::PrOptions {
        iters: 12,
        damping: 0.85,
    };
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let reference = pagerank::pagerank_seq(&g, &opts);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for dir in Direction::BOTH {
                let r = algo::pagerank::pagerank(&engine, &g, dir, &opts, &probes);
                let diff = pagerank::l1_distance(&reference, &r);
                assert!(diff < 1e-9, "{name} {dir:?} x{threads}: L1 {diff}");
            }
        }
    }
}

#[test]
fn engine_sssp_matches_dijkstra_everywhere() {
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let gw = gen::with_random_weights(&g, 1, 64, 0xabc);
        let reference = sssp::dijkstra(&gw, 0);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for delta in [4u64, 64] {
                for policy in engine_policies() {
                    let r = algo::sssp::sssp_delta(
                        &engine,
                        &gw,
                        0,
                        policy,
                        &sssp::SsspOptions { delta },
                        &probes,
                    );
                    assert_eq!(r.dist, reference, "{name} x{threads} Δ={delta} {policy:?}");
                    assert!(
                        validate::validate_sssp(&gw, 0, &r.dist).is_ok(),
                        "{name} x{threads}: invalid SSSP distances"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_adaptive_switching_is_exercised_on_dense_families() {
    // On the dense stand-ins, the adaptive policy must actually pull at the
    // peak and push on the fringes — otherwise these tests are vacuous.
    let g = Dataset::Orc.generate(Scale::Test);
    let engine = Engine::new(4);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let r = algo::bfs::bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
    assert!(
        r.report.pull_rounds() > 0,
        "expected at least one pull round"
    );
    assert!(
        r.report.push_rounds() > 0,
        "expected at least one push round"
    );
    assert!(r.report.switched());
}

// ---------------------------------------------------------------------------
// The four algorithms newly ported onto the `Program`/`Runner` API: CC,
// k-core, label propagation, coloring — each against its sequential pp-core
// twin, at 1/2/8 threads, under push, pull, and adaptive policies.
// ---------------------------------------------------------------------------

#[test]
fn engine_components_match_core_labels_everywhere() {
    for (name, g) in families() {
        let expected = components::connected_components(&g, Direction::Pull).labels;
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let r = algo::components::connected_components(&engine, &g, policy, &probes);
                assert_eq!(r.labels, expected, "{name} x{threads} {policy:?}");
                assert_eq!(
                    r.num_components(),
                    stats::num_components(&g),
                    "{name} x{threads} {policy:?}: component count"
                );
            }
        }
    }
}

#[test]
fn engine_kcore_matches_sequential_peeling_everywhere() {
    for (name, g) in families() {
        let expected = kcore::coreness_seq(&g);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let r = algo::kcore::kcore(&engine, &g, policy, &probes);
                assert_eq!(r.coreness, expected, "{name} x{threads} {policy:?}");
                assert_eq!(
                    r.degeneracy,
                    expected.iter().copied().max().unwrap_or(0),
                    "{name}: degeneracy"
                );
            }
        }
    }
}

#[test]
fn engine_labelprop_matches_core_iteration_for_iteration() {
    // Synchronous LP with deterministic tie-breaking: the engine must
    // reproduce the core twin's exact label sequence, iteration count, and
    // convergence flag — in every schedule, at every thread count.
    const CAP: usize = 30;
    for (name, g) in families() {
        let expected = labelprop::label_propagation(&g, Direction::Pull, CAP);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let r = algo::labelprop::label_propagation(&engine, &g, policy, CAP, &probes);
                assert_eq!(r.labels, expected.labels, "{name} x{threads} {policy:?}");
                assert_eq!(r.iterations, expected.iterations, "{name} {policy:?}");
                assert_eq!(r.converged, expected.converged, "{name} {policy:?}");
            }
        }
    }
}

#[test]
fn engine_coloring_is_proper_and_greedy_bounded_everywhere() {
    for (name, g) in families() {
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let r = algo::coloring::color(&engine, &g, policy, &probes);
                assert!(
                    coloring::is_proper_coloring(&g, &r.colors),
                    "{name} x{threads} {policy:?}"
                );
                assert!(
                    r.num_colors() <= g.max_degree() + 1,
                    "{name} x{threads} {policy:?}: {} colors > Δ + 1 = {}",
                    r.num_colors(),
                    g.max_degree() + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The three remaining paper algorithms — triangle counting (§3.2), Boruvka
// MST (§3.7), Brandes BC — as engine Programs: each against its sequential
// pp-core twin, at 1/2/8 threads, under push, pull, and adaptive policies,
// in BOTH execution modes (the §5 owner-computes push included).
// ---------------------------------------------------------------------------

#[test]
fn engine_triangles_match_sequential_counts_everywhere() {
    use algo::triangles::TcProgram;
    for (name, g) in families() {
        let expected = triangles::triangle_counts_seq(&g);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                for (mode_name, mode) in ExecutionMode::sweep() {
                    let counts = Runner::new(&engine, &probes)
                        .policy(policy)
                        .mode(mode)
                        .run(&g, TcProgram::new(&g))
                        .output;
                    assert_eq!(counts, expected, "{name} x{threads} {policy:?} {mode_name}");
                }
            }
        }
    }
}

#[test]
fn engine_mst_matches_kruskal_everywhere() {
    use algo::mst::{MstPhaseKind, MstProgram};
    for (name, g) in families() {
        let gw = gen::with_random_weights(&g, 1, 1000, 0xdef);
        let (kedges, kweight) = mst::kruskal_seq(&gw);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                for (mode_name, mode) in ExecutionMode::sweep() {
                    let run = Runner::new(&engine, &probes)
                        .policy(policy)
                        .mode(mode)
                        .run(&gw, MstProgram::new(&gw));
                    let (edges, weight) = run.output;
                    let tag = format!("{name} x{threads} {policy:?} {mode_name}");
                    assert_eq!(weight, kweight, "{tag}");
                    assert_eq!(edges.len(), kedges.len(), "{tag} edge count");
                    // The report exposes the paper's FM/BMT/M phase cycle.
                    for p in 0..run.report.phases {
                        let rounds = run.report.phase_rounds(p).count();
                        assert_eq!(rounds, 1, "{tag}: {:?}", MstPhaseKind::of(p));
                    }
                    if g.num_vertices() > 0 {
                        assert_eq!(
                            run.report.phases % 3,
                            2,
                            "{tag}: runs end after a merge-free BMT"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_bc_matches_brandes_everywhere() {
    use algo::bc::BcProgram;
    for (name, g) in families() {
        // Exact BC is O(n·m): cap sources on the larger families, matching
        // the pp-core equivalence test above.
        let cap = Some(24usize.min(g.num_vertices()));
        let reference = bc::betweenness_seq(&g, cap);
        let opts = bc::BcOptions { max_sources: cap };
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                for (mode_name, mode) in ExecutionMode::sweep() {
                    let scores = Runner::new(&engine, &probes)
                        .policy(policy)
                        .mode(mode)
                        .run(&g, BcProgram::new(&g, &opts))
                        .output;
                    for (i, (a, b)) in scores.iter().zip(&reference).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                            "{name} x{threads} {policy:?} {mode_name} vertex {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_tc_atomic_push_faas_per_corner_hit_pa_push_issues_none() {
    use algo::triangles::TcProgram;
    // The acceptance telemetry for triangle counting: shared-state push
    // resolves every corner hit with one FAA (§4.2); the owner-computes
    // schedule issues zero atomics and the identical counts. The FAA total
    // must equal the pp-core twin's on the same graph.
    let g = gen::rmat(7, 6, 7);
    let expected = triangles::triangle_counts_seq(&g);
    let corner_hits: u64 = {
        // Each ordered neighbor-pair adjacency hit is one FAA; per-vertex
        // counts are corner hits / 2, so the total is 2 · Σ tc[v] · ... —
        // count directly against the instrumented pp-core push.
        let probe = pushpull::telemetry::CountingProbe::new();
        triangles::triangle_counts_probed(&g, Direction::Push, &probe);
        probe.counts().atomics
    };
    assert!(corner_hits > 0, "rmat(7,6) must contain triangles");

    let engine = Engine::new(4);
    let run_mode = |mode: ExecutionMode| {
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(mode)
            .run(&g, TcProgram::new(&g));
        assert_eq!(run.output, expected);
        (probes.merged(), run.report)
    };

    let (atomic, atomic_report) = run_mode(ExecutionMode::Atomic);
    assert_eq!(
        atomic.atomics, corner_hits,
        "one FAA per triangle corner hit, same total as the pp-core twin"
    );
    assert_eq!(atomic.locks, 0);
    assert_eq!(atomic_report.remote_updates(), 0);

    let (pa, pa_report) = run_mode(ExecutionMode::PartitionAware);
    assert_eq!(pa.atomics, 0, "owner-computes TC push must not FAA");
    assert_eq!(pa.locks, 0);
    assert!(pa.remote_sends > 0, "rmat must cut across 4 parts");
    assert_eq!(pa.remote_sends, pa_report.remote_updates());
}

// ---------------------------------------------------------------------------
// Partition-aware execution (§5): the owner-computes push schedule is a
// *third* schedule of the same algorithm. Every Program, on every family,
// at 1/2/8 threads, under push, pull, and adaptive policies, must land on
// the oracle fixpoint in PartitionAware mode exactly as in Atomic mode.
// ---------------------------------------------------------------------------

#[test]
fn engine_partition_aware_mode_matches_every_oracle_everywhere() {
    use algo::{
        bfs::BfsProgram, coloring::ColoringProgram, components::CcProgram, kcore::KCoreProgram,
        labelprop::LabelPropProgram, pagerank::PageRankProgram, sssp::SsspProgram,
    };
    let pr_opts = pagerank::PrOptions {
        iters: 12,
        damping: 0.85,
    };
    const LP_CAP: usize = 30;
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let gw = gen::with_random_weights(&g, 1, 64, 0xabc);
        let (bfs_oracle, _, _) = stats::bfs_levels(&g, 0);
        let pr_oracle = pagerank::pagerank_seq(&g, &pr_opts);
        let sssp_oracle = sssp::dijkstra(&gw, 0);
        let cc_oracle = components::connected_components(&g, Direction::Pull).labels;
        let core_oracle = kcore::coreness_seq(&g);
        let lp_oracle = labelprop::label_propagation(&g, Direction::Pull, LP_CAP);
        for threads in THREADS {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for policy in engine_policies() {
                let runner = Runner::new(&engine, &probes)
                    .policy(policy)
                    .mode(ExecutionMode::PartitionAware);
                let tag = format!("{name} x{threads} {policy:?} pa");

                let (_, level) = runner.run(&g, BfsProgram::new(&g, 0)).output;
                assert_eq!(level, bfs_oracle, "bfs {tag}");

                let pr = runner.run(&g, PageRankProgram::new(&g, &pr_opts)).output;
                let diff = pagerank::l1_distance(&pr_oracle, &pr);
                assert!(diff < 1e-9, "pagerank {tag}: L1 {diff}");

                let (dist, _) = runner
                    .run(
                        &gw,
                        SsspProgram::new(&gw, 0, &sssp::SsspOptions { delta: 16 }),
                    )
                    .output;
                assert_eq!(dist, sssp_oracle, "sssp {tag}");

                let cc = runner.run(&g, CcProgram::new(&g)).output;
                assert_eq!(cc, cc_oracle, "components {tag}");

                let coreness = runner.run(&g, KCoreProgram::new(&g)).output;
                assert_eq!(coreness, core_oracle, "kcore {tag}");

                let (labels, iters, converged) =
                    runner.run(&g, LabelPropProgram::new(&g, LP_CAP)).output;
                assert_eq!(labels, lp_oracle.labels, "labelprop {tag}");
                assert_eq!(iters, lp_oracle.iterations, "labelprop iters {tag}");
                assert_eq!(converged, lp_oracle.converged, "labelprop conv {tag}");

                let colors = runner.run(&g, ColoringProgram::new(&g)).output;
                assert!(coloring::is_proper_coloring(&g, &colors), "coloring {tag}");
                let num_colors = colors
                    .iter()
                    .filter(|&&c| c != coloring::NO_COLOR)
                    .map(|&c| c as usize + 1)
                    .max()
                    .unwrap_or(0);
                assert!(num_colors <= g.max_degree() + 1, "coloring bound {tag}");
            }
        }
    }
}

#[test]
fn partition_aware_push_issues_zero_atomics_on_rmat() {
    // The acceptance telemetry: on an RMAT dataset, BFS and PageRank push
    // rounds under PartitionAware report zero atomic-CAS events and
    // nonzero buffered sends, while Atomic mode reports the opposite.
    let g = gen::rmat(8, 8, 7);
    let engine = Engine::new(4);
    let push = DirectionPolicy::Fixed(Direction::Push);
    let pr_opts = pagerank::PrOptions {
        iters: 3,
        damping: 0.85,
    };

    for algo_name in ["bfs", "pagerank"] {
        let run_mode = |mode: ExecutionMode| {
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
            let runner = Runner::new(&engine, &probes).policy(push).mode(mode);
            let report = match algo_name {
                "bfs" => runner.run(&g, algo::bfs::BfsProgram::new(&g, 0)).report,
                _ => {
                    runner
                        .run(&g, algo::pagerank::PageRankProgram::new(&g, &pr_opts))
                        .report
                }
            };
            (probes.merged(), report)
        };

        let (atomic, atomic_report) = run_mode(ExecutionMode::Atomic);
        assert!(
            atomic.atomics > 0,
            "{algo_name}: shared-state push must CAS"
        );
        assert_eq!(atomic.remote_sends, 0);
        assert_eq!(atomic_report.remote_updates(), 0);

        let (pa, pa_report) = run_mode(ExecutionMode::PartitionAware);
        assert_eq!(
            pa.atomics, 0,
            "{algo_name}: owner-computes push must not CAS"
        );
        assert_eq!(pa.locks, 0, "{algo_name}: nor lock");
        assert!(
            pa.remote_sends > 0,
            "{algo_name}: RMAT must cut across 4 parts"
        );
        assert_eq!(
            pa.remote_sends,
            pa_report.remote_updates(),
            "{algo_name}: probe and report must agree on exchange volume"
        );
        assert!(pa_report.max_buffer_peak() > 0);
        for round in &pa_report.rounds {
            assert!(
                round.remote_updates <= g.num_arcs() as u64,
                "{algo_name}: §5 bound — a sweep buffers at most 2m remote updates"
            );
            assert!(round.buffer_peak <= round.remote_updates);
        }
    }
}

// ---------------------------------------------------------------------------
// Property-based: for *any* random graph, a Program's push and pull
// schedules (and their adaptive interleaving) converge to the same fixpoint.
// ---------------------------------------------------------------------------

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n))
            .prop_map(move |edges| GraphBuilder::undirected(n).edges(edges).build())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn program_schedules_share_one_fixpoint(g in arb_graph(48), threads in 1usize..5) {
        use algo::{
            bc::BcProgram, bfs::BfsProgram, coloring::ColoringProgram,
            components::CcProgram, kcore::KCoreProgram, labelprop::LabelPropProgram,
            mst::MstProgram, triangles::TcProgram,
        };
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let sweep: Vec<DirectionPolicy> = engine_policies().collect();
        let modes = ExecutionMode::sweep();

        let cc_oracle = components::connected_components(&g, Direction::Pull).labels;
        let core_oracle = kcore::coreness_seq(&g);
        let lp_oracle = labelprop::label_propagation(&g, Direction::Pull, 20);
        let (bfs_oracle, _, _) = stats::bfs_levels(&g, 0);
        let tc_oracle = triangles::triangle_counts_seq(&g);
        let gw = gen::with_random_weights(&g, 1, 64, 0xfeed);
        let (mst_edges_oracle, mst_weight_oracle) = mst::kruskal_seq(&gw);
        let bc_opts = bc::BcOptions { max_sources: Some(8) };
        let bc_oracle = bc::betweenness_seq(&g, Some(8));

        // Every (policy, execution-mode) pair is one schedule; all of them
        // must converge to the same fixpoint.
        for &policy in &sweep {
            for (mode_name, mode) in modes {
                let runner = Runner::new(&engine, &probes).policy(policy).mode(mode);

                // Components: every schedule must land on the component minima.
                let cc = runner.run(&g, CcProgram::new(&g)).output;
                prop_assert_eq!(&cc, &cc_oracle, "cc {:?} {}", policy, mode_name);

                // k-core: every schedule must produce the sequential coreness.
                let coreness = runner.run(&g, KCoreProgram::new(&g)).output;
                prop_assert_eq!(&coreness, &core_oracle, "kcore {:?} {}", policy, mode_name);

                // Label propagation: schedules must agree label-for-label.
                let (labels, iters, _) = runner.run(&g, LabelPropProgram::new(&g, 20)).output;
                prop_assert_eq!(&labels, &lp_oracle.labels, "lp {:?} {}", policy, mode_name);
                prop_assert_eq!(iters, lp_oracle.iterations, "lp iters {:?} {}", policy, mode_name);

                // BFS: levels are schedule-invariant.
                let (_, level) = runner.run(&g, BfsProgram::new(&g, 0)).output;
                prop_assert_eq!(&level, &bfs_oracle, "bfs {:?} {}", policy, mode_name);

                // Coloring: fixpoints may differ per schedule but must all
                // be proper and greedy-bounded.
                let colors = runner.run(&g, ColoringProgram::new(&g)).output;
                prop_assert!(
                    coloring::is_proper_coloring(&g, &colors),
                    "gc {:?} {}", policy, mode_name
                );
                let used = colors
                    .iter()
                    .filter(|&&c| c != coloring::NO_COLOR)
                    .map(|&c| c as usize + 1)
                    .max()
                    .unwrap_or(0);
                prop_assert!(used <= g.max_degree() + 1, "gc bound {:?} {}", policy, mode_name);

                // Triangle counts: exact integers in every schedule.
                let tc = runner.run(&g, TcProgram::new(&g)).output;
                prop_assert_eq!(&tc, &tc_oracle, "tc {:?} {}", policy, mode_name);

                // MST: forest weight and size are schedule-invariant.
                let (mst_edges, mst_weight) = runner.run(&gw, MstProgram::new(&gw)).output;
                prop_assert_eq!(mst_weight, mst_weight_oracle, "mst {:?} {}", policy, mode_name);
                prop_assert_eq!(
                    mst_edges.len(), mst_edges_oracle.len(),
                    "mst edges {:?} {}", policy, mode_name
                );

                // BC: dependencies match Brandes to ε (push reorders floats).
                let scores = runner.run(&g, BcProgram::new(&g, &bc_opts)).output;
                for (i, (a, b)) in scores.iter().zip(&bc_oracle).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                        "bc {:?} {} vertex {}: {} vs {}", policy, mode_name, i, a, b
                    );
                }
            }
        }
    }
}

#[test]
fn engine_probe_shards_reconcile_with_a_single_counting_probe() {
    // Per-worker shards are an implementation detail: their merged totals
    // must equal what one funneled CountingProbe sees for the same run, and
    // (for deterministic pull schedules) must be thread-count-invariant.
    for (name, g) in families() {
        if g.num_vertices() == 0 {
            continue;
        }
        let run = |threads: usize, shards: usize| {
            let engine = Engine::new(threads);
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(shards);
            algo::bfs::bfs(
                &engine,
                &g,
                0,
                DirectionPolicy::Fixed(Direction::Pull),
                &probes,
            );
            probes.merged()
        };
        let sharded = run(8, 8);
        let funneled = run(8, 1);
        let sequential = run(1, 1);
        assert_eq!(sharded, funneled, "{name}: shard layout changed totals");
        assert_eq!(sharded, sequential, "{name}: thread count changed totals");
        assert!(sharded.reads > 0, "{name}: pull BFS must read");
        assert_eq!(sharded.atomics, 0, "{name}: pull BFS is sync-free");
    }
}

#[test]
fn generalized_bfs_matches_plain_bfs_levels() {
    for (name, g) in families() {
        let n = g.num_vertices();
        if n == 0 {
            continue;
        }
        let mut ready = vec![1i64; n];
        ready[0] = 0;
        let (expected, _, _) = stats::bfs_levels(&g, 0);
        for dir in Direction::BOTH {
            let r = bfs::generalized_bfs(
                &g,
                &g,
                &ready,
                vec![0u32; n],
                |t, s| *t = (*t).max(s + 1),
                dir,
                &pushpull::telemetry::NullProbe,
            );
            let levels: Vec<u32> = r
                .values
                .iter()
                .enumerate()
                .map(|(v, &x)| {
                    if v == 0 {
                        0
                    } else if x == 0 {
                        u32::MAX
                    } else {
                        x
                    }
                })
                .collect();
            assert_eq!(levels, expected, "{name} {dir:?}");
        }
    }
}
