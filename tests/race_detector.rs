//! Dynamic owner-computes discipline check (`--features race-detect`).
//!
//! The §5 exchange path argues its plain writes are safe because each
//! vertex-state slot has exactly one writer per phase. With the
//! `race-detect` feature on, every instrumented plain write runs through
//! the engine's shadow-write tracker, which panics on a cross-owner
//! write. This suite (a) runs all ten registry Programs in
//! `PartitionAware` mode at 2 and 8 threads under the detector and
//! asserts they still land on the `Atomic`-mode results with zero
//! violations, and (b) drives a deliberately broken kernel through the
//! exchange to prove the detector actually fires.

#![cfg(feature = "race-detect")]

use pushpull::core::Direction;
use pushpull::engine::registry::{self, RunConfig};
use pushpull::engine::{
    race, DirectionPolicy, EdgeKernel, Engine, ExecutionMode, Frontier, PaContext, ProbeShards,
};
use pushpull::graph::{gen, VertexId};
use pushpull::telemetry::{NullProbe, Probe};
use std::sync::atomic::{AtomicU32, Ordering};

/// All ten Programs, both thread counts: partition-aware execution under
/// the race detector must be panic-free, must actually exercise the
/// checker, and must reproduce the shared-state (Atomic) results.
#[test]
fn all_programs_run_clean_under_the_detector() {
    let g = gen::rmat(8, 8, 7);
    let gw = gen::with_random_weights(&g, 1, 64, 0xabc);
    assert_eq!(registry::all().len(), 10);
    for threads in [2usize, 8] {
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for spec in registry::all() {
            let graph = if spec.needs_weights { &gw } else { &g };
            // Fixed push: the detector guards the push exchange, and an
            // adaptive policy would route dense rounds to pull, leaving
            // nothing to check.
            let push = DirectionPolicy::Fixed(Direction::Push);
            let atomic = spec.run(
                &RunConfig {
                    mode: ExecutionMode::Atomic,
                    policy: push,
                    ..RunConfig::new(&engine, &probes)
                },
                graph,
            );
            let before = race::checked_writes();
            let pa = spec.run(
                &RunConfig {
                    mode: ExecutionMode::PartitionAware,
                    policy: push,
                    ..RunConfig::new(&engine, &probes)
                },
                graph,
            );
            let checked = race::checked_writes() - before;
            assert!(
                checked > 0,
                "{} x{threads}: partition-aware run never hit the detector",
                spec.name
            );
            // Speculative coloring's color count legitimately depends on
            // the schedule; every other summary is schedule-invariant.
            if spec.name != "coloring" {
                assert_eq!(
                    atomic.summary, pa.summary,
                    "{} x{threads}: atomic vs partition-aware digest",
                    spec.name
                );
            } else {
                assert!(!pa.summary.is_empty());
            }
        }
    }
}

/// A kernel that violates the owner-computes contract on purpose: its
/// `apply_owned` writes (and instruments) the *source* vertex's slot,
/// which in the delivery phase belongs to a foreign part.
struct SmearKernel<'a> {
    mark: &'a [AtomicU32],
}

impl<P: Probe> EdgeKernel<P> for SmearKernel<'_> {
    fn push_update(&self, _u: VertexId, v: VertexId, _w: u32, _probe: &P) -> bool {
        self.mark[v as usize]
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: u32, _probe: &P) -> bool {
        // The bug under test: plain-writing `u`'s state from `v`'s owner.
        race::note_state_write(u);
        self.mark[u as usize].store(1, Ordering::Relaxed);
        self.mark[v as usize].store(1, Ordering::Relaxed);
        true
    }

    fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
        self.mark[v as usize].load(Ordering::Relaxed) == 0
    }

    fn pull_saturates(&self) -> bool {
        true
    }
}

#[test]
#[should_panic(expected = "race-detect")]
fn broken_kernel_is_caught_at_the_offending_vertex() {
    // A path split over two parts: every cross-part edge routes through
    // the exchange, and the delivery-phase `apply_owned` touches the
    // foreign source vertex. One engine thread keeps the phase inline so
    // the panic surfaces on this thread.
    let g = gen::path(64);
    let engine = Engine::new(1);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let mark: Vec<AtomicU32> = (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect();
    mark[0].store(1, Ordering::Relaxed);
    let kernel = SmearKernel { mark: &mark };
    let mut ctx = PaContext::new(&g, 2);
    let mut frontier = Frontier::single(&g, 0);
    while !frontier.is_empty() {
        let (next, _) = ctx.push_round(&engine, &g, &mut frontier, &kernel, &probes);
        frontier = next;
    }
}
