//! Smoke tests for the table/figure harness: every experiment must run to
//! completion at test scale (the CI-grade guarantee that `tables all`
//! works). Output goes to stdout and is not checked beyond "no panic".

use pp_bench::experiments::{self, Ctx};
use pp_graph::datasets::Scale;

fn ctx() -> Ctx {
    Ctx {
        scale: Scale::Test,
        threads: 2,
        samples: 1,
        json: None,
    }
}

#[test]
fn table1_runs() {
    experiments::table1::run(ctx());
}

#[test]
fn table2_runs() {
    experiments::table2::run(ctx());
}

#[test]
fn table3_runs() {
    experiments::table3::run(ctx());
}

#[test]
fn table4_runs() {
    experiments::table4::run(ctx());
}

#[test]
fn fig1_runs() {
    experiments::fig1::run(ctx());
}

#[test]
fn fig2_runs() {
    experiments::fig2::run(ctx());
}

#[test]
fn fig3_runs() {
    experiments::fig3::run(ctx());
}

#[test]
fn fig4_runs() {
    experiments::fig4::run(ctx());
}

#[test]
fn fig5_runs() {
    experiments::fig5::run(ctx());
}

#[test]
fn fig6_runs() {
    experiments::fig6::run(ctx());
}

#[test]
fn weak_runs() {
    experiments::weak::run(ctx());
}

#[test]
fn pram_table_runs() {
    experiments::pram_table::run(ctx());
}

#[test]
fn ext_runs() {
    experiments::ext::run(ctx());
}

#[test]
fn engine_runs_and_dumps_json() {
    let path = std::env::temp_dir().join("pp_engine_sweep_smoke.json");
    let leaked: &'static str = Box::leak(path.to_string_lossy().into_owned().into_boxed_str());
    experiments::engine::run(Ctx {
        json: Some(leaked),
        ..ctx()
    });
    let dump = std::fs::read_to_string(&path).expect("--json dump must exist");
    assert!(dump.contains("\"experiment\": \"engine\""));
    assert!(dump.contains("\"mode\": \"atomic\""));
    assert!(dump.contains("\"mode\": \"pa\""));
    assert!(dump.trim_start().starts_with('{') && dump.trim_end().ends_with('}'));
    let _ = std::fs::remove_file(&path);
}
