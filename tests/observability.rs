//! Observability-layer guarantees (PR 6): the timing/tracing exports are
//! well-formed, the lap accounting reconciles with the round clock, and —
//! critically — `MetricsLevel::Off` reproduces the legacy report exactly.
//!
//! These are the cross-crate halves of the story: `pp-engine` produces the
//! instrumented `RunReport`, `pp-telemetry` serializes the Chrome trace,
//! and `pp-bench`'s JSON reader (the `ppgraph report` parser) reads the
//! trace back. Unit tests inside each crate cover the pieces; this suite
//! covers the pipeline.

use pp_bench::json::{self, Value};
use pp_engine::algo::bfs::BfsProgram;
use pp_engine::report::WORKER_TID_BASE;
use pp_engine::{DirectionPolicy, Engine, ProbeShards, Runner};
use pp_graph::datasets::{Dataset, Scale};
use pp_telemetry::{MetricsLevel, NullProbe};

fn traced_bfs(threads: usize) -> pp_engine::Run<(Vec<u32>, Vec<u32>)> {
    let g = Dataset::Orc.generate(Scale::Test);
    let engine = Engine::new(threads);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    Runner::new(&engine, &probes)
        .policy(DirectionPolicy::adaptive())
        .metrics(MetricsLevel::Trace)
        .run(&g, BfsProgram::new(&g, 0))
}

/// The `--trace` export parse-checks through the harness's own JSON
/// reader and contains one duration event per executed round plus one
/// named track per pool thread.
#[test]
fn trace_json_has_an_event_per_round_and_a_track_per_worker() {
    let threads = 2;
    let run = traced_bfs(threads);
    assert!(run.report.num_rounds() >= 2, "BFS on orc runs real rounds");

    let trace = run.report.chrome_trace("bfs adaptive");
    let doc = json::parse(&trace.to_json()).expect("trace JSON parses");
    let events = doc.arr().expect("a trace is a JSON array");
    assert_eq!(events.len(), trace.len());

    let tid = |e: &Value| e.get("tid").and_then(Value::u64).unwrap();
    let round_events: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::str) == Some("X") && tid(e) == 0)
        .collect();
    assert_eq!(
        round_events.len(),
        run.report.num_rounds(),
        "one duration event per executed round"
    );
    for e in &round_events {
        assert!(e.get("dur").and_then(Value::num).unwrap() > 0.0);
        assert!(e.get("args").and_then(|a| a.get("dir")).is_some());
    }

    let worker_tracks: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::str) == Some("M") && tid(e) >= u64::from(WORKER_TID_BASE)
        })
        .map(tid)
        .collect();
    assert_eq!(
        worker_tracks.len(),
        threads,
        "one named track per pool thread (caller + workers)"
    );

    // The adaptive BFS on orc switches push→pull; the switch shows up as
    // an instant event.
    if run.report.switches() > 0 {
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::str) == Some("i")));
    }
}

/// Per-worker busy time reconciles with the round clock at every pool
/// width: a worker can never be busy longer than the rounds lasted, the
/// caller (worker 0) always does work, and at `Trace` level the per-round
/// busy matrix sums to each round's wall time at most `threads`-fold.
#[test]
fn worker_busy_totals_reconcile_with_round_durations() {
    for threads in [1, 2, 8] {
        let run = traced_bfs(threads);
        let r = &run.report;
        let total_ns = r.round_duration_ns();
        assert!(total_ns > 0, "timed rounds at {threads} threads");
        assert_eq!(r.worker_laps.len(), threads);

        // Pool rounds are sub-intervals of runner rounds, so each
        // worker's recorded wall (busy + idle) is bounded by the summed
        // round durations. Generous slack: clocks are read at different
        // nesting depths.
        let slack = total_ns / 5 + 1_000_000;
        for (w, lap) in r.worker_laps.iter().enumerate() {
            assert!(
                lap.busy_ns + lap.idle_ns <= total_ns + slack,
                "worker {w} of {threads}: busy {} + idle {} vs rounds {total_ns}",
                lap.busy_ns,
                lap.idle_ns
            );
        }
        assert!(r.worker_laps[0].busy_ns > 0, "the caller always works");
        assert!(r.worker_laps[0].chunks_claimed > 0);
        assert!(r.imbalance() >= 1.0, "imbalance is max/mean");
        assert!(r.elapsed_ns >= total_ns, "rounds happen within the run");

        // The Trace-level matrix is per round × per worker and its totals
        // fold into the same ledgers the laps report.
        assert_eq!(r.round_worker_busy.len(), r.num_rounds());
        let matrix_busy: u64 = r.round_worker_busy.iter().flatten().sum();
        let lap_busy: u64 = r.worker_laps.iter().map(|l| l.busy_ns).sum();
        assert!(
            matrix_busy <= lap_busy,
            "per-round busy deltas cannot exceed the run totals"
        );
        for (i, row) in r.round_worker_busy.iter().enumerate() {
            assert_eq!(row.len(), threads);
            let round_busy: u64 = row.iter().sum();
            assert!(
                round_busy <= (r.rounds[i].duration_ns + slack) * threads as u64,
                "round {i}: {round_busy} busy across {threads} workers"
            );
        }
    }
}

/// Every edge-map round's recorded decision reproduces why the policy
/// chose its direction: the share/threshold comparison matches the
/// direction taken, and switch flags agree with the report aggregate.
#[test]
fn policy_decisions_explain_the_chosen_directions() {
    let run = traced_bfs(2);
    let decisions: Vec<_> = run
        .report
        .rounds
        .iter()
        .filter_map(|r| r.decision)
        .collect();
    assert_eq!(
        decisions.len(),
        run.report.num_rounds(),
        "BFS is all edge-map rounds; each records a decision"
    );
    for (s, d) in run.report.rounds.iter().zip(&decisions) {
        assert_eq!(s.dir, d.dir, "the decision is the direction taken");
        assert!((0.0..=1.0).contains(&d.observed_share));
        assert!(d.threshold > 0.0, "adaptive rounds compare to a threshold");
    }
    let switched = decisions.iter().filter(|d| d.switched).count();
    assert_eq!(switched, run.report.switches());
    assert!(switched >= 1, "orc BFS crosses the Beamer threshold");
}

/// The no-regression guard: `MetricsLevel::Off` (the default) produces a
/// report equal to an explicit-Off run and carries none of the new
/// instrumentation — the legacy report, byte for byte.
#[test]
fn metrics_off_reproduces_the_legacy_report() {
    let g = Dataset::Orc.generate(Scale::Test);
    let engine = Engine::new(2);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let default_run = Runner::new(&engine, &probes)
        .policy(DirectionPolicy::adaptive())
        .run(&g, BfsProgram::new(&g, 0));
    let off_run = Runner::new(&engine, &probes)
        .policy(DirectionPolicy::adaptive())
        .metrics(MetricsLevel::Off)
        .run(&g, BfsProgram::new(&g, 0));

    assert_eq!(default_run.report, off_run.report, "Off is the default");
    let r = &default_run.report;
    assert_eq!(r.elapsed_ns, 0);
    assert_eq!(r.round_duration_ns(), 0);
    assert!(r.worker_laps.is_empty());
    assert!(r.round_worker_busy.is_empty());
    assert!(r.rounds.iter().all(|s| s.decision.is_none()));
    assert!(r
        .rounds
        .iter()
        .all(|s| s.duration_ns == 0 && s.start_ns == 0));
    // The frontier trajectory itself is deterministic and identical to an
    // instrumented run's.
    let traced = traced_bfs(2);
    assert_eq!(r.num_rounds(), traced.report.num_rounds());
    for (a, b) in r.rounds.iter().zip(&traced.report.rounds) {
        assert_eq!(
            (a.frontier, a.frontier_edges, a.dir),
            (b.frontier, b.frontier_edges, b.dir)
        );
    }
}
