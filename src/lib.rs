//! # pushpull — the push–pull dichotomy in graph computations
//!
//! A Rust reproduction of *"To Push or To Pull: On Reducing Communication
//! and Synchronization in Graph Computations"* (Besta, Podstawski, Groner,
//! Solomonik, Hoefler — HPDC 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graphs, generators, 1D partitioning, the
//!   partition-aware representation (§2.2, §5).
//! * [`telemetry`] — event probes (reads/writes/atomics/locks/branches) and
//!   a cache+TLB simulator standing in for PAPI (§6, Table 1).
//! * [`pram`] — PRAM machine models and the §4 cost analysis.
//! * [`core`] — push- and pull-based PR, TC, BFS, SSSP-Δ, BC (exact and
//!   sampled), Boman graph coloring, Boruvka/Prim/Kruskal MST, connected
//!   components, k-core decomposition, Bellman–Ford, and community label
//!   propagation, plus the five acceleration strategies (§5),
//!   directed-graph variants (§4.8), the GAS abstraction (§7.4), the
//!   linear-algebra formulation (§7.1), and Graph500-style validators.
//! * [`dm`] — the distributed-memory simulation substrate with Message
//!   Passing and RMA backends (§6.3): PR, TC, BFS (with §7.2's
//!   push–pull switching), SSSP-Δ (reproducing §6.5's SM/DM inversion),
//!   and Boman coloring.
//! * [`engine`] — the parallel frontier-driven execution engine behind a
//!   `Program`/`Runner` vertex-program API: a persistent thread pool with
//!   dynamic degree-aware work distribution, sparse/dense frontiers,
//!   `edge_map`/`vertex_map` operators generic over direction,
//!   Beamer-style adaptive push⇄pull switching, per-worker telemetry
//!   shards, and a unified per-round `RunReport`; BFS, PageRank, SSSP-Δ,
//!   connected components, k-core, label propagation, and Boman coloring
//!   all run on the one shared round loop with the [`core`]
//!   implementations as oracles.
//!
//! ## Quickstart
//!
//! ```
//! use pushpull::graph::{datasets::{Dataset, Scale}};
//! use pushpull::core::{pagerank, Direction};
//!
//! let g = Dataset::Ljn.generate(Scale::Test);
//! let opts = pagerank::PrOptions::default();
//! let push = pagerank::pagerank(&g, Direction::Push, &opts);
//! let pull = pagerank::pagerank(&g, Direction::Pull, &opts);
//! let diff: f64 = push.iter().zip(&pull).map(|(a, b)| (a - b).abs()).sum();
//! assert!(diff < 1e-9, "push and pull must agree");
//! ```

pub use pp_core as core;
pub use pp_dm as dm;
pub use pp_engine as engine;
pub use pp_graph as graph;
pub use pp_pram as pram;
pub use pp_telemetry as telemetry;
