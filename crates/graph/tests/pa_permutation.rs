//! Property: the §5 partition-aware split is a *permutation* of the CSR
//! adjacency. For every vertex, concatenating its local and remote arrays
//! must yield exactly `neighbors(v)` as a multiset — no arc lost, none
//! invented, none reclassified — for any graph and any part count,
//! including `p > n` and `n` not divisible by `p`.

use pp_graph::{gen, BlockPartition, CsrGraph, GraphBuilder, PartitionAwareGraph, VertexId};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(4 * n))
            .prop_map(move |edges| GraphBuilder::undirected(n).edges(edges).build())
    })
}

fn assert_split_is_permutation(g: &CsrGraph, p: usize) {
    let part = BlockPartition::new(g.num_vertices(), p);
    let pa = PartitionAwareGraph::new(g, part);
    assert_eq!(
        pa.num_local_arcs() + pa.num_remote_arcs(),
        g.num_arcs(),
        "p={p}: arc total changed"
    );
    for v in g.vertices() {
        let mut merged: Vec<VertexId> = pa
            .local_neighbors(v)
            .iter()
            .chain(pa.remote_neighbors(v))
            .copied()
            .collect();
        merged.sort_unstable();
        // CSR neighbor lists are sorted, so sorting the merged split must
        // reproduce them exactly (multiset equality).
        assert_eq!(merged, g.neighbors(v), "p={p} v={v}: not a permutation");
        for &u in pa.local_neighbors(v) {
            assert_eq!(part.owner(u), part.owner(v), "p={p}: {u} misfiled local");
        }
        for &u in pa.remote_neighbors(v) {
            assert_ne!(part.owner(u), part.owner(v), "p={p}: {u} misfiled remote");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn split_is_a_permutation_of_csr_for_any_partition(
        g in arb_graph(40),
        p in 1usize..64,
    ) {
        // `p` ranges past `max_n`, so part counts exceeding the vertex
        // count (empty parts) are drawn routinely.
        assert_split_is_permutation(&g, p);
    }

    #[test]
    fn weighted_split_is_a_permutation_too(
        g in arb_graph(24),
        p in 1usize..40,
        seed in 0u64..1000,
    ) {
        let gw = gen::with_random_weights(&g, 1, 64, seed);
        let part = BlockPartition::new(gw.num_vertices(), p);
        let pa = PartitionAwareGraph::new(&gw, part);
        for v in gw.vertices() {
            let mut split: Vec<(VertexId, u32)> = pa
                .local_neighbors(v)
                .iter()
                .copied()
                .zip(pa.local_neighbor_weights(v).iter().copied())
                .chain(
                    pa.remote_neighbors(v)
                        .iter()
                        .copied()
                        .zip(pa.remote_neighbor_weights(v).iter().copied()),
                )
                .collect();
            split.sort_unstable();
            let mut csr: Vec<(VertexId, u32)> = gw.weighted_neighbors(v).collect();
            csr.sort_unstable();
            prop_assert_eq!(split, csr, "p={} v={}", p, v);
        }
    }
}

#[test]
fn non_divisible_and_oversized_part_counts_explicitly() {
    // The deterministic edge cases the property above draws by chance:
    // n % p != 0, p == n, and p > n (some parts own no vertices).
    for (n, p) in [(7usize, 3usize), (10, 4), (5, 5), (3, 11)] {
        let g = gen::erdos_renyi(n, 2 * n, 42);
        assert_split_is_permutation(&g, p);
    }
    // A single vertex split over many parts: all but one part own nothing.
    assert_split_is_permutation(&GraphBuilder::undirected(1).build(), 8);
}
