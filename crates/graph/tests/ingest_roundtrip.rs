//! Property: every generator-family graph — weighted or not — survives
//! both serialization paths with exact (`==`) equality:
//!
//! * text edge list: `write_edge_list` → `read_edge_list` with
//!   `min_vertices = 0` (the `n=`/`weighted=` header must carry isolated
//!   tail vertices and the weighted flag on its own);
//! * binary snapshot: `save_ppg` → `load_ppg`.

use pp_graph::io::{read_edge_list, write_edge_list};
use pp_graph::snapshot::{load_ppg, save_ppg};
use pp_graph::{gen, CsrGraph};
use proptest::prelude::*;

/// One graph from each `gen::*` family, sized and seeded by the strategy.
fn arb_family_graph() -> impl Strategy<Value = (&'static str, CsrGraph)> {
    (0usize..12, 1u64..1_000).prop_map(|(family, seed)| match family {
        0 => (
            "rmat",
            gen::rmat(5 + (seed % 3) as u32, 2 + (seed % 4) as usize, seed),
        ),
        1 => (
            "erdos_renyi",
            gen::erdos_renyi(2 + (seed % 60) as usize, (seed % 150) as usize, seed),
        ),
        2 => (
            "road_grid",
            gen::road_grid(2 + (seed % 8) as usize, 2 + (seed % 9) as usize, 0.6, seed),
        ),
        3 => (
            "community",
            gen::community(2 + (seed % 3) as usize, 8, 20, 10, seed),
        ),
        4 => ("path", gen::path((seed % 40) as usize)),
        5 => ("cycle", gen::cycle(3 + (seed % 40) as usize)),
        6 => ("star", gen::star(1 + (seed % 40) as usize)),
        7 => ("complete", gen::complete((seed % 14) as usize)),
        8 => ("binary_tree", gen::binary_tree((seed % 40) as usize)),
        9 => (
            "barabasi_albert",
            gen::barabasi_albert(4 + (seed % 60) as usize, 1 + (seed % 3) as usize, seed),
        ),
        10 => (
            "watts_strogatz",
            gen::watts_strogatz(8 + (seed % 50) as usize, 1 + (seed % 3) as usize, 0.2, seed),
        ),
        _ => (
            "bipartite",
            gen::bipartite(
                1 + (seed % 10) as usize,
                1 + (seed % 12) as usize,
                (seed % 60) as usize,
                seed,
            ),
        ),
    })
}

fn assert_both_round_trips(g: &CsrGraph, ctx: &str) {
    let mut text = Vec::new();
    write_edge_list(g, &mut text).unwrap();
    let back = read_edge_list(text.as_slice(), 0)
        .unwrap_or_else(|e| panic!("{ctx}: edge list re-read failed: {e}"));
    assert_eq!(&back, g, "{ctx}: edge-list round trip");

    let mut bin = Vec::new();
    save_ppg(g, &mut bin).unwrap();
    let back =
        load_ppg(bin.as_slice()).unwrap_or_else(|e| panic!("{ctx}: snapshot re-read failed: {e}"));
    assert_eq!(&back, g, "{ctx}: .ppg round trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_generated_graph_round_trips_unweighted(
        case in arb_family_graph(),
    ) {
        let (family, g) = case;
        assert_both_round_trips(&g, family);
    }

    #[test]
    fn any_generated_graph_round_trips_weighted(
        case in arb_family_graph(),
        lo in 1u32..5,
        span in 0u32..90,
        wseed in 0u64..1_000,
    ) {
        let (family, g) = case;
        let gw = gen::with_random_weights(&g, lo, lo + span, wseed);
        assert_both_round_trips(&gw, family);
    }
}
