//! The Partition-Awareness representation of §5.
//!
//! Each vertex's adjacency array is split into a *local* part (neighbors
//! owned by the same thread as `v`) and a *remote* part (neighbors owned by
//! other threads). All local and remote arrays form two contiguous arrays
//! with separate offsets, growing the representation from `n + 2m` to
//! `2n + 2m` cells but letting a pushing thread update local neighbors with
//! plain writes and reserve atomics for remote ones.

use crate::{BlockPartition, CsrGraph, VertexId, Weight};

/// Partition-aware adjacency: per-vertex local/remote neighbor split under a
/// fixed [`BlockPartition`]. On weighted graphs the weights are split along
/// with their targets, so weighted kernels (SSSP-Δ) can traverse the two
/// halves without consulting the original CSR.
#[derive(Clone, Debug)]
pub struct PartitionAwareGraph {
    partition: BlockPartition,
    local_offsets: Vec<u64>,
    local_targets: Vec<VertexId>,
    local_weights: Option<Vec<Weight>>,
    remote_offsets: Vec<u64>,
    remote_targets: Vec<VertexId>,
    remote_weights: Option<Vec<Weight>>,
}

impl PartitionAwareGraph {
    /// Builds the split representation from a graph and a partition.
    pub fn new(g: &CsrGraph, partition: BlockPartition) -> Self {
        assert_eq!(partition.num_vertices(), g.num_vertices());
        let n = g.num_vertices();
        let weighted = g.is_weighted();
        let mut local_offsets = vec![0u64; n + 1];
        let mut remote_offsets = vec![0u64; n + 1];
        for v in g.vertices() {
            let owner = partition.owner(v);
            let local = g
                .neighbors(v)
                .iter()
                .filter(|&&u| partition.owner(u) == owner)
                .count() as u64;
            local_offsets[v as usize + 1] = local;
            remote_offsets[v as usize + 1] = g.degree(v) as u64 - local;
        }
        for i in 0..n {
            local_offsets[i + 1] += local_offsets[i];
            remote_offsets[i + 1] += remote_offsets[i];
        }
        let num_local = *local_offsets.last().unwrap() as usize;
        let num_remote = *remote_offsets.last().unwrap() as usize;
        let mut local_targets = vec![0 as VertexId; num_local];
        let mut remote_targets = vec![0 as VertexId; num_remote];
        let mut local_weights = weighted.then(|| vec![0 as Weight; num_local]);
        let mut remote_weights = weighted.then(|| vec![0 as Weight; num_remote]);
        for v in g.vertices() {
            let owner = partition.owner(v);
            let (mut li, mut ri) = (
                local_offsets[v as usize] as usize,
                remote_offsets[v as usize] as usize,
            );
            let weights = weighted.then(|| g.neighbor_weights(v));
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let w = weights.map(|ws| ws[k]);
                if partition.owner(u) == owner {
                    local_targets[li] = u;
                    if let Some(w) = w {
                        local_weights.as_mut().unwrap()[li] = w;
                    }
                    li += 1;
                } else {
                    remote_targets[ri] = u;
                    if let Some(w) = w {
                        remote_weights.as_mut().unwrap()[ri] = w;
                    }
                    ri += 1;
                }
            }
        }
        Self {
            partition,
            local_offsets,
            local_targets,
            local_weights,
            remote_offsets,
            remote_targets,
            remote_weights,
        }
    }

    /// The partition this representation was built for.
    #[inline]
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.local_offsets.len() - 1
    }

    /// Neighbors of `v` owned by the same thread as `v`.
    #[inline]
    pub fn local_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.local_offsets[v as usize] as usize;
        let hi = self.local_offsets[v as usize + 1] as usize;
        &self.local_targets[lo..hi]
    }

    /// Neighbors of `v` owned by other threads.
    #[inline]
    pub fn remote_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.remote_offsets[v as usize] as usize;
        let hi = self.remote_offsets[v as usize + 1] as usize;
        &self.remote_targets[lo..hi]
    }

    /// Whether split edge weights are attached.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.local_weights.is_some()
    }

    /// Weights parallel to [`PartitionAwareGraph::local_neighbors`].
    ///
    /// # Panics
    /// Panics if the underlying graph was unweighted.
    #[inline]
    pub fn local_neighbor_weights(&self, v: VertexId) -> &[Weight] {
        let lo = self.local_offsets[v as usize] as usize;
        let hi = self.local_offsets[v as usize + 1] as usize;
        let w = self
            .local_weights
            .as_ref()
            .expect("partition-aware graph is unweighted");
        &w[lo..hi]
    }

    /// Weights parallel to [`PartitionAwareGraph::remote_neighbors`].
    ///
    /// # Panics
    /// Panics if the underlying graph was unweighted.
    #[inline]
    pub fn remote_neighbor_weights(&self, v: VertexId) -> &[Weight] {
        let lo = self.remote_offsets[v as usize] as usize;
        let hi = self.remote_offsets[v as usize + 1] as usize;
        let w = self
            .remote_weights
            .as_ref()
            .expect("partition-aware graph is unweighted");
        &w[lo..hi]
    }

    /// Number of same-owner neighbors of `v` — O(1) from the split offsets,
    /// so schedulers can weigh chunks without touching the target arrays.
    #[inline]
    pub fn local_degree(&self, v: VertexId) -> usize {
        (self.local_offsets[v as usize + 1] - self.local_offsets[v as usize]) as usize
    }

    /// Number of foreign-owner neighbors of `v` — O(1), see
    /// [`PartitionAwareGraph::local_degree`].
    #[inline]
    pub fn remote_degree(&self, v: VertexId) -> usize {
        (self.remote_offsets[v as usize + 1] - self.remote_offsets[v as usize]) as usize
    }

    /// Degree of `v` (local + remote).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.local_degree(v) + self.remote_degree(v)
    }

    /// Total number of remote arcs: the upper bound on atomics a
    /// partition-aware push sweep issues (§5: between 0 and `2m`).
    pub fn num_remote_arcs(&self) -> usize {
        self.remote_targets.len()
    }

    /// Total number of local arcs.
    pub fn num_local_arcs(&self) -> usize {
        self.local_targets.len()
    }

    /// Representation size in cells: `2n + 2m` for an undirected graph, per
    /// §5 (two offset arrays of `n`, adjacency split preserving `2m` slots).
    pub fn representation_cells(&self) -> usize {
        2 * self.num_vertices() + self.local_targets.len() + self.remote_targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn split_preserves_all_arcs() {
        let g = gen::rmat(8, 4, 9);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), 4));
        assert_eq!(
            pa.num_local_arcs() + pa.num_remote_arcs(),
            g.num_arcs(),
            "split must not lose arcs"
        );
        for v in g.vertices() {
            let mut merged: Vec<_> = pa
                .local_neighbors(v)
                .iter()
                .chain(pa.remote_neighbors(v))
                .copied()
                .collect();
            merged.sort_unstable();
            assert_eq!(merged, g.neighbors(v), "vertex {v}");
            assert_eq!(pa.degree(v), g.degree(v));
        }
    }

    #[test]
    fn locality_classification_is_correct() {
        let g = gen::path(6);
        let part = BlockPartition::new(6, 2);
        let pa = PartitionAwareGraph::new(&g, part);
        for v in g.vertices() {
            for &u in pa.local_neighbors(v) {
                assert_eq!(part.owner(u), part.owner(v));
            }
            for &u in pa.remote_neighbors(v) {
                assert_ne!(part.owner(u), part.owner(v));
            }
        }
        // Only the middle edge 2-3 crosses the cut.
        assert_eq!(pa.num_remote_arcs(), 2);
    }

    #[test]
    fn representation_grows_to_2n_plus_2m() {
        let g = gen::cycle(10);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(10, 2));
        assert_eq!(pa.representation_cells(), 2 * 10 + 2 * 10);
        assert_eq!(g.representation_cells(), 10 + 2 * 10);
    }

    #[test]
    fn single_part_means_no_remote_arcs() {
        let g = gen::complete(8);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(8, 1));
        assert_eq!(pa.num_remote_arcs(), 0);
        assert_eq!(pa.num_local_arcs(), g.num_arcs());
    }

    #[test]
    fn split_degrees_are_constant_time_views_of_the_arrays() {
        let g = gen::rmat(7, 5, 3);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), 3));
        for v in g.vertices() {
            assert_eq!(pa.local_degree(v), pa.local_neighbors(v).len());
            assert_eq!(pa.remote_degree(v), pa.remote_neighbors(v).len());
        }
    }

    #[test]
    fn weights_travel_with_their_targets() {
        let g = gen::with_random_weights(&gen::rmat(7, 4, 6), 1, 99, 5);
        let part = BlockPartition::new(g.num_vertices(), 4);
        let pa = PartitionAwareGraph::new(&g, part);
        assert!(pa.is_weighted());
        for v in g.vertices() {
            // Every (target, weight) pair of the CSR appears in exactly one
            // of the two split halves, as a pair.
            let mut split: Vec<(VertexId, crate::Weight)> = pa
                .local_neighbors(v)
                .iter()
                .copied()
                .zip(pa.local_neighbor_weights(v).iter().copied())
                .chain(
                    pa.remote_neighbors(v)
                        .iter()
                        .copied()
                        .zip(pa.remote_neighbor_weights(v).iter().copied()),
                )
                .collect();
            split.sort_unstable();
            let mut csr: Vec<(VertexId, crate::Weight)> = g.weighted_neighbors(v).collect();
            csr.sort_unstable();
            assert_eq!(split, csr, "vertex {v}");
        }
    }

    #[test]
    fn unweighted_graph_has_no_split_weights() {
        let g = gen::path(8);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(8, 2));
        assert!(!pa.is_weighted());
    }

    #[test]
    fn bipartite_cross_partition_is_all_remote() {
        // §5: the all-remote extreme occurs when the graph is bipartite and
        // each thread owns only one side. Build K_{2,2} with sides {0,1} and
        // {2,3} and a 2-part block partition that matches the sides.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 2), (0, 3), (1, 2), (1, 3)])
            .build();
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(4, 2));
        assert_eq!(pa.num_local_arcs(), 0);
        assert_eq!(pa.num_remote_arcs(), g.num_arcs());
    }
}
