//! Plain-text edge-list I/O.
//!
//! The format is the SNAP/Graph500 convention the paper's datasets ship in:
//! one `u v [w]` triple per line, `#`-prefixed comment lines ignored.
//! Round-tripping through this format is what lets users swap the synthetic
//! stand-ins for the real downloads when they have them (see the `ppgraph`
//! CLI in `pp-bench`).
//!
//! A file must be *consistently* weighted or unweighted: mixing 2-column
//! and 3-column data lines is rejected with [`ParseError::MixedColumns`]
//! instead of silently assigning weight 1 to the 2-column edges (which is
//! what the first version of this reader did).
//!
//! [`write_edge_list`] emits a header comment
//! `# pushpull edge list: n=<n> m=<m> weighted=<0|1>` and the reader
//! honours `n=` when present, so graphs with isolated tail vertices (and
//! edgeless weighted graphs) survive a round trip without the caller
//! passing `min_vertices`.
//!
//! Parsing is byte-level — no per-line `String` allocation — and exposed in
//! three composable stages so front-ends can parallelize it:
//! [`shard_bounds`] cuts a buffer into line-aligned shards,
//! [`parse_shard`] turns one shard into a [`ShardEdges`], and
//! [`assemble_shards`] merges any number of them into a [`CsrGraph`].
//! The sequential [`read_edge_list`] is exactly the one-shard pipeline;
//! `pp_engine::ingest::read_edge_list_parallel` runs the same stages on the
//! engine pool and is oracle-checked against this reader.

use std::io::{Read, Write as IoWrite};

use crate::{CsrGraph, GraphBuilder, VertexId, Weight};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and content).
    Malformed(usize, String),
    /// A file mixing 2-column (unweighted) and 3-column (weighted) data
    /// lines; carries the first line whose column count differs from the
    /// file's first data line. Rejected outright: silently defaulting the
    /// 2-column edges to weight 1 would corrupt weighted workloads.
    MixedColumns(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(line, content) => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
            ParseError::MixedColumns(line, content) => write!(
                f,
                "line {line} mixes weighted and unweighted edges: {content:?} \
                 (a file must be all `u v` or all `u v w`)"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// The parse of one shard of an edge-list buffer: the building block shared
/// by the sequential reader and parallel front-ends. Produced by
/// [`parse_shard`], consumed by [`assemble_shards`].
#[derive(Debug, Default)]
pub struct ShardEdges {
    /// Parsed `(u, v, w)` triples; `w = 1` on 2-column lines (whether those
    /// weights are meaningful is decided globally in [`assemble_shards`]).
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Largest vertex id seen (0 when `edges` is empty).
    pub max_id: u64,
    /// First 2-column data line: global 1-based number and content.
    pub first_unweighted: Option<(usize, String)>,
    /// First 3-column data line: global 1-based number and content.
    pub first_weighted: Option<(usize, String)>,
    /// Largest `n=<count>` parsed from `#` header comments, if any.
    pub header_n: Option<u64>,
    /// Whether a `weighted=1` header marker was seen (used to restore the
    /// weighted flag of edgeless graphs, which have no data lines to infer
    /// it from).
    pub header_weighted: bool,
}

/// Cuts `bytes` into at most `target` line-aligned shards covering the
/// whole buffer. Returns `(start, end, first_line)` per shard, where
/// `first_line` is the 1-based global number of the shard's first line —
/// what [`parse_shard`] needs to report exact error positions.
pub fn shard_bounds(bytes: &[u8], target: usize) -> Vec<(usize, usize, usize)> {
    let len = bytes.len();
    let target = target.max(1);
    // Provisional cut points at even byte intervals, each advanced to the
    // next line boundary so no line is split across shards.
    let mut cuts: Vec<usize> = vec![0];
    for i in 1..target {
        let mut p = len * i / target;
        while p < len && bytes[p] != b'\n' {
            p += 1;
        }
        p = (p + 1).min(len); // step past the newline
        if p > *cuts.last().unwrap() && p < len {
            cuts.push(p);
        }
    }
    cuts.push(len);
    // One pass over the buffer assigns each cut its 1-based line number.
    let mut bounds = Vec::with_capacity(cuts.len() - 1);
    let mut line = 1usize;
    let mut scanned = 0usize;
    for w in cuts.windows(2) {
        let (start, end) = (w[0], w[1]);
        line += bytes[scanned..start]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        scanned = start;
        bounds.push((start, end, line));
    }
    bounds
}

/// Scans an ASCII decimal field out of `line[i..]`, returning the value and
/// the index one past its last digit. `None` on empty/non-digit/overflowing
/// fields.
fn scan_u64(line: &[u8], mut i: usize) -> Option<(u64, usize)> {
    let start = i;
    let mut value: u64 = 0;
    while i < line.len() && line[i].is_ascii_digit() {
        value = value
            .checked_mul(10)?
            .checked_add((line[i] - b'0') as u64)?;
        i += 1;
    }
    (i > start).then_some((value, i))
}

/// Parses one shard of an edge-list buffer. `first_line` is the global
/// 1-based number of the shard's first line (1 for a whole buffer).
///
/// Byte-level: fields are scanned in place with no per-line allocation
/// (error paths copy the offending line, nothing else does).
pub fn parse_shard(bytes: &[u8], first_line: usize) -> Result<ShardEdges, ParseError> {
    let mut out = ShardEdges::default();
    for (no, raw) in (first_line..).zip(bytes.split(|&b| b == b'\n')) {
        // Tolerate CRLF endings and surrounding blanks.
        let line = trim_ascii(raw);
        if line.is_empty() {
            continue;
        }
        if line[0] == b'#' {
            scan_header(line, &mut out);
            continue;
        }
        let bad = || ParseError::Malformed(no, String::from_utf8_lossy(line).into_owned());
        let mut fields = [0u64; 3];
        let mut count = 0usize;
        let mut i = 0usize;
        loop {
            while i < line.len() && (line[i] == b' ' || line[i] == b'\t') {
                i += 1;
            }
            if i == line.len() {
                break;
            }
            if count == 3 {
                return Err(bad()); // four or more columns
            }
            let (value, next) = scan_u64(line, i).ok_or_else(bad)?;
            if next < line.len() && line[next] != b' ' && line[next] != b'\t' {
                return Err(bad()); // trailing junk glued to the number
            }
            fields[count] = value;
            count += 1;
            i = next;
        }
        // Ids must stay *below* VertexId::MAX: the vertex count is
        // `max id + 1`, and GraphBuilder caps counts at VertexId::MAX —
        // an id of exactly u32::MAX could never be built.
        if count < 2 || fields[0] >= VertexId::MAX as u64 || fields[1] >= VertexId::MAX as u64 {
            return Err(bad());
        }
        let (u, v) = (fields[0] as VertexId, fields[1] as VertexId);
        let w = if count == 3 {
            if out.first_weighted.is_none() {
                out.first_weighted = Some((no, String::from_utf8_lossy(line).into_owned()));
            }
            Weight::try_from(fields[2]).map_err(|_| bad())?
        } else {
            if out.first_unweighted.is_none() {
                out.first_unweighted = Some((no, String::from_utf8_lossy(line).into_owned()));
            }
            1
        };
        out.max_id = out.max_id.max(u as u64).max(v as u64);
        out.edges.push((u, v, w));
    }
    Ok(out)
}

/// Strips ASCII whitespace (spaces, tabs, `\r`) from both ends.
fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t' | b'\r', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t' | b'\r'] = s {
        s = rest;
    }
    s
}

/// Extracts `n=<count>` and `weighted=<0|1>` tokens from a comment line.
///
/// Headers are advisory and may come from foreign tools, so tokens are
/// never an error: an `n=` whose value could not be built anyway (above
/// the `GraphBuilder` cap of `VertexId::MAX` vertices) is ignored rather
/// than allowed to panic or demand an absurd allocation downstream.
fn scan_header(line: &[u8], out: &mut ShardEdges) {
    for token in line.split(|&b| b == b' ' || b == b'\t') {
        if let Some(rest) = token.strip_prefix(b"n=") {
            if let Some((n, end)) = scan_u64(rest, 0) {
                if end == rest.len() && n <= VertexId::MAX as u64 {
                    out.header_n = Some(out.header_n.unwrap_or(0).max(n));
                }
            }
        } else if token == b"weighted=1" {
            out.header_weighted = true;
        }
    }
}

/// Merges shard parses (in file order) into a [`CsrGraph`]. This is where
/// the global decisions live: the weighted/unweighted flag (mixing is
/// rejected — see [`ParseError::MixedColumns`]), the vertex count
/// (`max(min_vertices, header n=, max id + 1)`), and the single
/// [`GraphBuilder`] pass.
pub fn assemble_shards(
    shards: Vec<ShardEdges>,
    min_vertices: usize,
) -> Result<CsrGraph, ParseError> {
    let first_of = |pick: fn(&ShardEdges) -> &Option<(usize, String)>| {
        shards
            .iter()
            .filter_map(|s| pick(s).as_ref())
            .min_by_key(|(line, _)| *line)
            .cloned()
    };
    let first_unweighted = first_of(|s| &s.first_unweighted);
    let first_weighted = first_of(|s| &s.first_weighted);
    if let (Some(uw), Some(w)) = (&first_unweighted, &first_weighted) {
        // Both arities present: the offender is whichever appears later
        // (the first line that differs from the file's first data line).
        let (line, content) = if uw.0 > w.0 { uw } else { w };
        return Err(ParseError::MixedColumns(*line, content.clone()));
    }
    let header_n = shards.iter().filter_map(|s| s.header_n).max();
    let header_weighted = shards.iter().any(|s| s.header_weighted);
    let max_id = shards.iter().map(|s| s.max_id).max().unwrap_or(0);
    let total: usize = shards.iter().map(|s| s.edges.len()).sum();
    let has_edges = total > 0;

    let mut n = min_vertices.max(header_n.unwrap_or(0) as usize);
    if has_edges {
        n = n.max(max_id as usize + 1);
    }
    // Data lines decide the weighted flag when present; the header marker
    // restores it for edgeless graphs (which have no lines to infer from).
    let weighted = first_weighted.is_some() || (!has_edges && header_weighted);

    let mut b = GraphBuilder::undirected(n);
    if weighted {
        for s in shards {
            for (u, v, w) in s.edges {
                b.add_weighted_edge(u, v, w);
            }
        }
        // Edgeless weighted graphs had no `add_weighted_edge` call to set
        // the flag; route through the marking builder API.
        if !has_edges {
            return Ok(b.weighted_edges(std::iter::empty()).build());
        }
    } else {
        for s in shards {
            for (u, v, _) in s.edges {
                b.add_edge(u, v);
            }
        }
    }
    Ok(b.build())
}

/// Parses a whole in-memory edge-list buffer (the one-shard pipeline).
pub fn parse_edge_list(bytes: &[u8], min_vertices: usize) -> Result<CsrGraph, ParseError> {
    assemble_shards(vec![parse_shard(bytes, 1)?], min_vertices)
}

/// Reads an undirected graph from `u v [w]` lines. Vertex count is
/// `max id + 1` unless `min_vertices` — or an `n=<count>` header comment
/// (which [`write_edge_list`] emits) — demands more.
pub fn read_edge_list<R: Read>(mut reader: R, min_vertices: usize) -> Result<CsrGraph, ParseError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_edge_list(&bytes, min_vertices)
}

/// Writes a graph as `u v [w]` lines (each undirected edge once), with a
/// header comment carrying the counts and the weighted flag — everything
/// [`read_edge_list`] needs to reconstruct the graph exactly, isolated
/// tail vertices included.
pub fn write_edge_list<W: IoWrite>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    use std::fmt::Write as FmtWrite;
    writeln!(
        writer,
        "# pushpull edge list: n={} m={} weighted={}",
        g.num_vertices(),
        g.num_edges(),
        u8::from(g.is_weighted())
    )?;
    // Format into a chunked buffer: one write syscall per ~64 KiB instead
    // of one per edge.
    let mut buf = String::with_capacity(64 * 1024 + 64);
    for (u, v, w) in g.edges() {
        if g.is_weighted() {
            let _ = writeln!(buf, "{u} {v} {w}");
        } else {
            let _ = writeln!(buf, "{u} {v}");
        }
        if buf.len() >= 64 * 1024 {
            writer.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    writer.write_all(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_comments_blanks_and_edges() {
        let text = "# header\n\n0 1\n 1 2 \n# tail\n3 0\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn parses_weights() {
        let g = read_edge_list("0 1 5\n1 2 7\n".as_bytes(), 0).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
    }

    #[test]
    fn parses_crlf_and_tab_separated_lines() {
        let g = read_edge_list("# crlf\r\n0\t1\r\n1\t2\r\n\r\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn min_vertices_pads_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["0\n", "0 x\n", "0 1 2 3\n", "a b\n", "0 1x\n", "-1 2\n"] {
            let err = read_edge_list(bad.as_bytes(), 0).unwrap_err();
            assert!(matches!(err, ParseError::Malformed(1, _)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn rejects_oversized_ids_and_weights() {
        // u32::MAX itself is rejected too: `max id + 1` must fit the
        // builder's VertexId::MAX vertex-count cap (the old reader would
        // have panicked inside GraphBuilder instead of erroring).
        for big in [u64::from(VertexId::MAX), u64::from(VertexId::MAX) + 1] {
            assert!(matches!(
                read_edge_list(format!("{big} 1\n").as_bytes(), 0).unwrap_err(),
                ParseError::Malformed(1, _)
            ));
        }
        let big_w = format!("0 1 {}\n", u64::from(Weight::MAX) + 1);
        assert!(matches!(
            read_edge_list(big_w.as_bytes(), 0).unwrap_err(),
            ParseError::Malformed(1, _)
        ));
    }

    #[test]
    fn absurd_header_counts_are_ignored_not_trusted() {
        // Regression (review finding): an `n=` token in any comment line
        // used to flow unvalidated into GraphBuilder::undirected, so
        // untrusted text could panic the parser ("vertex count exceeds
        // VertexId") or demand a multi-GB allocation. Unbuildable counts
        // are now ignored like any other foreign comment content.
        let text = format!("# n={}\n0 1\n", u64::from(VertexId::MAX) + 1);
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 2);
        let text = "# n=99999999999999999999999999 overflow\n0 1\n";
        assert_eq!(
            read_edge_list(text.as_bytes(), 0).unwrap().num_vertices(),
            2
        );
    }

    #[test]
    fn rejects_mixed_unweighted_then_weighted() {
        // Regression: the old reader flipped its `weighted` flag on the
        // first 3-column line and silently gave the earlier edges weight 1.
        let err = read_edge_list("0 1\n1 2 7\n".as_bytes(), 0).unwrap_err();
        match err {
            ParseError::MixedColumns(line, content) => {
                assert_eq!(line, 2);
                assert_eq!(content, "1 2 7");
            }
            other => panic!("expected MixedColumns, got {other}"),
        }
    }

    #[test]
    fn rejects_mixed_weighted_then_unweighted() {
        let err = read_edge_list("# c\n0 1 7\n\n1 2\n".as_bytes(), 0).unwrap_err();
        match err {
            ParseError::MixedColumns(line, content) => {
                assert_eq!(line, 4);
                assert_eq!(content, "1 2");
            }
            other => panic!("expected MixedColumns, got {other}"),
        }
    }

    #[test]
    fn consistent_files_parse_in_both_arities() {
        let unweighted = read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), 0).unwrap();
        assert!(!unweighted.is_weighted());
        assert_eq!(unweighted.num_edges(), 3);
        let weighted = read_edge_list("0 1 4\n1 2 5\n2 0 6\n".as_bytes(), 0).unwrap();
        assert!(weighted.is_weighted());
        assert_eq!(weighted.num_edges(), 3);
    }

    #[test]
    fn header_restores_isolated_tail_vertices() {
        // Regression: the writer's `n=` header was ignored, so any graph
        // with isolated tail vertices shrank on round-trip unless the
        // caller happened to pass the right `min_vertices`.
        let g = crate::GraphBuilder::undirected(9).edge(0, 1).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back.num_vertices(), 9);
        assert_eq!(back, g);
    }

    #[test]
    fn header_weighted_marker_survives_edgeless_graphs() {
        let g = crate::GraphBuilder::undirected(4)
            .weighted_edges(std::iter::empty())
            .build();
        assert!(g.is_weighted());
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn explicit_min_vertices_still_wins_over_the_header() {
        let g = read_edge_list("# n=3 weighted=0\n0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn foreign_headers_are_ignored() {
        // SNAP-style headers carry no n=/weighted= tokens; they must simply
        // be skipped.
        let text = "# Nodes: 4 Edges: 2\n# FromNodeId\tToNodeId\n0 1\n2 3\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn round_trip_unweighted_and_weighted() {
        for g in [
            gen::rmat(6, 4, 3),
            gen::with_random_weights(&gen::cycle(12), 1, 9, 5),
        ] {
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let back = read_edge_list(buf.as_slice(), 0).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn shard_bounds_cover_the_buffer_at_line_boundaries() {
        let text = "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n";
        let bytes = text.as_bytes();
        for target in [1, 2, 3, 7, 50] {
            let bounds = shard_bounds(bytes, target);
            assert_eq!(bounds.first().unwrap().0, 0, "target={target}");
            assert_eq!(bounds.last().unwrap().1, bytes.len(), "target={target}");
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous, target={target}");
            }
            for &(start, _, first_line) in &bounds {
                if start > 0 {
                    assert_eq!(bytes[start - 1], b'\n', "line-aligned");
                }
                let newlines = bytes[..start].iter().filter(|&&b| b == b'\n').count();
                assert_eq!(first_line, newlines + 1, "line numbering");
            }
        }
    }

    #[test]
    fn sharded_assembly_matches_the_single_shard_parse() {
        let text = "# n=40 weighted=0\n0 1\n\n2 3\r\n# mid comment\n4 5\n6 7\n8 9\n";
        let bytes = text.as_bytes();
        let whole = parse_edge_list(bytes, 0).unwrap();
        for target in [2, 3, 5] {
            let shards: Vec<ShardEdges> = shard_bounds(bytes, target)
                .into_iter()
                .map(|(s, e, l)| parse_shard(&bytes[s..e], l).unwrap())
                .collect();
            assert_eq!(assemble_shards(shards, 0).unwrap(), whole, "t={target}");
        }
    }

    #[test]
    fn sharded_mixed_detection_reports_the_global_flip_line() {
        // The flip (line 4) and the first weighted line (line 2) land in
        // different shards; the merged error must still name line 4.
        let text = "# c\n0 1 7\n1 2 9\n3 4\n5 6 1\n";
        let bytes = text.as_bytes();
        let shards: Vec<ShardEdges> = shard_bounds(bytes, 3)
            .into_iter()
            .map(|(s, e, l)| parse_shard(&bytes[s..e], l).unwrap())
            .collect();
        match assemble_shards(shards, 0).unwrap_err() {
            ParseError::MixedColumns(line, content) => {
                assert_eq!(line, 4);
                assert_eq!(content, "3 4");
            }
            other => panic!("expected MixedColumns, got {other}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_edge_list("nope\n".as_bytes(), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("nope"));
        let err = read_edge_list("0 1\n1 2 3\n".as_bytes(), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
        assert!(msg.contains("mixes"));
    }

    #[test]
    fn error_line_numbers_count_comments_and_blanks() {
        let err = read_edge_list("# one\n\n0 1\nbad line\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(4, _)), "{err}");
    }
}
