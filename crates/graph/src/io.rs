//! Plain-text edge-list I/O.
//!
//! The format is the SNAP/Graph500 convention the paper's datasets ship in:
//! one `u v [w]` triple per line, `#`-prefixed comment lines ignored.
//! Round-tripping through this format is what lets users swap the synthetic
//! stand-ins for the real downloads when they have them.

use std::io::{BufRead, BufReader, Read, Write as IoWrite};

use crate::{CsrGraph, GraphBuilder, VertexId, Weight};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and content).
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(line, content) => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads an undirected graph from `u v [w]` lines. Vertex count is
/// `max id + 1` unless `min_vertices` demands more.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<CsrGraph, ParseError> {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut weighted = false;
    let mut max_id: u64 = 0;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let bad = || ParseError::Malformed(i + 1, trimmed.to_string());
        let u: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w = match it.next() {
            Some(tok) => {
                weighted = true;
                tok.parse().map_err(|_| bad())?
            }
            None => 1,
        };
        if it.next().is_some() {
            return Err(bad());
        }
        max_id = max_id.max(u as u64).max(v as u64);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        min_vertices.max(max_id as usize + 1)
    };
    let b = GraphBuilder::undirected(n);
    Ok(if weighted {
        b.weighted_edges(edges).build()
    } else {
        b.edges(edges.into_iter().map(|(u, v, _)| (u, v))).build()
    })
}

/// Writes a graph as `u v [w]` lines (each undirected edge once), with a
/// header comment carrying the counts.
pub fn write_edge_list<W: IoWrite>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# pushpull edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, w) in g.edges() {
        if g.is_weighted() {
            writeln!(writer, "{u} {v} {w}")?;
        } else {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_comments_blanks_and_edges() {
        let text = "# header\n\n0 1\n 1 2 \n# tail\n3 0\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn parses_weights() {
        let g = read_edge_list("0 1 5\n1 2 7\n".as_bytes(), 0).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
    }

    #[test]
    fn min_vertices_pads_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["0\n", "0 x\n", "0 1 2 3\n", "a b\n"] {
            let err = read_edge_list(bad.as_bytes(), 0).unwrap_err();
            assert!(matches!(err, ParseError::Malformed(1, _)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn round_trip_unweighted_and_weighted() {
        for g in [
            gen::rmat(6, 4, 3),
            gen::with_random_weights(&gen::cycle(12), 1, 9, 5),
        ] {
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let back = read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_edge_list("nope\n".as_bytes(), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("nope"));
    }
}
