//! Vertex reordering for memory locality.
//!
//! §6 of the paper attributes most push/pull performance deltas to memory
//! behaviour — cache misses, TLB misses, and how well "cache prefetchers"
//! cope with the access pattern (§6.5). Vertex order is the main software
//! lever over that behaviour: neighbors with nearby ids share cache lines
//! and TLB pages in every per-vertex array (`pr`, `dist`, `labels`, …).
//!
//! This module provides the two classic orderings plus the machinery to
//! apply an arbitrary permutation:
//!
//! * [`degree_order`] — hubs first. On skewed (R-MAT-like) graphs the hot
//!   high-degree vertices end up sharing a few cache lines;
//! * [`bfs_order`] — breadth-first discovery order from a pseudo-peripheral
//!   root. Neighbors get nearby ids, which turns pull-side gathers into
//!   near-streaming sweeps on meshes/road networks;
//! * [`apply_permutation`] — relabel a graph with any bijection.
//!
//! The cache ablation bench (`benches/ablation.rs`) runs instrumented
//! PageRank over original vs. reordered layouts to regenerate the effect.

use crate::{CsrGraph, GraphBuilder, VertexId};

/// A vertex relabeling: `perm[old] = new`. The inverse (`order[new] = old`)
/// is available via [`Permutation::inverse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<VertexId>,
}

impl Permutation {
    /// Wraps `perm[old] = new`, validating bijectivity.
    pub fn new(perm: Vec<VertexId>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!((p as usize) < n, "permutation target out of range");
            assert!(!seen[p as usize], "permutation repeats target {p}");
            seen[p as usize] = true;
        }
        Self { perm }
    }

    /// The identity on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n as VertexId).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// New id of `old`.
    #[inline]
    pub fn map(&self, old: VertexId) -> VertexId {
        self.perm[old as usize]
    }

    /// The inverse permutation (`inverse.map(new) = old`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as VertexId; self.perm.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Permutation { perm: inv }
    }

    /// Maps a per-vertex value array from old to new labeling.
    pub fn map_values<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.perm.len());
        let mut out: Vec<T> = values.to_vec();
        for (old, &new) in self.perm.iter().enumerate() {
            out[new as usize] = values[old].clone();
        }
        out
    }
}

/// Relabels `g` so that vertex `old` becomes `perm.map(old)`. Weights ride
/// along; the result is isomorphic to the input.
pub fn apply_permutation(g: &CsrGraph, perm: &Permutation) -> CsrGraph {
    assert_eq!(perm.len(), g.num_vertices());
    let b = if g.is_directed() {
        GraphBuilder::directed(g.num_vertices())
    } else {
        GraphBuilder::undirected(g.num_vertices())
    };
    if g.is_weighted() {
        b.weighted_edges(g.edges().map(|(u, v, w)| (perm.map(u), perm.map(v), w)))
            .build()
    } else {
        b.edges(g.edges().map(|(u, v, _)| (perm.map(u), perm.map(v))))
            .build()
    }
}

/// Descending-degree ordering: the hubs of a skewed graph receive the
/// smallest ids (ties broken by old id, so the order is deterministic).
pub fn degree_order(g: &CsrGraph) -> Permutation {
    let mut by_degree: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut perm = vec![0 as VertexId; g.num_vertices()];
    for (new, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Permutation::new(perm)
}

/// BFS discovery ordering from `root`; unreached vertices keep their
/// relative order after all reached ones. Adjacent vertices end up at most
/// one frontier apart in the new id space — the locality transform behind
/// bandwidth-minimizing schemes like Cuthill–McKee.
pub fn bfs_order(g: &CsrGraph, root: VertexId) -> Permutation {
    let n = g.num_vertices();
    let mut perm = vec![VertexId::MAX; n];
    let mut next = 0 as VertexId;
    let mut queue = std::collections::VecDeque::new();
    perm[root as usize] = next;
    next += 1;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if perm[u as usize] == VertexId::MAX {
                perm[u as usize] = next;
                next += 1;
                queue.push_back(u);
            }
        }
    }
    for p in &mut perm {
        if *p == VertexId::MAX {
            *p = next;
            next += 1;
        }
    }
    Permutation::new(perm)
}

/// Average absolute id distance across edges — the locality score the
/// orderings optimize (lower = neighbors closer in memory).
pub fn edge_span(g: &CsrGraph) -> f64 {
    let (mut total, mut count) = (0u64, 0u64);
    for (u, v, _) in g.edges() {
        total += u.abs_diff(v) as u64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, stats};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn shuffled(g: &CsrGraph, seed: u64) -> (CsrGraph, Permutation) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut ids: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        ids.shuffle(&mut rng);
        let p = Permutation::new(ids);
        (apply_permutation(g, &p), p)
    }

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::new(vec![2, 0, 1]);
        let inv = p.inverse();
        for v in 0..3 {
            assert_eq!(inv.map(p.map(v)), v);
        }
        assert_eq!(p.map_values(&['a', 'b', 'c']), vec!['b', 'c', 'a']);
    }

    #[test]
    #[should_panic(expected = "repeats target")]
    fn permutation_rejects_duplicates() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = gen::rmat(7, 4, 3);
        let (h, p) = shuffled(&g, 9);
        assert_eq!(h.num_edges(), g.num_edges());
        let mut dg: Vec<_> = g.vertices().map(|v| g.degree(v)).collect();
        let mut dh: Vec<_> = h.vertices().map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh, "degree multiset must survive relabeling");
        assert_eq!(stats::num_components(&g), stats::num_components(&h));
        // Edges map exactly.
        for (u, v, _) in g.edges() {
            assert!(h.has_edge(p.map(u), p.map(v)));
        }
    }

    #[test]
    fn apply_preserves_weights() {
        let g = gen::with_random_weights(&gen::cycle(10), 1, 9, 5);
        let (h, p) = shuffled(&g, 1);
        for (u, v, w) in g.edges() {
            assert_eq!(h.edge_weight(p.map(u), p.map(v)), Some(w));
        }
    }

    #[test]
    fn degree_order_places_hubs_first() {
        let g = gen::rmat(8, 6, 1);
        let p = degree_order(&g);
        let h = apply_permutation(&g, &p);
        let degrees: Vec<_> = h.vertices().map(|v| h.degree(v)).collect();
        assert!(
            degrees.windows(2).all(|w| w[0] >= w[1]),
            "degrees must be non-increasing after reorder"
        );
    }

    #[test]
    fn bfs_order_improves_span_on_shuffled_grid() {
        let g = gen::road_grid(20, 25, 1.0, 0);
        let (shuf, _) = shuffled(&g, 4);
        let reordered = apply_permutation(&shuf, &bfs_order(&shuf, 0));
        assert!(
            edge_span(&reordered) < edge_span(&shuf) / 3.0,
            "span {} vs {}",
            edge_span(&reordered),
            edge_span(&shuf)
        );
    }

    #[test]
    fn bfs_order_handles_disconnected_graphs() {
        let g = gen::erdos_renyi(50, 20, 7); // many components
        let p = bfs_order(&g, 0);
        // Must still be a bijection covering every vertex.
        assert_eq!(p.inverse().len(), 50);
        let h = apply_permutation(&g, &p);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn identity_and_empty() {
        let g = gen::path(5);
        let h = apply_permutation(&g, &Permutation::identity(5));
        assert_eq!(h, g);
        assert!(Permutation::identity(0).is_empty());
        assert_eq!(edge_span(&gen::path(2)), 1.0);
    }
}
