//! Structural statistics: degree distribution, connectivity, and the
//! double-sweep diameter estimate used to verify the dataset stand-ins match
//! the regimes of Table 2.

use std::collections::VecDeque;

use crate::{CsrGraph, VertexId};

/// Summary statistics matching the columns of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertices `n`.
    pub n: usize,
    /// Undirected edges `m`.
    pub m: usize,
    /// Average degree `d̄`.
    pub avg_degree: f64,
    /// Maximum degree `d̂`.
    pub max_degree: usize,
    /// Lower bound on the diameter from a BFS double sweep (exact on trees;
    /// a tight estimate in practice).
    pub diameter_lb: usize,
}

/// Computes [`GraphStats`] for a graph.
pub fn stats(g: &CsrGraph) -> GraphStats {
    GraphStats {
        n: g.num_vertices(),
        m: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree: g.max_degree(),
        diameter_lb: double_sweep_diameter(g),
    }
}

/// Sequential BFS returning `(levels, farthest_vertex, eccentricity)`.
/// `u32::MAX` marks unreachable vertices.
pub fn bfs_levels(g: &CsrGraph, root: VertexId) -> (Vec<u32>, VertexId, u32) {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    level[root as usize] = 0;
    queue.push_back(root);
    let (mut far, mut ecc) = (root, 0);
    while let Some(v) = queue.pop_front() {
        let lv = level[v as usize];
        if lv > ecc {
            ecc = lv;
            far = v;
        }
        for &w in g.neighbors(v) {
            if level[w as usize] == u32::MAX {
                level[w as usize] = lv + 1;
                queue.push_back(w);
            }
        }
    }
    (level, far, ecc)
}

/// Diameter lower bound by the classic double sweep: BFS from vertex 0, then
/// BFS from the farthest vertex found.
pub fn double_sweep_diameter(g: &CsrGraph) -> usize {
    if g.num_vertices() == 0 {
        return 0;
    }
    let (_, far, _) = bfs_levels(g, 0);
    let (_, _, ecc) = bfs_levels(g, far);
    ecc as usize
}

/// Whether the graph is connected (trivially true for `n ≤ 1`).
pub fn is_connected(g: &CsrGraph) -> bool {
    let n = g.num_vertices();
    if n <= 1 {
        return true;
    }
    let (levels, _, _) = bfs_levels(g, 0);
    levels.iter().all(|&l| l != u32::MAX)
}

/// Number of connected components.
pub fn num_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        components += 1;
        seen[s] = true;
        stack.push(s as VertexId);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Number of closed wedges (triangle corners): for each vertex, ordered
/// neighbor pairs that are themselves adjacent. Equals `6 × #triangles`.
pub fn closed_wedges(g: &CsrGraph) -> u64 {
    let mut closed = 0u64;
    for v in g.vertices() {
        let ns = g.neighbors(v);
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if a != v && b != v && g.has_edge(a, b) {
                    closed += 2; // (a,b) and (b,a)
                }
            }
        }
    }
    closed
}

/// Global clustering coefficient (transitivity): closed wedges over all
/// wedges, `C = 3·triangles / paths-of-length-two`. The structural statistic
/// separating community graphs (high C) from random and road graphs (≈0) —
/// the regimes Table 2 contrasts.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1)
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    closed_wedges(g) as f64 / wedges as f64
}

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// all arcs. Positive for social networks (hubs befriend hubs), near zero
/// for Erdős–Rényi, negative for stars and many technological graphs.
pub fn degree_assortativity(g: &CsrGraph) -> f64 {
    let mut count = 0u64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for (u, v) in g.arcs() {
        let (x, y) = (g.degree(u) as f64, g.degree(v) as f64);
        count += 1;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    if count == 0 {
        return 0.0;
    }
    let n = count as f64;
    let cov = sxy / n - (sx / n) * (sy / n);
    let var_x = sxx / n - (sx / n) * (sx / n);
    let var_y = syy / n - (sy / n) * (sy / n);
    let denom = (var_x * var_y).sqrt();
    if denom < 1e-12 {
        0.0 // regular graphs: degrees are constant, correlation undefined
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_diameter_is_exact() {
        let g = gen::path(10);
        assert_eq!(double_sweep_diameter(&g), 9);
        let s = stats(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.diameter_lb, 9);
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(double_sweep_diameter(&gen::cycle(10)), 5);
        assert_eq!(double_sweep_diameter(&gen::cycle(11)), 5);
    }

    #[test]
    fn star_and_complete() {
        assert_eq!(double_sweep_diameter(&gen::star(50)), 2);
        assert_eq!(double_sweep_diameter(&gen::complete(10)), 1);
    }

    #[test]
    fn connectivity_and_components() {
        let g = gen::path(5);
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 1);
        let disconnected = crate::GraphBuilder::undirected(4)
            .edges([(0, 1), (2, 3)])
            .build();
        assert!(!is_connected(&disconnected));
        assert_eq!(num_components(&disconnected), 2);
        // Isolated vertices each form a component.
        let isolated = crate::GraphBuilder::undirected(3).edge(0, 1).build();
        assert_eq!(num_components(&isolated), 2);
    }

    #[test]
    fn bfs_levels_unreachable_marked() {
        let g = crate::GraphBuilder::undirected(3).edge(0, 1).build();
        let (levels, _, ecc) = bfs_levels(&g, 0);
        assert_eq!(levels, vec![0, 1, u32::MAX]);
        assert_eq!(ecc, 1);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = gen::rmat(8, 4, 5);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
        // hist weighted by degree sums to arc count.
        let arcs: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(arcs, g.num_arcs());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::undirected(0).build();
        assert_eq!(double_sweep_diameter(&g), 0);
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn clustering_extremes() {
        // A triangle-free graph clusters at 0; a clique at 1.
        assert_eq!(global_clustering(&gen::path(10)), 0.0);
        assert_eq!(global_clustering(&gen::star(10)), 0.0);
        assert!((global_clustering(&gen::complete(8)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_counts_wedges_exactly() {
        // Triangle plus a pendant: vertex 2 has neighbors {0,1,3}. Closed
        // wedges = 6 (the triangle's corners, both orders); total wedges =
        // 2·1 + 2·1 + 3·2 + 1·0 = 10.
        let g = crate::GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build();
        assert_eq!(closed_wedges(&g), 6);
        assert!((global_clustering(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn community_graphs_cluster_more_than_random() {
        let community = gen::community(4, 50, 500, 30, 1);
        let random = gen::erdos_renyi(200, community.num_edges(), 1);
        assert!(
            global_clustering(&community) > 2.0 * global_clustering(&random),
            "{} vs {}",
            global_clustering(&community),
            global_clustering(&random)
        );
    }

    #[test]
    fn assortativity_sign_structure() {
        // Stars are maximally disassortative: every edge joins the hub
        // (degree n-1) to a leaf (degree 1) — but with only one such edge
        // *type* the correlation degenerates; use a double star instead.
        let mut b = crate::GraphBuilder::undirected(10);
        for leaf in 2..6u32 {
            b.add_edge(0, leaf);
        }
        for leaf in 6..10u32 {
            b.add_edge(1, leaf);
        }
        b.add_edge(0, 1);
        let double_star = b.build();
        assert!(degree_assortativity(&double_star) < -0.5);
        // Regular graphs have no degree variance: defined as 0.
        assert_eq!(degree_assortativity(&gen::cycle(10)), 0.0);
    }
}
