//! Stand-ins for the real-world datasets of Table 2.
//!
//! The paper evaluates on SNAP graphs (orkut, pokec, livejournal, amazon,
//! roadnet-CA). Those downloads are unavailable offline, so each dataset is
//! replaced by a deterministic synthetic graph matched on the structural
//! statistics the paper reports: average degree `d̄` and the diameter regime.
//! `Scale` shrinks every graph proportionally so the full experiment suite
//! runs on a laptop; the push/pull contrasts the paper measures depend on
//! degree and diameter *regimes*, not absolute sizes.
//!
//! **Have the real downloads?** You don't need this module: the `ppgraph`
//! CLI in `pp-bench` ingests any SNAP-style edge list directly — convert
//! once with `ppgraph convert roadNet-CA.txt -o road.ppg` (a binary
//! [`crate::snapshot`] that loads in O(read)) and run any engine algorithm
//! on it with `ppgraph run <algo> road.ppg`; see the README's "Run it on
//! your own graph" section. These stand-ins remain the deterministic,
//! always-available substrate for the experiment suite and CI.

use crate::{gen, stats, CsrGraph, Weight};

/// Proportional scale factor for all dataset stand-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny graphs for unit tests (hundreds of vertices).
    Test,
    /// Default experiment scale (tens of thousands of vertices).
    Small,
    /// Larger runs for scaling studies (hundreds of thousands of vertices).
    Medium,
}

impl Scale {
    fn factor(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Small => 32,
            Scale::Medium => 256,
        }
    }
}

/// Identifiers for the five Table-2 stand-ins plus the synthetic families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Orkut-like: dense social community graph, `d̄ ≈ 39`, low diameter.
    Orc,
    /// Pokec-like: social graph, `d̄ ≈ 19`, low diameter.
    Pok,
    /// LiveJournal-like: community graph, `d̄ ≈ 9`, moderate diameter.
    Ljn,
    /// Amazon-purchase-like: sparse, `d̄ ≈ 3.4`, moderate diameter.
    Am,
    /// RoadNet-CA-like: near-planar grid, `d̄ ≈ 2`, very large diameter.
    Rca,
}

impl Dataset {
    /// All five stand-ins in the order the paper's tables list them.
    pub const ALL: [Dataset; 5] = [
        Dataset::Orc,
        Dataset::Pok,
        Dataset::Ljn,
        Dataset::Am,
        Dataset::Rca,
    ];

    /// Short lowercase id used in table output (matches the paper).
    pub fn id(self) -> &'static str {
        match self {
            Dataset::Orc => "orc",
            Dataset::Pok => "pok",
            Dataset::Ljn => "ljn",
            Dataset::Am => "am",
            Dataset::Rca => "rca",
        }
    }

    /// Human-readable description per Table 2.
    pub fn description(self) -> &'static str {
        match self {
            Dataset::Orc => "social network (orkut stand-in)",
            Dataset::Pok => "social network (pokec stand-in)",
            Dataset::Ljn => "community network (livejournal stand-in)",
            Dataset::Am => "purchase network (amazon stand-in)",
            Dataset::Rca => "road network (roadnet-CA stand-in)",
        }
    }

    /// Generates the stand-in at the given scale. Deterministic: the same
    /// `(dataset, scale)` always yields the same graph.
    pub fn generate(self, scale: Scale) -> CsrGraph {
        let f = scale.factor();
        match self {
            // Dense communities; d̄ ≈ 39 like orkut.
            Dataset::Orc => {
                let cs = 192;
                let k = 2 * f;
                gen::community(k, cs, cs * 20, k * cs / 2, 0x09c1)
            }
            // d̄ ≈ 19 like pokec.
            Dataset::Pok => {
                let cs = 160;
                let k = 2 * f;
                gen::community(k, cs, cs * 10, k * cs / 2, 0x90ec)
            }
            // Skewed community graph; d̄ ≈ 9 like livejournal.
            Dataset::Ljn => {
                let cs = 128;
                let k = 3 * f;
                gen::community(k, cs, cs * 4, k * cs, 0x17a1)
            }
            // Sparse low-degree network with some structure; d̄ ≈ 3.4.
            Dataset::Am => {
                let n = 512 * f;
                gen::erdos_renyi(n, n * 17 / 10, 0x00a3)
            }
            // Road grid: d̄ ≈ 2-3, huge diameter.
            Dataset::Rca => {
                let side = 24 * (f as f64).sqrt().round() as usize;
                gen::road_grid(side, side, 0.55, 0x0ca0)
            }
        }
    }

    /// Generates the stand-in with symmetric random edge weights (needed by
    /// SSSP-Δ and MST).
    pub fn generate_weighted(self, scale: Scale, lo: Weight, hi: Weight) -> CsrGraph {
        gen::with_random_weights(&self.generate(scale), lo, hi, 0xbeef ^ self as u64)
    }
}

/// Prints/collects the Table-2 row for a dataset at a scale.
pub fn table2_row(d: Dataset, scale: Scale) -> (String, stats::GraphStats) {
    let g = d.generate(scale);
    (d.id().to_string(), stats::stats(&g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Am.generate(Scale::Test);
        let b = Dataset::Am.generate(Scale::Test);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_regimes_are_ordered_like_the_paper() {
        // Table 2: d̄(orc) > d̄(pok) > d̄(ljn) > d̄(am) > d̄(rca).
        let degs: Vec<f64> = Dataset::ALL
            .iter()
            .map(|d| d.generate(Scale::Test).avg_degree())
            .collect();
        for w in degs.windows(2) {
            assert!(
                w[0] > w[1],
                "expected strictly decreasing average degrees, got {degs:?}"
            );
        }
    }

    #[test]
    fn rca_has_road_like_shape() {
        let g = Dataset::Rca.generate(Scale::Test);
        let s = stats::stats(&g);
        assert!(s.avg_degree < 4.0, "road graph too dense: {}", s.avg_degree);
        assert!(
            s.diameter_lb > 3 * (s.n as f64).sqrt() as usize / 2,
            "road graph diameter too small: {} for n={}",
            s.diameter_lb,
            s.n
        );
        assert!(stats::is_connected(&g));
    }

    #[test]
    fn orc_has_social_shape() {
        let s = stats::stats(&Dataset::Orc.generate(Scale::Test));
        assert!(
            s.avg_degree > 25.0,
            "orc stand-in too sparse: {}",
            s.avg_degree
        );
        assert!(
            s.diameter_lb < 12,
            "orc diameter too large: {}",
            s.diameter_lb
        );
    }

    #[test]
    fn weighted_generation_has_weights() {
        let g = Dataset::Rca.generate_weighted(Scale::Test, 1, 100);
        assert!(g.is_weighted());
        assert_eq!(g.unweighted(), Dataset::Rca.generate(Scale::Test));
    }

    #[test]
    fn scales_grow_monotonically() {
        let t = Dataset::Ljn.generate(Scale::Test).num_vertices();
        let s = Dataset::Ljn.generate(Scale::Small).num_vertices();
        assert!(s > 8 * t);
    }
}
