//! 1D vertex partitioning (§2.2): the graph is distributed over `P`
//! threads/processes by vertex blocks, and `t[v]` names the owner of `v`.
//!
//! The block layout makes ownership a constant-time computation and keeps
//! each thread's vertices contiguous, which is what the partition-aware
//! strategy (§5) and the distributed-memory substrate both build on.

use crate::{CsrGraph, VertexId};

/// Block 1D partition of `n` vertices over `p` parts. Part `t` owns the
/// half-open vertex range `[t·⌈n/p⌉, min((t+1)·⌈n/p⌉, n))`, except that when
/// `n` is not divisible the remainder is spread so sizes differ by at most 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    n: usize,
    p: usize,
}

impl BlockPartition {
    /// Partition `n` vertices over `p ≥ 1` parts.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one part");
        Self { n, p }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of parts `P`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.p
    }

    /// The owner `t[v]` of vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.n);
        let (q, r) = (self.n / self.p, self.n % self.p);
        let v = v as usize;
        // The first r parts have q+1 vertices, the rest have q.
        let big = r * (q + 1);
        if v < big {
            v / (q + 1)
        } else {
            r + (v - big) / q.max(1)
        }
    }

    /// The vertex range owned by part `t`.
    #[inline]
    pub fn range(&self, t: usize) -> std::ops::Range<VertexId> {
        debug_assert!(t < self.p);
        let (q, r) = (self.n / self.p, self.n % self.p);
        let start = if t < r {
            t * (q + 1)
        } else {
            r * (q + 1) + (t - r) * q
        };
        let len = if t < r { q + 1 } else { q };
        (start as VertexId)..((start + len) as VertexId)
    }

    /// Number of vertices owned by part `t`.
    #[inline]
    pub fn part_size(&self, t: usize) -> usize {
        let r = self.range(t);
        (r.end - r.start) as usize
    }

    /// Border vertices (the set `B` of §3.6): vertices with at least one
    /// neighbor owned by a different part.
    pub fn border_vertices(&self, g: &CsrGraph) -> Vec<VertexId> {
        g.vertices()
            .filter(|&v| {
                let t = self.owner(v);
                g.neighbors(v).iter().any(|&u| self.owner(u) != t)
            })
            .collect()
    }

    /// Number of cut arcs: arcs `(u, v)` with `t[u] ≠ t[v]`. For an
    /// undirected graph each cut edge counts twice (both directions), which
    /// is exactly the number of *remote updates* a push algorithm issues per
    /// sweep (§5's bound of `2m` remote atomics in the worst case).
    pub fn cut_arcs(&self, g: &CsrGraph) -> usize {
        g.arcs()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn ranges_cover_all_vertices_exactly_once() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for p in [1usize, 2, 3, 7, 16] {
                let part = BlockPartition::new(n, p);
                let mut covered = 0usize;
                for t in 0..p {
                    let r = part.range(t);
                    covered += (r.end - r.start) as usize;
                    for v in r.clone() {
                        assert_eq!(part.owner(v), t, "n={n} p={p} v={v}");
                    }
                    assert_eq!(part.part_size(t), (r.end - r.start) as usize);
                }
                assert_eq!(covered, n, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn sizes_balanced_within_one() {
        let part = BlockPartition::new(10, 3);
        let sizes: Vec<_> = (0..3).map(|t| part.part_size(t)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn single_part_owns_everything() {
        let part = BlockPartition::new(5, 1);
        assert_eq!(part.range(0), 0..5);
        assert_eq!(part.owner(4), 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let part = BlockPartition::new(2, 4);
        // Two parts own one vertex each, the rest own none.
        let total: usize = (0..4).map(|t| part.part_size(t)).sum();
        assert_eq!(total, 2);
        assert_eq!(part.owner(0), 0);
        assert_eq!(part.owner(1), 1);
    }

    #[test]
    fn border_vertices_on_a_path() {
        // Path 0-1-2-3 split in two: 1 and 2 are border vertices.
        let g = gen::path(4);
        let part = BlockPartition::new(4, 2);
        assert_eq!(part.border_vertices(&g), vec![1, 2]);
        assert_eq!(part.cut_arcs(&g), 2);
    }

    #[test]
    fn no_borders_with_one_part() {
        let g = gen::complete(6);
        let part = BlockPartition::new(6, 1);
        assert!(part.border_vertices(&g).is_empty());
        assert_eq!(part.cut_arcs(&g), 0);
    }

    #[test]
    fn complete_graph_everyone_is_border() {
        let g = gen::complete(6);
        let part = BlockPartition::new(6, 3);
        assert_eq!(part.border_vertices(&g).len(), 6);
    }
}
