//! `.ppg` — a versioned binary CSR snapshot format.
//!
//! Text edge lists pay a per-edge price twice: parsing on the way in and a
//! full [`crate::GraphBuilder`] normalization pass (sort + dedup +
//! symmetrize) afterwards. A `.ppg` file stores the *finished* CSR arrays,
//! so [`load_ppg`] is a header read plus three bulk slab reads — O(bytes)
//! with no per-edge construction work — which turns "load the graph" from
//! the dominant cost of short benchmark runs into noise.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PPGR"
//! 4       4     format version (currently 1)
//! 8       4     flags: bit 0 = weighted, bit 1 = directed
//! 12      4     reserved (zero)
//! 16      8     n      (vertex count)
//! 24      8     arcs   (stored arc count; 2m undirected, m directed)
//! 32      ...   offsets  (n + 1) x u64
//! ...     ...   targets  arcs x u32
//! ...     ...   weights  arcs x u32   (present iff weighted)
//! ```
//!
//! The header is validated on load ([`SnapshotError`] instead of a panic
//! on corrupt input), and the slabs are checked against the
//! [`crate::CsrGraph::from_parts`] invariants (monotone offsets, in-range
//! targets) before the graph is constructed.

use std::io::{Read, Write};
use std::path::Path;

use crate::{CsrGraph, VertexId, Weight};

/// File magic: the first four bytes of every `.ppg` snapshot.
pub const MAGIC: [u8; 4] = *b"PPGR";

/// Current format version. Readers reject anything newer.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes.
const HEADER_LEN: usize = 32;

const FLAG_WEIGHTED: u32 = 1 << 0;
const FLAG_DIRECTED: u32 = 1 << 1;

/// Errors from reading a `.ppg` snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (including truncated files).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The header or a slab violates a format invariant.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a .ppg snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .ppg version {v} (reader supports {VERSION})"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt .ppg snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Whether a buffer starts with the `.ppg` magic — the format sniff the
/// CLI uses to tell snapshots from text edge lists.
pub fn is_ppg(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Writes `g` as a `.ppg` snapshot.
pub fn save_ppg<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    let mut flags = 0u32;
    if g.is_weighted() {
        flags |= FLAG_WEIGHTED;
    }
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    header[8..12].copy_from_slice(&flags.to_le_bytes());
    header[16..24].copy_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(g.num_arcs() as u64).to_le_bytes());
    writer.write_all(&header)?;

    // One reusable chunk buffer keeps the syscall count low without
    // doubling the graph's memory footprint.
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    write_slab(&mut writer, &mut buf, g.offsets(), |x| x.to_le_bytes())?;
    write_slab(&mut writer, &mut buf, g.targets(), |x| x.to_le_bytes())?;
    if let Some(weights) = g.weight_slab() {
        write_slab(&mut writer, &mut buf, weights, |x| x.to_le_bytes())?;
    }
    Ok(())
}

fn write_slab<W: Write, T: Copy, const N: usize>(
    writer: &mut W,
    buf: &mut Vec<u8>,
    slab: &[T],
    to_bytes: impl Fn(T) -> [u8; N],
) -> std::io::Result<()> {
    buf.clear();
    for &x in slab {
        buf.extend_from_slice(&to_bytes(x));
        if buf.len() >= 64 * 1024 {
            writer.write_all(buf)?;
            buf.clear();
        }
    }
    writer.write_all(buf)
}

/// Reads a `.ppg` snapshot back into a [`CsrGraph`].
///
/// The load is O(bytes): bulk slab reads plus one linear validation sweep —
/// no sorting, no deduplication, no builder pass.
pub fn load_ppg<R: Read>(mut reader: R) -> Result<CsrGraph, SnapshotError> {
    // Read the magic on its own: a short non-snapshot input (e.g. a tiny
    // text edge list) should report BadMagic, not a truncation error.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&magic);
    reader.read_exact(&mut header[4..])?;
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let flags = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if flags & !(FLAG_WEIGHTED | FLAG_DIRECTED) != 0 {
        return Err(SnapshotError::Corrupt("unknown flag bits set"));
    }
    let n = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let arcs = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if n > VertexId::MAX as u64 + 1 {
        return Err(SnapshotError::Corrupt("vertex count exceeds VertexId"));
    }
    // An arc needs at least 4 bytes of target storage; anything claiming
    // more arcs than any real file could hold is a corrupt header. (The
    // real protection against crafted headers is in `read_slab`, which
    // reads incrementally and hits EOF long before a lying header's
    // claimed size is ever allocated.)
    if arcs > (1u64 << 40) {
        return Err(SnapshotError::Corrupt("implausible arc count"));
    }
    let (n, arcs) = (n as usize, arcs as usize);

    let offsets: Vec<u64> = read_slab(&mut reader, n + 1, u64::from_le_bytes)?;
    let targets: Vec<VertexId> = read_slab(&mut reader, arcs, VertexId::from_le_bytes)?;
    let weighted = flags & FLAG_WEIGHTED != 0;
    let weights: Option<Vec<Weight>> = if weighted {
        Some(read_slab(&mut reader, arcs, Weight::from_le_bytes)?)
    } else {
        None
    };

    // Validate the from_parts invariants with recoverable errors; the
    // constructor's own asserts then hold by construction.
    if offsets[0] != 0 {
        return Err(SnapshotError::Corrupt("offsets do not start at 0"));
    }
    if *offsets.last().unwrap() != arcs as u64 {
        return Err(SnapshotError::Corrupt(
            "offsets do not end at the arc count",
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("offsets are not monotone"));
    }
    if targets.iter().any(|&t| t as usize >= n.max(1)) || (n == 0 && arcs > 0) {
        return Err(SnapshotError::Corrupt("edge target out of range"));
    }
    Ok(CsrGraph::from_parts(
        offsets,
        targets,
        weights,
        flags & FLAG_DIRECTED != 0,
    ))
}

/// Bytes read (and decoded) per step of [`read_slab`]. Bounded so a
/// crafted or truncated header claiming a huge slab fails with a
/// recoverable EOF error after at most one chunk — the output vector only
/// grows as real data actually arrives, never from the header's claim.
const READ_CHUNK: usize = 16 * 1024 * 1024;

fn read_slab<R: Read, T, const N: usize>(
    reader: &mut R,
    len: usize,
    from_bytes: impl Fn([u8; N]) -> T,
) -> Result<Vec<T>, SnapshotError> {
    let total = len
        .checked_mul(N)
        .ok_or(SnapshotError::Corrupt("slab overflow"))?;
    let mut buf = vec![0u8; total.min(READ_CHUNK)];
    let mut out: Vec<T> = Vec::with_capacity(buf.len() / N);
    let mut remaining = total;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        reader.read_exact(&mut buf[..take])?;
        out.extend(
            buf[..take]
                .chunks_exact(N)
                .map(|c| from_bytes(c.try_into().unwrap())),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Writes `g` to `path` as a `.ppg` snapshot.
pub fn save_ppg_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> std::io::Result<()> {
    save_ppg(g, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Loads a `.ppg` snapshot from `path`.
pub fn load_ppg_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph, SnapshotError> {
    load_ppg(std::io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    fn round_trip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        save_ppg(g, &mut buf).unwrap();
        assert!(is_ppg(&buf));
        load_ppg(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_unweighted_weighted_and_directed() {
        for g in [
            gen::rmat(7, 4, 3),
            gen::with_random_weights(&gen::rmat(6, 5, 9), 1, 99, 4),
            GraphBuilder::directed(5)
                .edges([(0, 1), (3, 2), (4, 0)])
                .build(),
            GraphBuilder::undirected(7).edge(0, 1).build(), // isolated tail
            GraphBuilder::undirected(0).build(),            // empty
            GraphBuilder::undirected(3)
                .weighted_edges(std::iter::empty())
                .build(), // weighted, edgeless
        ] {
            assert_eq!(round_trip(&g), g);
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(matches!(
            load_ppg(&b"0 1\n1 2\n"[..]).unwrap_err(),
            SnapshotError::BadMagic
        ));
        assert!(!is_ppg(b"0 1\n"));
        let mut buf = Vec::new();
        save_ppg(&gen::path(10), &mut buf).unwrap();
        for cut in [3, HEADER_LEN - 1, HEADER_LEN + 5, buf.len() - 1] {
            assert!(
                matches!(load_ppg(&buf[..cut]).unwrap_err(), SnapshotError::Io(_)),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn rejects_future_versions_and_unknown_flags() {
        let mut buf = Vec::new();
        save_ppg(&gen::path(4), &mut buf).unwrap();
        let mut newer = buf.clone();
        newer[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            load_ppg(newer.as_slice()).unwrap_err(),
            SnapshotError::UnsupportedVersion(2)
        ));
        let mut flagged = buf.clone();
        flagged[8] |= 0x80;
        assert!(matches!(
            load_ppg(flagged.as_slice()).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn rejects_corrupt_slabs() {
        let mut buf = Vec::new();
        save_ppg(&gen::path(4), &mut buf).unwrap();
        // Break monotonicity of the offsets slab.
        let mut bad = buf.clone();
        bad[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load_ppg(bad.as_slice()).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Point a target out of range.
        let targets_at = HEADER_LEN + 5 * 8;
        let mut bad = buf.clone();
        bad[targets_at..targets_at + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            load_ppg(bad.as_slice()).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn lying_headers_fail_recoverably_without_huge_allocation() {
        // Regression (review finding): a crafted header claiming a huge
        // slab used to be allocated up front (`vec![0u8; claimed]`), so a
        // 48-byte file could demand terabytes and abort the process. With
        // chunked reads it now fails with a plain EOF error.
        let mut buf = Vec::new();
        save_ppg(&gen::path(4), &mut buf).unwrap();
        // Claim n = VertexId::MAX + 1 vertices (the largest the n-guard
        // admits → a multi-GB offsets slab) and 2^40 arcs (the largest
        // the arc-guard admits → a 4 TiB targets slab).
        let mut lying = buf.clone();
        lying[16..24].copy_from_slice(&(u64::from(VertexId::MAX) + 1).to_le_bytes());
        lying[24..32].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            load_ppg(lying.as_slice()).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn path_helpers_round_trip() {
        let g = gen::with_random_weights(&gen::cycle(9), 1, 5, 1);
        let path = std::env::temp_dir().join("pp_snapshot_test.ppg");
        save_ppg_path(&g, &path).unwrap();
        let back = load_ppg_path(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, g);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = SnapshotError::UnsupportedVersion(7).to_string();
        assert!(msg.contains('7') && msg.contains("version"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
    }
}
