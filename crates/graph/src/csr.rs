//! Compressed-sparse-row adjacency storage.
//!
//! The paper (§2.2) stores the neighbor arrays of all vertices in one
//! contiguous array plus per-vertex offsets: `n + 2m` cells for an undirected
//! graph. `CsrGraph` is exactly that layout. For directed graphs the same
//! structure doubles as CSR (out-edges) and, after [`CsrGraph::transpose`],
//! CSC (in-edges) — the dichotomy §7.1 maps onto pull and push.

use crate::{VertexId, Weight};

/// A graph in CSR form. Neighbor lists are sorted ascending, which lets
/// [`CsrGraph::has_edge`] run in `O(log d(v))` (used by triangle counting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
    directed: bool,
}

impl CsrGraph {
    /// Builds a CSR graph from raw parts. Callers normally go through
    /// [`crate::GraphBuilder`]; this is the trusted-input path used by
    /// generators.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone, do not start at 0, do not end
    /// at `targets.len()`, if a target is out of range, or if the weight
    /// array length does not match the target array.
    pub fn from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
        directed: bool,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        let n = offsets.len() - 1;
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "edge target out of range"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), targets.len(), "weights must match targets");
        }
        Self {
            offsets,
            targets,
            weights,
            directed,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (directed edge slots). For an undirected graph
    /// this is `2m`; for a directed graph it is `m`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of edges `m` in the paper's sense: undirected edges count once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.targets.len()
        } else {
            self.targets.len() / 2
        }
    }

    /// Whether this graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether edge weights are attached.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Degree of `v` (out-degree for directed graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The neighbors of `v` as a sorted slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The weights parallel to [`CsrGraph::neighbors`].
    ///
    /// # Panics
    /// Panics if the graph is unweighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[Weight] {
        let w = self
            .weights
            .as_ref()
            .expect("neighbor_weights on unweighted graph");
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &w[lo..hi]
    }

    /// Neighbors of `v` zipped with their edge weights.
    pub fn weighted_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_weights(v).iter().copied())
    }

    /// Raw offset array (`n + 1` entries). Exposed for the probe-instrumented
    /// kernels that account for every memory cell they touch.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array. See [`CsrGraph::offsets`].
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weight array parallel to [`CsrGraph::targets`], if the graph is
    /// weighted. Exposed for bulk serialization ([`crate::snapshot`]).
    #[inline]
    pub fn weight_slab(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Binary-search adjacency test: is `(u, v)` an arc?
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of arc `(u, v)`, if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.neighbor_weights(u)[idx])
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterate over every stored arc `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterate over undirected edges once (`u <= v`), or all arcs if the
    /// graph is directed. For weighted graphs the weight rides along.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            let ws = self.weights.as_deref();
            let lo = self.offsets[u as usize] as usize;
            self.neighbors(u)
                .iter()
                .enumerate()
                .filter(move |(_, &v)| self.directed || u <= v)
                .map(move |(i, &v)| (u, v, ws.map_or(1, |w| w[lo + i])))
        })
    }

    /// Maximum degree `d̂` (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `d̄` over stored arcs.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Memory cells used by the representation, matching the paper's
    /// accounting: `n + 2m` for an undirected unweighted graph (offsets are
    /// counted as `n`, each undirected edge appears in two adjacency lists).
    pub fn representation_cells(&self) -> usize {
        self.num_vertices() + self.num_arcs() + self.weights.as_ref().map_or(0, |w| w.len())
    }

    /// The transposed graph: arc `(u, v)` becomes `(v, u)`. For an undirected
    /// graph this is an (expensive) identity. The result is the CSC view of
    /// §7.1: iterating its rows is iterating the original graph's columns.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0 as Weight; self.targets.len()]);
        for u in 0..n as VertexId {
            let lo = self.offsets[u as usize] as usize;
            for (i, &v) in self.neighbors(u).iter().enumerate() {
                let slot = cursor[v as usize] as usize;
                cursor[v as usize] += 1;
                targets[slot] = u;
                if let Some(w) = &mut weights {
                    w[slot] = self.weights.as_ref().unwrap()[lo + i];
                }
            }
        }
        // Transposition fills each bucket in increasing source order, so the
        // neighbor lists come out sorted and `from_parts` invariants hold.
        CsrGraph::from_parts(offsets, targets, weights, self.directed)
    }

    /// Strips weights, keeping the structure.
    pub fn unweighted(&self) -> CsrGraph {
        CsrGraph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: None,
            directed: self.directed,
        }
    }

    /// Attaches the given weight array (length must equal `num_arcs`). For
    /// undirected graphs the caller must supply symmetric weights; use
    /// [`crate::gen::with_random_weights`] for that.
    pub fn with_weights(&self, weights: Vec<Weight>) -> CsrGraph {
        assert_eq!(weights.len(), self.num_arcs());
        CsrGraph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: Some(weights),
            directed: self.directed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2), (0, 2)])
            .build()
    }

    #[test]
    fn counts_match_paper_notation() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.representation_cells(), 3 + 2 * 3);
    }

    #[test]
    fn neighbors_sorted_and_queryable() {
        let g = GraphBuilder::undirected(5)
            .edges([(4, 0), (4, 2), (4, 1), (0, 1)])
            .build();
        assert_eq!(g.neighbors(4), &[0, 1, 2]);
        assert!(g.has_edge(4, 2));
        assert!(g.has_edge(2, 4));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(4), 3);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterates_each_undirected_edge_once() {
        let g = triangle();
        let mut e: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn directed_edges_and_transpose() {
        let g = GraphBuilder::directed(3)
            .edges([(0, 1), (0, 2), (1, 2)])
            .build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 3);
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn transpose_of_undirected_graph_is_identity() {
        let g = triangle();
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn weighted_access() {
        let g = GraphBuilder::undirected(3)
            .weighted_edges([(0, 1, 5), (1, 2, 7)])
            .build();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(7));
        assert_eq!(g.edge_weight(0, 2), None);
        let wn: Vec<_> = g.weighted_neighbors(1).collect();
        assert_eq!(wn, vec![(0, 5), (2, 7)]);
    }

    #[test]
    fn weighted_transpose_preserves_weights() {
        let g = GraphBuilder::directed(3)
            .weighted_edges([(0, 1, 5), (2, 1, 9)])
            .build();
        let t = g.transpose();
        assert_eq!(t.edge_weight(1, 0), Some(5));
        assert_eq!(t.edge_weight(1, 2), Some(9));
    }

    #[test]
    fn arcs_enumerates_both_directions() {
        let g = triangle();
        assert_eq!(g.arcs().count(), 6);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_parts_validates_offsets() {
        CsrGraph::from_parts(vec![0, 3], vec![0], None, false);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn from_parts_validates_targets() {
        CsrGraph::from_parts(vec![0, 1], vec![7], None, false);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }
}
