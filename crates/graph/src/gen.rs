//! Synthetic graph generators.
//!
//! The paper evaluates on power-law Kronecker (R-MAT) graphs, Erdős–Rényi
//! graphs (§6, "Selected Benchmarks & Parameters"), and real-world graphs of
//! three sparsity regimes. These generators produce all of those families
//! deterministically from a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder, VertexId, Weight};

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (duplicates collapse,
/// so the realized edge count can be slightly below `m`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let mut v = rng.gen_range(0..n) as VertexId;
        while v == u {
            v = rng.gen_range(0..n) as VertexId;
        }
        b.add_edge(u, v);
    }
    b.build()
}

/// R-MAT / stochastic-Kronecker generator [Leskovec et al. 2010] with the
/// Graph500 partition probabilities by default. `scale` gives `n = 2^scale`,
/// `edge_factor` gives `m ≈ edge_factor · n`.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat_with_probs(scale, edge_factor, (0.57, 0.19, 0.19), seed)
}

/// R-MAT with explicit quadrant probabilities `(a, b, c)`; `d = 1 - a - b - c`.
pub fn rmat_with_probs(
    scale: u32,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> CsrGraph {
    assert!(scale < 31, "scale too large for VertexId");
    assert!(a + b + c < 1.0 + 1e-9, "probabilities must sum below 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // upper-left: both bits 0
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.add_edge(u as VertexId, v as VertexId);
        }
    }
    builder.build()
}

/// Road-network stand-in: an `rows × cols` 2D grid with each grid edge kept
/// with probability `keep`, plus a spanning "highway" path through all
/// vertices so the graph stays connected. Produces the low-`d̄`, high-`D`
/// regime of the paper's `rca` graph.
pub fn road_grid(rows: usize, cols: usize, keep: f64, seed: u64) -> CsrGraph {
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(keep) {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.gen_bool(keep) {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    // Spanning serpentine path (row 0 left→right, row 1 right→left, …):
    // guarantees connectivity and a large diameter, matching road-network
    // topology. Most of its edges coincide with kept grid edges.
    let serp = |i: usize| {
        let r = i / cols;
        let c = if r.is_multiple_of(2) {
            i % cols
        } else {
            cols - 1 - (i % cols)
        };
        id(r, c)
    };
    for i in 1..n {
        b.add_edge(serp(i - 1), serp(i));
    }
    b.build()
}

/// Community graph: `k` dense Erdős–Rényi communities of size `cs` with
/// `inter` random cross-community edges. Social-network stand-in with low
/// diameter and high average degree.
pub fn community(k: usize, cs: usize, intra_m: usize, inter: usize, seed: u64) -> CsrGraph {
    let n = k * cs;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    for comm in 0..k {
        let base = comm * cs;
        for _ in 0..intra_m {
            let u = base + rng.gen_range(0..cs);
            let mut v = base + rng.gen_range(0..cs);
            while v == u {
                v = base + rng.gen_range(0..cs);
            }
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    for _ in 0..inter {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
    b.build()
}

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::undirected(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId);
    }
    b.build()
}

/// Cycle graph on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut b = GraphBuilder::undirected(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId);
    }
    b.build()
}

/// Star graph: vertex 0 connected to all others.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::undirected(n);
    for i in 1..n {
        b.add_edge(0, i as VertexId);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Complete binary tree on `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::undirected(n);
    for i in 1..n {
        b.add_edge(((i - 1) / 2) as VertexId, i as VertexId);
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m_per_vertex + 1` vertices, then every new vertex attaches to
/// `m_per_vertex` existing vertices sampled proportionally to degree.
/// Produces the heavy-tailed degree distribution of citation/social graphs —
/// an alternative skewed family to [`rmat`] that is connected by
/// construction.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(m_per_vertex >= 1);
    assert!(
        n > m_per_vertex,
        "need more vertices than attachments per vertex"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    // Repeated-endpoint list: sampling an index uniformly from it is
    // sampling a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_per_vertex);
    let core = m_per_vertex + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            b.add_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for v in core..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m_per_vertex);
        while chosen.len() < m_per_vertex {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            b.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its `k` nearest neighbors on each side, with every lattice edge rewired
/// to a random endpoint with probability `beta`. `beta = 0` is a pure
/// lattice (large `D`), `beta = 1` approaches Erdős–Rényi (low `D`); the
/// interesting regime is small `beta`, which keeps high clustering but gains
/// short paths — a third structural regime next to R-MAT and road grids.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 1 && 2 * k < n, "ring lattice needs 2k < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint anywhere except `u` itself.
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                b.add_edge(u as VertexId, w as VertexId);
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Random bipartite graph: `left + right` vertices (left side first), `m`
/// edges sampled uniformly across the cut, no intra-side edges. This is the
/// §5 worst case for Partition-Awareness: if each thread owns vertices from
/// only one side, *every* pushed update crosses an ownership boundary, so
/// the PA local phase is empty and all `2m` updates stay atomic.
pub fn bipartite(left: usize, right: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(left >= 1 && right >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(left + right);
    for _ in 0..m {
        let u = rng.gen_range(0..left) as VertexId;
        let v = (left + rng.gen_range(0..right)) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

/// Attaches symmetric uniform random weights in `[lo, hi]` to a graph. Both
/// directions of an undirected edge receive the same weight (required by the
/// shortest-path and MST algorithms).
pub fn with_random_weights(g: &CsrGraph, lo: Weight, hi: Weight, seed: u64) -> CsrGraph {
    assert!(lo <= hi);
    assert!(lo > 0, "zero weights break Δ-stepping bucket math");
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<_> = g
        .edges()
        .map(|(u, v, _)| (u, v, rng.gen_range(lo..=hi)))
        .collect();
    // `weighted_edges` marks the graph weighted even when the edge list is
    // empty, so downstream weight accessors stay valid on edgeless graphs.
    if g.is_directed() {
        GraphBuilder::directed(g.num_vertices())
            .weighted_edges(edges)
            .build()
    } else {
        GraphBuilder::undirected(g.num_vertices())
            .weighted_edges(edges)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(100, 300, 7);
        let b = erdos_renyi(100, 300, 7);
        let c = erdos_renyi(100, 300, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.num_edges() <= 300);
        assert!(
            a.num_edges() > 250,
            "too many collisions: {}",
            a.num_edges()
        );
    }

    #[test]
    fn rmat_has_skewed_degrees() {
        let g = rmat(10, 8, 42);
        assert_eq!(g.num_vertices(), 1024);
        // Power-law-ish skew: the max degree should far exceed the average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn road_grid_is_connected_and_sparse() {
        let g = road_grid(20, 30, 0.5, 1);
        assert_eq!(g.num_vertices(), 600);
        assert!(stats::is_connected(&g));
        assert!(g.avg_degree() < 5.0);
    }

    #[test]
    fn road_grid_full_keep_has_grid_degree() {
        let g = road_grid(10, 10, 1.0, 1);
        // Interior vertices have degree 4 (serpentine edges coincide with
        // grid edges except at row turns).
        assert!(g.max_degree() <= 5);
        assert!(stats::is_connected(&g));
    }

    #[test]
    fn community_generator_shape() {
        let g = community(4, 50, 300, 100, 3);
        assert_eq!(g.num_vertices(), 200);
        assert!(g.avg_degree() > 4.0);
    }

    #[test]
    fn small_topologies() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(binary_tree(7).num_edges(), 6);
        assert_eq!(binary_tree(7).degree(0), 2);
        assert_eq!(complete(5).degree(0), 4);
    }

    #[test]
    fn barabasi_albert_connected_and_skewed() {
        let g = barabasi_albert(500, 3, 5);
        assert_eq!(g.num_vertices(), 500);
        assert!(stats::is_connected(&g));
        // Every vertex has degree >= m (its own attachments).
        assert!(g.vertices().all(|v| g.degree(v) >= 3));
        // Preferential attachment produces hubs.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
        assert_eq!(g, barabasi_albert(500, 3, 5));
        assert_ne!(g, barabasi_albert(500, 3, 6));
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(40, 2, 0.0, 1);
        // Pure lattice: every vertex has exactly 2k = 4 neighbors.
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(stats::is_connected(&g));
    }

    #[test]
    fn watts_strogatz_rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(400, 2, 0.0, 2);
        let small_world = watts_strogatz(400, 2, 0.1, 2);
        let d0 = stats::double_sweep_diameter(&lattice);
        let d1 = stats::double_sweep_diameter(&small_world);
        assert!(d1 < d0 / 2, "rewiring should shrink diameter: {d0} -> {d1}");
    }

    #[test]
    fn bipartite_has_no_intra_side_edges() {
        let g = bipartite(30, 20, 200, 9);
        assert_eq!(g.num_vertices(), 50);
        for (u, v, _) in g.edges() {
            assert!((u < 30) != (v < 30), "edge ({u},{v}) stays inside a side");
        }
    }

    #[test]
    fn random_weights_are_symmetric_and_in_range() {
        let g = with_random_weights(&cycle(10), 2, 9, 11);
        assert!(g.is_weighted());
        for (u, v, w) in g.edges() {
            assert!((2..=9).contains(&w));
            assert_eq!(g.edge_weight(v, u), Some(w));
        }
    }
}
