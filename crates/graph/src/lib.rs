//! Graph substrate for the push–pull reproduction.
//!
//! Implements the representation of §2.2 of the paper: adjacency arrays of
//! all vertices stored contiguously (`n + 2m` cells for an undirected graph),
//! plus the partition-aware transform of §5 (`2n + 2m` cells), 1D vertex
//! partitioning with an ownership map `t[v]`, synthetic graph generators, and
//! stand-ins for the real-world datasets of Table 2.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod partition;
pub mod partition_aware;
pub mod reorder;
pub mod snapshot;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use partition::BlockPartition;
pub use partition_aware::PartitionAwareGraph;

/// Vertex identifier. `u32` keeps adjacency arrays compact; graph algorithms
/// in this workspace are memory-bound (§6 of the paper), so halving the
/// per-edge footprint matters more than supporting >4B vertices.
pub type VertexId = u32;

/// Edge weight type used by weighted algorithms (SSSP-Δ, Boruvka MST).
pub type Weight = u32;
