//! Edge-list graph construction with normalization.
//!
//! The builder accepts arbitrary edge lists (unsorted, with duplicates and
//! self-loops) and produces a canonical [`CsrGraph`]: sorted adjacency,
//! duplicate edges collapsed, self-loops dropped unless requested, and — for
//! undirected graphs — both arc directions materialized with symmetric
//! weights.

use crate::{CsrGraph, VertexId, Weight};

/// Incremental builder for [`CsrGraph`].
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    keep_self_loops: bool,
    weighted: bool,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Builder for an undirected graph on `n` vertices.
    pub fn undirected(n: usize) -> Self {
        Self::new(n, false)
    }

    /// Builder for a directed graph on `n` vertices.
    pub fn directed(n: usize) -> Self {
        Self::new(n, true)
    }

    fn new(n: usize, directed: bool) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count exceeds VertexId");
        Self {
            n,
            directed,
            keep_self_loops: false,
            weighted: false,
            edges: Vec::new(),
        }
    }

    /// Keep self-loops instead of dropping them (the default drops them; none
    /// of the paper's algorithms are defined over self-loops).
    pub fn keep_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Adds a single unweighted edge.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push(u, v, 1);
        self
    }

    /// Adds many unweighted edges.
    pub fn edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (u, v) in it {
            self.push(u, v, 1);
        }
        self
    }

    /// Adds many weighted edges; marks the output graph as weighted.
    pub fn weighted_edges(
        mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        self.weighted = true;
        for (u, v, w) in it {
            self.push(u, v, w);
        }
        self
    }

    /// Adds edges from a mutable reference (for loop-driven construction).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.push(u, v, 1);
    }

    /// Adds a weighted edge from a mutable reference.
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.weighted = true;
        self.push(u, v, w);
    }

    fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!((u as usize) < self.n, "source {u} out of range");
        assert!((v as usize) < self.n, "target {v} out of range");
        self.edges.push((u, v, w));
    }

    /// Number of (raw, possibly duplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a canonical [`CsrGraph`]. Duplicate arcs keep the
    /// *minimum* weight (the natural choice for shortest-path workloads and
    /// irrelevant for unweighted ones).
    pub fn build(self) -> CsrGraph {
        let Self {
            n,
            directed,
            keep_self_loops,
            weighted,
            edges,
        } = self;

        let mut arcs: Vec<(VertexId, VertexId, Weight)> =
            Vec::with_capacity(edges.len() * if directed { 1 } else { 2 });
        for (u, v, w) in edges {
            if u == v && !keep_self_loops {
                continue;
            }
            arcs.push((u, v, w));
            if !directed && u != v {
                arcs.push((v, u, w));
            }
        }
        arcs.sort_unstable();
        // Collapse duplicates; sorted order means equal (u, v) are adjacent
        // and the first holds the minimum weight.
        arcs.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);

        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<VertexId> = arcs.iter().map(|&(_, v, _)| v).collect();
        let weights = weighted.then(|| arcs.iter().map(|&(_, _, w)| w).collect());
        CsrGraph::from_parts(offsets, targets, weights, directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_symmetrizes() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 0), (0, 1), (2, 3)])
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = GraphBuilder::undirected(2).edges([(0, 0), (0, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn keeps_self_loops_on_request() {
        let g = GraphBuilder::directed(2)
            .keep_self_loops()
            .edges([(0, 0), (0, 1)])
            .build();
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn duplicate_weighted_edges_keep_minimum() {
        let g = GraphBuilder::undirected(2)
            .weighted_edges([(0, 1, 9), (0, 1, 3), (1, 0, 5)])
            .build();
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn directed_builder_keeps_direction() {
        let g = GraphBuilder::directed(3).edges([(0, 1), (2, 1)]).build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn incremental_construction() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1);
        b.add_weighted_edge(1, 2, 4);
        assert_eq!(b.pending_edges(), 2);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(2, 1), Some(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertices() {
        GraphBuilder::undirected(2).edge(0, 2);
    }
}
