//! Criterion bench behind Figure 5: betweenness centrality push vs. pull
//! (float-lock scatters vs. synchronization-free gathers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::bc::{self, BcOptions};
use pp_core::Direction;
use pp_graph::datasets::{Dataset, Scale};

fn bench_bc(c: &mut Criterion) {
    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    let opts = BcOptions {
        max_sources: Some(12),
    };
    for ds in [Dataset::Orc, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "push",
                Direction::Pull => "pull",
            };
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| bc::betweenness(g, dir, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bc);
criterion_main!(benches);
