//! Criterion bench behind Table 3 (TC columns): triangle counting push vs.
//! pull per dataset stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{triangles, Direction};
use pp_graph::datasets::{Dataset, Scale};

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_count");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "push",
                Direction::Pull => "pull",
            };
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| triangles::triangle_counts(g, dir))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);
