//! Criterion bench behind Figure 1 and Figure 6b: Boman coloring push vs.
//! pull and the §5 strategy ablation (FE / GS / GrS / CR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::coloring::{self, GcOptions};
use pp_core::Direction;
use pp_graph::datasets::{Dataset, Scale};

fn bench_boman(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_boman");
    group.sample_size(20);
    let opts = GcOptions::default();
    let parts = rayon::current_num_threads().max(2);
    for ds in [Dataset::Orc, Dataset::Ljn, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "push",
                Direction::Pull => "pull",
            };
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| coloring::boman(g, parts, dir, &opts))
            });
        }
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    // The §5 ablation: each strategy against the same workloads.
    let mut group = c.benchmark_group("coloring_strategies");
    group.sample_size(20);
    let opts = GcOptions::default();
    let parts = rayon::current_num_threads().max(2);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        group.bench_with_input(BenchmarkId::new("frontier_exploit", ds.id()), &g, |b, g| {
            b.iter(|| coloring::frontier_exploit(g, Direction::Push, &opts))
        });
        group.bench_with_input(BenchmarkId::new("generic_switch", ds.id()), &g, |b, g| {
            b.iter(|| coloring::generic_switch(g, 0.2, &opts))
        });
        group.bench_with_input(BenchmarkId::new("greedy_switch", ds.id()), &g, |b, g| {
            b.iter(|| coloring::greedy_switch(g, 0.1, &opts))
        });
        group.bench_with_input(BenchmarkId::new("conflict_removal", ds.id()), &g, |b, g| {
            b.iter(|| coloring::conflict_removal(g, parts))
        });
        group.bench_with_input(BenchmarkId::new("greedy_seq", ds.id()), &g, |b, g| {
            b.iter(|| coloring::greedy_seq(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boman, bench_strategies);
criterion_main!(benches);
