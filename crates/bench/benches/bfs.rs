//! Criterion bench behind §6.1's BFS discussion: top-down, bottom-up, and
//! direction-optimizing traversals across sparsity regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::bfs::{self, BfsMode};
use pp_graph::datasets::{Dataset, Scale};

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);
    for ds in [Dataset::Orc, Dataset::Am, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for (name, mode) in [
            ("push", BfsMode::Push),
            ("pull", BfsMode::Pull),
            ("direction_optimizing", BfsMode::direction_optimizing()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| bfs::bfs(g, 0, mode))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
