//! Criterion bench behind Figure 3: the distributed-memory simulation
//! itself (simulator throughput across variants and rank counts — the
//! modeled times it produces are printed by `tables fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_dm::{dm_pagerank, dm_triangle_count, CostModel, DmVariant};
use pp_graph::datasets::{Dataset, Scale};

fn bench_dm_pr(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_pagerank");
    group.sample_size(10);
    let g = Dataset::Ljn.generate(Scale::Test);
    for variant in DmVariant::ALL {
        for p in [4usize, 64, 1024] {
            group.bench_with_input(BenchmarkId::new(variant.label(), p), &p, |b, &p| {
                b.iter(|| dm_pagerank(&g, variant, p, 1, 0.85, CostModel::xc40()))
            });
        }
    }
    group.finish();
}

fn bench_dm_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_triangle_count");
    group.sample_size(10);
    let g = Dataset::Am.generate(Scale::Test);
    for variant in DmVariant::ALL {
        for p in [4usize, 64] {
            group.bench_with_input(BenchmarkId::new(variant.label(), p), &p, |b, &p| {
                b.iter(|| dm_triangle_count(&g, variant, p, CostModel::xc40()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dm_pr, bench_dm_tc);
criterion_main!(benches);
