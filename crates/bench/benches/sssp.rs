//! Criterion bench behind Figure 2: Δ-stepping push vs. pull, and the Δ
//! sweep that controls the push/pull gap (Figure 2c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::sssp::{self, SsspOptions};
use pp_core::Direction;
use pp_graph::datasets::{Dataset, Scale};

fn bench_directions(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp_direction");
    group.sample_size(10);
    for ds in [Dataset::Orc, Dataset::Am, Dataset::Rca] {
        let g = ds.generate_weighted(Scale::Test, 1, 100);
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "push",
                Direction::Pull => "pull",
            };
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| sssp::sssp_delta(g, 0, dir, &SsspOptions { delta: 64 }))
            });
        }
    }
    group.finish();
}

fn bench_delta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp_delta_sweep");
    group.sample_size(10);
    let g = Dataset::Orc.generate_weighted(Scale::Test, 1, 100);
    for delta in [4u64, 64, 1024, 1 << 16] {
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "push",
                Direction::Pull => "pull",
            };
            group.bench_with_input(BenchmarkId::new(name, delta), &delta, |b, &delta| {
                b.iter(|| sssp::sssp_delta(&g, 0, dir, &SsspOptions { delta }))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_directions, bench_delta_sweep);
criterion_main!(benches);
