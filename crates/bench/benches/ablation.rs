//! Ablation benches for the design knobs DESIGN.md calls out:
//!
//! * PR push conflict resolution: CAS loop vs. sharded locks (vs. pull);
//! * direction-optimizing BFS: α threshold sweep (when to go bottom-up);
//! * Frontier-Exploit seeding density (`seed_stride`);
//! * sharded-lock table size for the float-scatter path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::bfs::{self, BfsMode};
use pp_core::coloring::{self, GcOptions};
use pp_core::pagerank::{self, PrOptions, PushSync};
use pp_core::sync::ShardedLocks;
use pp_core::Direction;
use pp_graph::datasets::{Dataset, Scale};
use pp_telemetry::NullProbe;

fn ablate_pr_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pr_sync");
    group.sample_size(10);
    let g = Dataset::Ljn.generate(Scale::Test);
    let opts = PrOptions {
        iters: 3,
        damping: 0.85,
    };
    group.bench_function("push_cas", |b| {
        b.iter(|| pagerank::pagerank_push(&g, &opts, PushSync::Cas, &NullProbe))
    });
    group.bench_function("push_locks", |b| {
        b.iter(|| pagerank::pagerank_push(&g, &opts, PushSync::Locks, &NullProbe))
    });
    group.bench_function("pull_no_sync", |b| {
        b.iter(|| pagerank::pagerank_pull(&g, &opts, &NullProbe))
    });
    group.finish();
}

fn ablate_bfs_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bfs_alpha");
    group.sample_size(20);
    let g = Dataset::Orc.generate(Scale::Test);
    for alpha in [2usize, 15, 64, usize::MAX] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| bfs::bfs(&g, 0, BfsMode::DirectionOptimizing { alpha, beta: 18 }))
        });
    }
    group.finish();
}

fn ablate_fe_seed_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fe_seed_stride");
    group.sample_size(10);
    let g = Dataset::Rca.generate(Scale::Test);
    for stride in [1usize, 4, 16, 64] {
        let opts = GcOptions {
            seed_stride: stride,
            ..GcOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(stride), &opts, |b, opts| {
            b.iter(|| coloring::frontier_exploit(&g, Direction::Push, opts))
        });
    }
    group.finish();
}

fn ablate_lock_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lock_shards");
    group.sample_size(20);
    for shards in [1usize, 16, 256, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let locks = ShardedLocks::new(shards);
                let mut acc = 0u64;
                b.iter(|| {
                    for i in 0..4096usize {
                        locks.with(i, || acc = acc.wrapping_add(i as u64));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_pr_sync,
    ablate_bfs_alpha,
    ablate_fe_seed_stride,
    ablate_lock_shards
);
criterion_main!(benches);
