//! Engine scaling bench: all ten `pp-engine` `Program` algorithms (BFS,
//! PageRank, SSSP-Δ, CC, k-core, label propagation, coloring, triangle
//! counting, Boruvka MST, Brandes BC) across thread counts × direction
//! policies × execution modes × dataset stand-ins. Captures the scaling
//! trajectory of the parallel frontier runtime (the `tables engine`
//! experiment prints the same sweep as a table, and `tables engine --json`
//! dumps it for trajectory tracking).
//!
//! Mode caveat: the runner builds the §5 split lazily at a run's first
//! push round, so `-pa` rows whose schedule actually pushes include that
//! per-run O(n + m) preprocessing; pull-only schedules skip it entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{bc::BcOptions, pagerank::PrOptions, sssp::SsspOptions, Direction};
use pp_engine::algo::{
    bc::BcProgram, bfs::BfsProgram, coloring::ColoringProgram, components::CcProgram,
    kcore::KCoreProgram, labelprop::LabelPropProgram, mst::MstProgram, pagerank::PageRankProgram,
    sssp::SsspProgram, triangles::TcProgram,
};
use pp_engine::{DirectionPolicy, Engine, ExecutionMode, ProbeShards, Runner};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::gen;
use pp_telemetry::NullProbe;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The policy × mode schedule axis every group sweeps: each entry is one
/// schedule of the same algorithm.
fn schedules() -> Vec<(String, DirectionPolicy, ExecutionMode)> {
    let mut v = Vec::new();
    for (mode_name, mode) in ExecutionMode::sweep() {
        for (policy_name, policy) in DirectionPolicy::sweep() {
            v.push((format!("{policy_name}-{mode_name}"), policy, mode));
        }
    }
    v
}

fn bench_engine_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_bfs");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, BfsProgram::new(g, 0))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pagerank");
    group.sample_size(15);
    let opts = PrOptions {
        iters: 10,
        damping: 0.85,
    };
    for ds in [Dataset::Orc, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (mode_name, mode) in ExecutionMode::sweep() {
                for dir in Direction::BOTH {
                    let id = BenchmarkId::new(
                        format!("{}-{mode_name}", dir.label()),
                        format!("{}/t{}", ds.id(), t),
                    );
                    group.bench_with_input(id, &g, |b, g| {
                        b.iter(|| {
                            Runner::new(&engine, &probes)
                                .policy(DirectionPolicy::Fixed(dir))
                                .mode(mode)
                                .run(g, PageRankProgram::new(g, &opts))
                        })
                    });
                }
            }
        }
    }
    group.finish();
}

fn bench_engine_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sssp");
    group.sample_size(15);
    let opts = SsspOptions::default();
    for ds in [Dataset::Orc, Dataset::Rca] {
        let gw = gen::with_random_weights(&ds.generate(Scale::Test), 1, 64, 0x5ca1e);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &gw, |b, gw| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(gw, SsspProgram::new(gw, 0, &opts))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cc");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, CcProgram::new(g))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_kcore(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_kcore");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, KCoreProgram::new(g))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_labelprop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_labelprop");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, LabelPropProgram::new(g, 20))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_coloring");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, ColoringProgram::new(g))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tc");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, TcProgram::new(g))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_mst");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let gw = gen::with_random_weights(&ds.generate(Scale::Test), 1, 64, 0x5ca1e);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &gw, |b, gw| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(gw, MstProgram::new(gw))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_bc(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_bc");
    group.sample_size(15);
    let opts = BcOptions {
        max_sources: Some(8),
    };
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy, mode) in schedules() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| {
                        Runner::new(&engine, &probes)
                            .policy(policy)
                            .mode(mode)
                            .run(g, BcProgram::new(g, &opts))
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_bfs,
    bench_engine_pagerank,
    bench_engine_sssp,
    bench_engine_components,
    bench_engine_kcore,
    bench_engine_labelprop,
    bench_engine_coloring,
    bench_engine_triangles,
    bench_engine_mst,
    bench_engine_bc
);
criterion_main!(benches);
