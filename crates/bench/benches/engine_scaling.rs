//! Engine scaling bench: all seven `pp-engine` `Program` algorithms (BFS,
//! PageRank, SSSP-Δ, CC, k-core, label propagation, coloring) across
//! thread counts × direction policies × dataset stand-ins. Captures the
//! scaling trajectory of the parallel frontier runtime (the `tables engine`
//! experiment prints the same sweep as a table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{pagerank::PrOptions, sssp::SsspOptions, Direction};
use pp_engine::{algo, DirectionPolicy, Engine, ProbeShards};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::gen;
use pp_telemetry::NullProbe;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_engine_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_bfs");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::bfs::bfs(&engine, g, 0, policy, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pagerank");
    group.sample_size(15);
    let opts = PrOptions {
        iters: 10,
        damping: 0.85,
    };
    for ds in [Dataset::Orc, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for dir in Direction::BOTH {
                let id = BenchmarkId::new(dir.label(), format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::pagerank::pagerank(&engine, g, dir, &opts, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sssp");
    group.sample_size(15);
    let opts = SsspOptions::default();
    for ds in [Dataset::Orc, Dataset::Rca] {
        let gw = gen::with_random_weights(&ds.generate(Scale::Test), 1, 64, 0x5ca1e);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &gw, |b, gw| {
                    b.iter(|| algo::sssp::sssp_delta(&engine, gw, 0, policy, &opts, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cc");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::components::connected_components(&engine, g, policy, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_kcore(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_kcore");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::kcore::kcore(&engine, g, policy, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_labelprop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_labelprop");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Ljn] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::labelprop::label_propagation(&engine, g, policy, 20, &probes))
                });
            }
        }
    }
    group.finish();
}

fn bench_engine_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_coloring");
    group.sample_size(15);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for t in THREADS {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            for (name, policy) in DirectionPolicy::sweep() {
                let id = BenchmarkId::new(name, format!("{}/t{}", ds.id(), t));
                group.bench_with_input(id, &g, |b, g| {
                    b.iter(|| algo::coloring::color(&engine, g, policy, &probes))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_bfs,
    bench_engine_pagerank,
    bench_engine_sssp,
    bench_engine_components,
    bench_engine_kcore,
    bench_engine_labelprop,
    bench_engine_coloring
);
criterion_main!(benches);
