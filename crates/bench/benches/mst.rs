//! Criterion bench behind Figure 4: Boruvka MST push vs. pull (with the
//! sequential Kruskal baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{mst, Direction};
use pp_graph::datasets::{Dataset, Scale};

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate_weighted(Scale::Test, 1, 1_000_000);
        for dir in Direction::BOTH {
            let name = match dir {
                Direction::Push => "boruvka_push",
                Direction::Pull => "boruvka_pull",
            };
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &g, |b, g| {
                b.iter(|| mst::boruvka(g, dir))
            });
        }
        group.bench_with_input(BenchmarkId::new("kruskal_seq", ds.id()), &g, |b, g| {
            b.iter(|| mst::kruskal_seq(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
