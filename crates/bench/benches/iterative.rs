//! Criterion bench for the tech-report extension algorithms: connected
//! components, k-core, label propagation, Bellman–Ford, and Kruskal, each
//! push vs. pull, plus the Kruskal-vs-Boruvka MST baseline race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{
    bellman_ford::bellman_ford, components::connected_components, kcore::kcore, kruskal::kruskal,
    labelprop::label_propagation, mst::boruvka, Direction,
};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::gen;

fn dir_name(dir: Direction) -> &'static str {
    match dir {
        Direction::Push => "push",
        Direction::Pull => "pull",
    }
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            group.bench_with_input(BenchmarkId::new(dir_name(dir), ds.id()), &g, |b, g| {
                b.iter(|| connected_components(g, dir))
            });
        }
    }
    group.finish();
}

fn bench_kcore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcore");
    group.sample_size(20);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            group.bench_with_input(BenchmarkId::new(dir_name(dir), ds.id()), &g, |b, g| {
                b.iter(|| kcore(g, dir))
            });
        }
    }
    group.finish();
}

fn bench_labelprop(c: &mut Criterion) {
    let mut group = c.benchmark_group("labelprop");
    group.sample_size(20);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for dir in Direction::BOTH {
            group.bench_with_input(BenchmarkId::new(dir_name(dir), ds.id()), &g, |b, g| {
                b.iter(|| label_propagation(g, dir, 10))
            });
        }
    }
    group.finish();
}

fn bench_bellman_ford(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford");
    group.sample_size(20);
    for ds in [Dataset::Pok, Dataset::Rca] {
        let g = gen::with_random_weights(&ds.generate(Scale::Test), 1, 100, 5);
        for dir in Direction::BOTH {
            group.bench_with_input(BenchmarkId::new(dir_name(dir), ds.id()), &g, |b, g| {
                b.iter(|| bellman_ford(g, 0, dir))
            });
        }
    }
    group.finish();
}

fn bench_mst_baselines(c: &mut Criterion) {
    // Kruskal (eager vs lazy) against parallel Boruvka: the classical
    // work-optimal baseline vs the paper's parallel scheme.
    let mut group = c.benchmark_group("mst_baselines");
    group.sample_size(20);
    let g = gen::with_random_weights(&Dataset::Orc.generate(Scale::Test), 1, 1000, 9);
    group.bench_function("kruskal_eager_push", |b| {
        b.iter(|| kruskal(&g, Direction::Push))
    });
    group.bench_function("kruskal_unionfind_pull", |b| {
        b.iter(|| kruskal(&g, Direction::Pull))
    });
    group.bench_function("boruvka_pull", |b| b.iter(|| boruvka(&g, Direction::Pull)));
    group.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_kcore,
    bench_labelprop,
    bench_bellman_ford,
    bench_mst_baselines
);
criterion_main!(benches);
