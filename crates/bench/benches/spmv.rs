//! Criterion bench behind §7.1: CSR SpMV (pull) vs. CSC SpMV (push) vs.
//! SpMSpV over a sparse frontier — the storage-layout face of the
//! dichotomy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::algebra::{self, BoolOr, PlusTimes};
use pp_graph::datasets::{Dataset, Scale};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        let csr_vals = algebra::pagerank_values_csr(&g);
        let csc_vals = algebra::pagerank_values_csc(&g);
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| 1.0 + (i % 3) as f64)
            .collect();
        group.bench_with_input(BenchmarkId::new("csr_pull", ds.id()), &g, |b, g| {
            b.iter(|| algebra::spmv_csr::<PlusTimes>(g, &csr_vals, &x))
        });
        group.bench_with_input(BenchmarkId::new("csc_push", ds.id()), &g, |b, g| {
            b.iter(|| algebra::spmv_csc::<PlusTimes>(g, &csc_vals, &x))
        });
    }
    group.finish();
}

fn bench_spmspv(c: &mut Criterion) {
    // The §7.1 point: with a sparse operand, CSC work tracks the frontier
    // while dense CSR scans everything.
    let mut group = c.benchmark_group("spmspv_vs_spmv");
    group.sample_size(20);
    let g = Dataset::Orc.generate(Scale::Test);
    let vals = algebra::pattern_values::<BoolOr>(&g, true);
    for frontier in [1usize, 16, 256] {
        let sparse: Vec<(u32, bool)> = (0..frontier as u32)
            .map(|v| (v % g.num_vertices() as u32, true))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("csc_spmspv", frontier),
            &sparse,
            |b, sparse| b.iter(|| algebra::spmspv_csc::<BoolOr>(&g, &vals, sparse)),
        );
    }
    let mut dense = vec![false; g.num_vertices()];
    dense[0] = true;
    group.bench_function("csr_dense_equivalent", |b| {
        b.iter(|| algebra::spmv_csr::<BoolOr>(&g, &vals, &dense))
    });
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_spmspv);
criterion_main!(benches);
