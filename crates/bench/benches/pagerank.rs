//! Criterion bench behind Table 3 (PR columns), Table 4, and Figure 6a:
//! PageRank push vs. pull vs. push+PA per dataset stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::pagerank::{self, PrOptions, PushSync};
use pp_core::Direction;
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::{BlockPartition, PartitionAwareGraph};
use pp_telemetry::NullProbe;

fn bench_pagerank(c: &mut Criterion) {
    let opts = PrOptions {
        iters: 3,
        damping: 0.85,
    };
    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Test);
        let pa = PartitionAwareGraph::new(
            &g,
            BlockPartition::new(g.num_vertices(), rayon::current_num_threads()),
        );
        group.bench_with_input(BenchmarkId::new("push", ds.id()), &g, |b, g| {
            b.iter(|| pagerank::pagerank(g, Direction::Push, &opts))
        });
        group.bench_with_input(BenchmarkId::new("pull", ds.id()), &g, |b, g| {
            b.iter(|| pagerank::pagerank(g, Direction::Pull, &opts))
        });
        group.bench_with_input(BenchmarkId::new("push_pa", ds.id()), &g, |b, g| {
            b.iter(|| pagerank::pagerank_push_pa(g, &pa, &opts, PushSync::Cas, &NullProbe))
        });
        group.bench_with_input(BenchmarkId::new("push_locks", ds.id()), &g, |b, g| {
            b.iter(|| pagerank::pagerank_push(g, &opts, PushSync::Locks, &NullProbe))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
