//! Criterion bench for the memory-locality ablation: vertex ordering
//! (shuffled / original / degree-sorted / BFS-ordered) under pull PageRank
//! and pull Bellman–Ford — the software lever over the cache effects §6
//! measures with PAPI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::{bellman_ford::bellman_ford, pagerank, Direction};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::{gen, reorder, CsrGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn shuffle(g: &CsrGraph, seed: u64) -> CsrGraph {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..g.num_vertices() as u32).collect();
    ids.shuffle(&mut rng);
    reorder::apply_permutation(g, &reorder::Permutation::new(ids))
}

fn layouts(g: &CsrGraph) -> Vec<(&'static str, CsrGraph)> {
    let shuffled = shuffle(g, 42);
    vec![
        ("original", g.clone()),
        ("shuffled", shuffled.clone()),
        (
            "degree",
            reorder::apply_permutation(&shuffled, &reorder::degree_order(&shuffled)),
        ),
        (
            "bfs",
            reorder::apply_permutation(&shuffled, &reorder::bfs_order(&shuffled, 0)),
        ),
    ]
}

fn bench_pagerank_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_pagerank_pull");
    group.sample_size(20);
    let opts = pagerank::PrOptions {
        iters: 3,
        damping: 0.85,
    };
    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(Scale::Test);
        for (name, h) in layouts(&g) {
            group.bench_with_input(BenchmarkId::new(name, ds.id()), &h, |b, h| {
                b.iter(|| pagerank::pagerank(h, Direction::Pull, &opts))
            });
        }
    }
    group.finish();
}

fn bench_bellman_ford_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_bellman_ford_pull");
    group.sample_size(20);
    let g = gen::with_random_weights(&Dataset::Rca.generate(Scale::Test), 1, 100, 3);
    for (name, h) in layouts(&g) {
        group.bench_with_input(BenchmarkId::new(name, "rca"), &h, |b, h| {
            b.iter(|| bellman_ford(h, 0, Direction::Pull))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank_layouts, bench_bellman_ford_layouts);
criterion_main!(benches);
