//! Figure 3: distributed-memory strong scaling — PageRank on orc, ljn, and
//! two R-MAT sizes; Triangle Counting on orc and ljn. Three variants each:
//! Pushing (RMA), Pulling (RMA), Msg-Passing.

use pp_dm::{dm_bfs, dm_pagerank, dm_triangle_count, CostModel, DmBfsVariant, DmVariant};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::{gen, CsrGraph};

use super::{header, print_series, Ctx};

const RANKS: [usize; 8] = [2, 4, 8, 16, 32, 64, 256, 1024];

fn pr_panel(name: &str, g: &CsrGraph) {
    let xs: Vec<String> = RANKS.iter().map(|p| p.to_string()).collect();
    let mut cols: Vec<(&str, Vec<String>)> = Vec::new();
    for variant in DmVariant::ALL {
        let col = RANKS
            .iter()
            .map(|&p| {
                let r = dm_pagerank(g, variant, p, 2, 0.85, CostModel::xc40());
                format!("{:.5}", r.modeled_seconds)
            })
            .collect();
        cols.push((variant.label(), col));
    }
    println!("-- PR, {name} (modeled s/iteration) --");
    print_series("P", &xs, &cols);
    println!();
}

fn tc_panel(name: &str, g: &CsrGraph) {
    let xs: Vec<String> = RANKS.iter().map(|p| p.to_string()).collect();
    let mut cols: Vec<(&str, Vec<String>)> = Vec::new();
    for variant in DmVariant::ALL {
        let col = RANKS
            .iter()
            .map(|&p| {
                let r = dm_triangle_count(g, variant, p, CostModel::xc40());
                format!("{:.5}", r.modeled_seconds)
            })
            .collect();
        cols.push((variant.label(), col));
    }
    println!("-- TC, {name} (modeled s total) --");
    print_series("P", &xs, &cols);
    println!();
}

/// Prints Figure 3's six panels.
pub fn run(ctx: Ctx) {
    header(
        "Figure 3: DM strong scaling (simulated ranks, modeled time)",
        "§6.3, Figure 3",
    );
    let orc = Dataset::Orc.generate(ctx.scale);
    let ljn = Dataset::Ljn.generate(ctx.scale);
    pr_panel("orc", &orc);
    pr_panel("ljn", &ljn);
    // The rmat panels: two sizes one doubling apart (stand-ins for the
    // paper's n = 2^25 / 2^27 pair, scaled down).
    let (s1, s2) = match ctx.scale {
        Scale::Test => (10, 12),
        Scale::Small => (13, 15),
        Scale::Medium => (16, 18),
    };
    pr_panel(&format!("rmat 2^{s1}"), &gen::rmat(s1, 8, 0x333));
    pr_panel(&format!("rmat 2^{s2}"), &gen::rmat(s2, 8, 0x334));
    // TC panels use the test scale (quadratic kernel, simulated serially).
    let orc_t = Dataset::Orc.generate(Scale::Test);
    let ljn_t = Dataset::Ljn.generate(Scale::Test);
    tc_panel("orc", &orc_t);
    tc_panel("ljn", &ljn_t);

    // Bonus panel (§7.2): distributed BFS — traversals get their best
    // performance from push–pull switching.
    let xs: Vec<String> = RANKS.iter().map(|p| p.to_string()).collect();
    let mut cols: Vec<(&str, Vec<String>)> = Vec::new();
    for variant in DmBfsVariant::ALL {
        let col = RANKS
            .iter()
            .map(|&p| {
                let r = dm_bfs(&ljn, 0, variant, p, CostModel::xc40());
                format!("{:.5}", r.modeled_seconds)
            })
            .collect();
        cols.push((variant.label(), col));
    }
    println!("-- BFS, ljn (modeled s total; §7.2 switching) --");
    print_series("P", &xs, &cols);
}
