//! One module per table/figure of the paper's evaluation (§6). Each
//! exposes `run(ctx)` printing the same rows/series the paper reports;
//! the `tables` binary dispatches to them.

pub mod engine;
pub mod ext;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod pram_table;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod weak;

use pp_graph::datasets::Scale;

/// Shared experiment context.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    /// Dataset scale for every stand-in graph.
    pub scale: Scale,
    /// Worker threads (the paper's `T`).
    pub threads: usize,
    /// Timing samples per measurement (median reported).
    pub samples: usize,
    /// Where to dump the sweep as machine-readable JSON (experiments that
    /// support it, currently `engine`) in addition to the printed tables.
    /// `&'static` keeps `Ctx` `Copy`; the `tables` binary leaks its one
    /// CLI argument to produce it.
    pub json: Option<&'static str>,
}

impl Default for Ctx {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: 8,
            samples: 3,
            json: None,
        }
    }
}

/// Minimal JSON string escaping for the hand-rolled dumps (no serde in the
/// offline build environment). Delegates to the serve crate's writer so
/// the dumps and the query protocol escape identically.
pub fn json_escape(s: &str) -> String {
    crate::json::escape(s)
}

/// Parses a `--scale` value.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        _ => None,
    }
}

/// Prints a section header in the harness's uniform style.
pub fn header(title: &str, source: &str) {
    println!();
    println!("=== {title} ===");
    println!("    (paper reference: {source})");
    println!();
}

/// Prints an x/series table: one row per x value, one column per series.
pub fn print_series(x_label: &str, xs: &[String], series: &[(&str, Vec<String>)]) {
    print!("{x_label:>12}");
    for (name, _) in series {
        print!(" {name:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, col) in series {
            print!(" {:>14}", col.get(i).map(String::as_str).unwrap_or("-"));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("test"), Some(Scale::Test));
        assert_eq!(parse_scale("small"), Some(Scale::Small));
        assert_eq!(parse_scale("medium"), Some(Scale::Medium));
        assert_eq!(parse_scale("huge"), None);
    }

    #[test]
    fn default_ctx_is_sane() {
        let c = Ctx::default();
        assert!(c.threads >= 1);
        assert!(c.samples >= 1);
        assert!(c.json.is_none());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
