//! Table 4: PageRank per-iteration time on two "machines" — reproduced as
//! two thread-pool sizes on the host (a commodity-class pool vs. a
//! server-class pool), with Push / Pull / Push+PA rows.

use pp_core::{pagerank, Direction};
use pp_graph::datasets::Dataset;
use pp_graph::{BlockPartition, PartitionAwareGraph};

use crate::{median_time, with_threads};

use super::{header, print_series, Ctx};

/// Prints one machine block per thread count.
pub fn run(ctx: Ctx) {
    header(
        "Table 4: PR time/iteration [ms] across machines (thread pools)",
        "§6.4, Table 4 — Trivium (T=8) vs Daint XC40 (T=24), modeled as pools",
    );
    let iters = 5usize;
    let opts = pagerank::PrOptions {
        iters,
        damping: 0.85,
    };
    let machines = [
        ("commodity-pool", (ctx.threads / 2).max(1)),
        ("server-pool", ctx.threads),
    ];
    for (name, threads) in machines {
        with_threads(threads, || {
            let xs: Vec<String> = Dataset::ALL.iter().map(|d| d.id().to_string()).collect();
            let mut push = Vec::new();
            let mut pull = Vec::new();
            let mut push_pa = Vec::new();
            for ds in Dataset::ALL {
                let g = ds.generate(ctx.scale);
                let pa =
                    PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), threads));
                let ms =
                    |t: std::time::Duration| format!("{:.3}", t.as_secs_f64() * 1e3 / iters as f64);
                push.push(ms(median_time(ctx.samples, || {
                    pagerank::pagerank(&g, Direction::Push, &opts)
                })));
                pull.push(ms(median_time(ctx.samples, || {
                    pagerank::pagerank(&g, Direction::Pull, &opts)
                })));
                push_pa.push(ms(median_time(ctx.samples, || {
                    pagerank::pagerank_push_pa(
                        &g,
                        &pa,
                        &opts,
                        pagerank::PushSync::Locks,
                        &pp_telemetry::NullProbe,
                    )
                })));
            }
            println!("-- {name} (T = {threads}) --");
            print_series(
                "graph",
                &xs,
                &[("Push", push), ("Pull", pull), ("Push+PA", push_pa)],
            );
            println!();
        });
    }
}
