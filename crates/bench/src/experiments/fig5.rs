//! Figure 5: betweenness centrality scalability — first-BFS, second-BFS,
//! and total runtime vs. thread count, push vs. pull, on the orc stand-in.

use pp_core::{bc, Direction};
use pp_graph::datasets::{Dataset, Scale};

use crate::with_threads;

use super::{header, print_series, Ctx};

/// Prints the three scalability panels.
pub fn run(ctx: Ctx) {
    header(
        "Figure 5: BC scalability (orc)",
        "§6.1, Figure 5 — first BFS / second BFS / total vs threads",
    );
    // BC runs one forward+backward pass per source: sample sources so the
    // sweep stays interactive while the per-phase ratios are preserved.
    let g = Dataset::Orc.generate(match ctx.scale {
        Scale::Medium => Scale::Small,
        s => s,
    });
    let opts = bc::BcOptions {
        max_sources: Some(24),
    };
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= ctx.threads.max(1) * 2)
        .collect();
    let xs: Vec<String> = threads.iter().map(|t| t.to_string()).collect();

    let mut cols: Vec<(&str, Vec<String>)> = vec![
        ("Push fwd [s]", Vec::new()),
        ("Pull fwd [s]", Vec::new()),
        ("Push bwd [s]", Vec::new()),
        ("Pull bwd [s]", Vec::new()),
        ("Push tot [s]", Vec::new()),
        ("Pull tot [s]", Vec::new()),
    ];
    for &t in &threads {
        let (push, pull) = with_threads(t, || {
            (
                bc::betweenness(&g, Direction::Push, &opts),
                bc::betweenness(&g, Direction::Pull, &opts),
            )
        });
        let s = |d: std::time::Duration| format!("{:.4}", d.as_secs_f64());
        cols[0].1.push(s(push.forward_time));
        cols[1].1.push(s(pull.forward_time));
        cols[2].1.push(s(push.backward_time));
        cols[3].1.push(s(pull.backward_time));
        cols[4].1.push(s(push.forward_time + push.backward_time));
        cols[5].1.push(s(pull.forward_time + pull.backward_time));
    }
    print_series("threads", &xs, &cols);
    println!();
    println!("(24 sampled sources; the paper amortizes over all sources)");
}
