//! The §4 analysis summary as a generated table: time/work bounds and the
//! conflict/atomic/lock profile of every algorithm in both directions,
//! evaluated on a concrete workload. This regenerates the in-text analysis
//! (§4.1–§4.7 and the §4.9 summary) the way the figures regenerate §6.

use pp_pram::{algos, Direction, PramModel, Workload};

use super::{header, Ctx};
use pp_graph::datasets::Dataset;
use pp_telemetry::report::human_count;

/// Prints the per-algorithm PRAM analysis for the ljn stand-in's parameters.
pub fn run(ctx: Ctx) {
    header(
        "PRAM analysis (§4): time/work and synchronization per variant",
        "§4.1–§4.7, §4.9 — evaluated on the ljn stand-in's parameters",
    );
    let g = Dataset::Ljn.generate(ctx.scale);
    let w = Workload::new(g.num_vertices(), g.num_edges())
        .with_d_max(g.max_degree() as f64)
        .with_diameter(pp_graph::stats::double_sweep_diameter(&g) as f64)
        .with_iters(20);
    let p = ctx.threads;
    println!(
        "workload: n = {}, m = {}, d̂ = {}, D = {}, L = 20, P = {p}\n",
        w.n as u64, w.m as u64, w.d_max as u64, w.diameter as u64
    );

    type AnalysisFn = Box<dyn Fn(PramModel, Direction) -> algos::Analysis>;
    let rows: Vec<(&str, AnalysisFn)> = vec![
        (
            "PageRank (§4.1)",
            Box::new(move |m, d| algos::pagerank(&w, p, m, d)),
        ),
        (
            "Triangle count (§4.2)",
            Box::new(move |m, d| algos::triangle_count(&w, p, m, d)),
        ),
        ("BFS (§4.3)", Box::new(move |m, d| algos::bfs(&w, p, m, d))),
        (
            "SSSP-Δ (§4.4)",
            Box::new(move |m, d| algos::sssp_delta(&w, p, m, d, 8.0, 3.0)),
        ),
        ("BC (§4.5)", Box::new(move |m, d| algos::bc(&w, p, m, d))),
        (
            "Coloring (§4.6)",
            Box::new(move |m, d| algos::coloring(&w, p, m, d)),
        ),
        (
            "Boruvka (§4.7)",
            Box::new(move |m, d| algos::boruvka(&w, p, m, d)),
        ),
    ];

    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "algorithm", "dir", "time", "work", "rd-confl", "wr-confl", "atomics", "locks"
    );
    for (name, f) in &rows {
        for dir in Direction::BOTH {
            let a = f(PramModel::CrcwCb, dir);
            println!(
                "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                match dir {
                    Direction::Push => "push",
                    Direction::Pull => "pull",
                },
                human_count(a.cost.time as u64),
                human_count(a.cost.work as u64),
                human_count(a.profile.read_conflicts as u64),
                human_count(a.profile.write_conflicts as u64),
                human_count(a.profile.atomics as u64),
                human_count(a.profile.locks as u64),
            );
        }
    }
    println!();
    println!("CREW slowdown of pushing (work ratio vs CRCW-CB):");
    for (name, f) in &rows {
        let crcw = f(PramModel::CrcwCb, Direction::Push);
        let crew = f(PramModel::Crew, Direction::Push);
        println!(
            "  {:<22} ×{:.2}  (log2 d̂ = {:.2})",
            name,
            crew.cost.work / crcw.cost.work,
            w.d_max.log2()
        );
    }
}
