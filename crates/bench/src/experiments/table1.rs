//! Table 1: PAPI-style event counts for PR, TC, BGC, and SSSP-Δ in push /
//! push+PA / pull variants, gathered with the cache-simulating probe.
//!
//! PR and BGC rows are averages per iteration; TC and SSSP rows are totals,
//! matching the paper's caption.

use pp_core::{coloring, pagerank, sssp, triangles, Direction};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::{BlockPartition, PartitionAwareGraph};
use pp_telemetry::{CacheSimProbe, EventCounts, EventReport};

use crate::with_threads;

use super::{header, Ctx};

fn scaled(c: EventCounts, div: u64) -> EventCounts {
    EventCounts {
        reads: c.reads / div,
        writes: c.writes / div,
        atomics: c.atomics / div,
        locks: c.locks / div,
        branches_cond: c.branches_cond / div,
        branches_uncond: c.branches_uncond / div,
        barriers: c.barriers / div,
        remote_sends: c.remote_sends / div,
        l1_misses: c.l1_misses / div,
        l2_misses: c.l2_misses / div,
        l3_misses: c.l3_misses / div,
        dtlb_misses: c.dtlb_misses / div,
    }
}

/// Prints the four event blocks of Table 1.
pub fn run(ctx: Ctx) {
    header(
        "Table 1: PAPI-style events (software probe + cache simulator)",
        "§6.1, Table 1 — PR/BGC per iteration, TC/SSSP totals",
    );
    // Table 1 columns use the sparser scale for the heavy quadratic kernels.
    let tc_scale = match ctx.scale {
        Scale::Test => Scale::Test,
        _ => Scale::Test,
    };

    with_threads(ctx.threads, || {
        // --- PageRank: orc (dense) and rca (sparse), Push/Push+PA/Pull. ---
        for ds in [Dataset::Orc, Dataset::Rca] {
            let g = ds.generate(ctx.scale);
            let iters = 3usize;
            let opts = pagerank::PrOptions {
                iters,
                damping: 0.85,
            };
            let mut report = EventReport::new();

            let probe = CacheSimProbe::new();
            pagerank::pagerank_push(&g, &opts, pagerank::PushSync::Cas, &probe);
            report.add_column("Push", scaled(probe.counts(), iters as u64));

            let pa =
                PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), ctx.threads));
            let probe = CacheSimProbe::new();
            pagerank::pagerank_push_pa(&g, &pa, &opts, pagerank::PushSync::Cas, &probe);
            report.add_column("Push+PA", scaled(probe.counts(), iters as u64));

            let probe = CacheSimProbe::new();
            pagerank::pagerank_pull(&g, &opts, &probe);
            report.add_column("Pull", scaled(probe.counts(), iters as u64));

            println!("-- {} (PR, per iteration) --", ds.id());
            println!("{report}");
        }

        // --- Triangle counting: ljn and rca, totals. ---
        for ds in [Dataset::Ljn, Dataset::Rca] {
            let g = ds.generate(tc_scale);
            let mut report = EventReport::new();
            for dir in Direction::BOTH {
                let probe = CacheSimProbe::new();
                triangles::triangle_counts_probed(&g, dir, &probe);
                report.add_column(dir.label(), probe.counts());
            }
            println!("-- {} (TC, total) --", ds.id());
            println!("{report}");
        }

        // --- Boman coloring: orc and rca, per iteration. ---
        for ds in [Dataset::Orc, Dataset::Rca] {
            let g = ds.generate(ctx.scale);
            let mut report = EventReport::new();
            for dir in Direction::BOTH {
                let probe = CacheSimProbe::new();
                let r = coloring::boman_probed(
                    &g,
                    ctx.threads,
                    dir,
                    &coloring::GcOptions::default(),
                    &probe,
                );
                report.add_column(dir.label(), scaled(probe.counts(), r.iterations as u64));
            }
            println!("-- {} (BGC, per iteration) --", ds.id());
            println!("{report}");
        }

        // --- SSSP-Δ: pok and rca, totals. ---
        for ds in [Dataset::Pok, Dataset::Rca] {
            let g = ds.generate_weighted(ctx.scale, 1, 100);
            let mut report = EventReport::new();
            for dir in Direction::BOTH {
                let probe = CacheSimProbe::new();
                sssp::sssp_delta_probed(&g, 0, dir, &sssp::SsspOptions { delta: 64 }, &probe);
                report.add_column(dir.label(), probe.counts());
            }
            println!("-- {} (SSSP-Δ, total) --", ds.id());
            println!("{report}");
        }
    });
    println!("note: instruction-TLB misses are not modeled (no software analogue; negligible in the paper's data).");
}
