//! Figure 2: SSSP-Δ shared-memory analysis — per-epoch time push vs. pull
//! on orc and am, and the total-time-vs-Δ sweep on orc.

use pp_core::{sssp, Direction};
use pp_graph::datasets::Dataset;

use crate::{time_once, with_threads};

use super::{header, print_series, Ctx};

/// Prints Figure 2's three panels.
pub fn run(ctx: Ctx) {
    header(
        "Figure 2: SSSP-Δ — per-epoch times and the Δ sweep",
        "§6.1, Figure 2",
    );
    with_threads(ctx.threads, || {
        let opts = sssp::SsspOptions { delta: 64 };
        // Panels (a), (b): per-epoch times.
        for ds in [Dataset::Orc, Dataset::Am] {
            let g = ds.generate_weighted(ctx.scale, 1, 100);
            let push = sssp::sssp_delta(&g, 0, Direction::Push, &opts);
            let pull = sssp::sssp_delta(&g, 0, Direction::Pull, &opts);
            let rounds = push.epochs.len().max(pull.epochs.len());
            let xs: Vec<String> = (0..rounds).map(|i| (i + 1).to_string()).collect();
            let fmt = |r: &sssp::SsspResult| -> Vec<String> {
                r.epochs
                    .iter()
                    .map(|e| format!("{:.6}", e.time.as_secs_f64()))
                    .collect()
            };
            println!("-- {} (Δ = {}) --", ds.id(), opts.delta);
            print_series(
                "epoch",
                &xs,
                &[("Pushing [s]", fmt(&push)), ("Pulling [s]", fmt(&pull))],
            );
            println!();
        }

        // Panel (c): total time vs Δ on orc.
        let g = Dataset::Orc.generate_weighted(ctx.scale, 1, 100);
        let deltas = [4u64, 16, 64, 256, 1 << 12, 1 << 16, 1 << 20];
        let xs: Vec<String> = deltas.iter().map(|d| d.to_string()).collect();
        let mut push_col = Vec::new();
        let mut pull_col = Vec::new();
        for &delta in &deltas {
            let o = sssp::SsspOptions { delta };
            let (t, _) = time_once(|| sssp::sssp_delta(&g, 0, Direction::Push, &o));
            push_col.push(format!("{:.4}", t.as_secs_f64()));
            let (t, _) = time_once(|| sssp::sssp_delta(&g, 0, Direction::Pull, &o));
            pull_col.push(format!("{:.4}", t.as_secs_f64()));
        }
        println!("-- orc: total time vs Δ --");
        print_series(
            "Delta",
            &xs,
            &[("Pushing [s]", push_col), ("Pulling [s]", pull_col)],
        );
    });
}
