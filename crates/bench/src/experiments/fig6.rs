//! Figure 6 (the two §6.2 tables): (a) PageRank push vs. push+PA time per
//! iteration; (b) BGC iterations to finish under Push / +FE / +GS / +GrS.

use pp_core::{coloring, pagerank, Direction};
use pp_graph::datasets::Dataset;
use pp_graph::{BlockPartition, PartitionAwareGraph};
use pp_telemetry::NullProbe;

use crate::{median_time, with_threads};

use super::{header, print_series, Ctx};

/// Prints panel (a): PR Push vs Push+PA.
pub fn run_a(ctx: Ctx) {
    header(
        "Figure 6a: PR time/iteration [ms] — Push vs Push+PA",
        "§6.2, Figure 6 left table",
    );
    with_threads(ctx.threads, || {
        let iters = 5usize;
        let opts = pagerank::PrOptions {
            iters,
            damping: 0.85,
        };
        let xs: Vec<String> = Dataset::ALL.iter().map(|d| d.id().to_string()).collect();
        let mut push = Vec::new();
        let mut pa_col = Vec::new();
        for ds in Dataset::ALL {
            let g = ds.generate(ctx.scale);
            let pa =
                PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), ctx.threads));
            let ms =
                |t: std::time::Duration| format!("{:.3}", t.as_secs_f64() * 1e3 / iters as f64);
            push.push(ms(median_time(ctx.samples, || {
                pagerank::pagerank(&g, Direction::Push, &opts)
            })));
            pa_col.push(ms(median_time(ctx.samples, || {
                pagerank::pagerank_push_pa(&g, &pa, &opts, pagerank::PushSync::Cas, &NullProbe)
            })));
        }
        print_series("graph", &xs, &[("Push", push), ("+PA", pa_col)]);
    });
}

/// Prints panel (b): BGC iteration counts per strategy.
pub fn run_b(ctx: Ctx) {
    header(
        "Figure 6b: BGC iterations to finish — Push / +FE / +GS / +GrS",
        "§6.2, Figure 6 right table",
    );
    with_threads(ctx.threads, || {
        let opts = coloring::GcOptions::default();
        let xs: Vec<String> = Dataset::ALL.iter().map(|d| d.id().to_string()).collect();
        let mut push = Vec::new();
        let mut fe = Vec::new();
        let mut gs = Vec::new();
        let mut grs = Vec::new();
        for ds in Dataset::ALL {
            let g = ds.generate(ctx.scale);
            push.push(
                coloring::boman(&g, ctx.threads, Direction::Push, &opts)
                    .iterations
                    .to_string(),
            );
            fe.push(
                coloring::frontier_exploit(&g, Direction::Push, &opts)
                    .iterations
                    .to_string(),
            );
            gs.push(
                coloring::generic_switch(&g, 0.2, &opts)
                    .iterations
                    .to_string(),
            );
            grs.push(
                coloring::greedy_switch(&g, 0.1, &opts)
                    .iterations
                    .to_string(),
            );
        }
        print_series(
            "graph",
            &xs,
            &[("Push", push), ("+FE", fe), ("+GS", gs), ("+GrS", grs)],
        );
    });
}

/// Prints both panels.
pub fn run(ctx: Ctx) {
    run_a(ctx);
    run_b(ctx);
}
