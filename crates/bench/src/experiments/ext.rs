//! Technical-report extensions: the push/pull dichotomy beyond the paper's
//! seven headline algorithms, the §6.5 SM/DM SSSP inversion, and the
//! locality/prefetcher ablation behind the §6 cache-miss explanations.

use pp_core::{
    bellman_ford::bellman_ford, components::connected_components, kcore::kcore, kruskal::kruskal,
    labelprop::label_propagation, pagerank, sssp, Direction,
};
use pp_dm::{dm_sssp, CostModel};
use pp_graph::datasets::Dataset;
use pp_graph::{gen, reorder};
use pp_telemetry::cachesim::CacheHierarchy;
use pp_telemetry::{CacheSimProbe, CountingProbe};

use crate::{median_time, with_threads};

use super::{header, print_series, Ctx};

/// Runs all three extension panels.
pub fn run(ctx: Ctx) {
    run_algorithms(ctx);
    run_sm_dm_inversion(ctx);
    run_locality(ctx);
}

/// Panel 1: push vs pull time and synchronization profile for the
/// tech-report algorithms (connected components, k-core, label propagation,
/// Bellman–Ford, Kruskal) on a dense and a sparse stand-in.
pub fn run_algorithms(ctx: Ctx) {
    header(
        "Ext 1: tech-report algorithms, push vs pull",
        "§3.7/§3.8 (Prim/Kruskal in the report; iterative schemes generalized)",
    );
    with_threads(ctx.threads, || {
        for ds in [Dataset::Orc, Dataset::Rca] {
            let g = ds.generate(ctx.scale);
            let wg = gen::with_random_weights(&g, 1, 100, 7);
            let xs: Vec<String> = [
                "components",
                "k-core",
                "label-prop",
                "bellman-ford",
                "kruskal",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();

            let mut push_ms = Vec::new();
            let mut pull_ms = Vec::new();
            let mut push_sync = Vec::new();
            let mut pull_sync = Vec::new();
            for dir in Direction::BOTH {
                let runs: Vec<(std::time::Duration, u64, u64)> = vec![
                    {
                        let t = median_time(ctx.samples, || connected_components(&g, dir));
                        let p = CountingProbe::new();
                        pp_core::components::connected_components_probed(&g, dir, &p);
                        (t, p.counts().atomics, p.counts().locks)
                    },
                    {
                        let t = median_time(ctx.samples, || kcore(&g, dir));
                        let p = CountingProbe::new();
                        pp_core::kcore::kcore_probed(&g, dir, &p);
                        (t, p.counts().atomics, p.counts().locks)
                    },
                    {
                        let t = median_time(ctx.samples, || label_propagation(&g, dir, 10));
                        let p = CountingProbe::new();
                        pp_core::labelprop::label_propagation_probed(&g, dir, 10, &p);
                        (t, p.counts().atomics, p.counts().locks)
                    },
                    {
                        let t = median_time(ctx.samples, || bellman_ford(&wg, 0, dir));
                        let p = CountingProbe::new();
                        pp_core::bellman_ford::bellman_ford_probed(&wg, 0, dir, &p);
                        (t, p.counts().atomics, p.counts().locks)
                    },
                    {
                        let t = median_time(ctx.samples, || kruskal(&wg, dir));
                        let p = CountingProbe::new();
                        pp_core::kruskal::kruskal_probed(&wg, dir, &p);
                        (t, p.counts().atomics, p.counts().locks)
                    },
                ];
                for (t, atomics, locks) in runs {
                    let col_ms = format!("{:.3}", t.as_secs_f64() * 1e3);
                    let col_sync = format!("{atomics}a/{locks}l");
                    match dir {
                        Direction::Push => {
                            push_ms.push(col_ms);
                            push_sync.push(col_sync);
                        }
                        Direction::Pull => {
                            pull_ms.push(col_ms);
                            pull_sync.push(col_sync);
                        }
                    }
                }
            }
            println!(
                "{} ({} vertices, {} edges):",
                ds.id(),
                g.num_vertices(),
                g.num_edges()
            );
            print_series(
                "algorithm",
                &xs,
                &[
                    ("Push [ms]", push_ms),
                    ("Pull [ms]", pull_ms),
                    ("Push sync", push_sync),
                    ("Pull sync", pull_sync),
                ],
            );
            println!();
        }
    });
}

/// Panel 2: the §6.5 inversion — Δ-stepping pushes fastest on shared
/// memory, pulls fastest across a network ("intra-node atomics are less
/// costly than messages").
pub fn run_sm_dm_inversion(ctx: Ctx) {
    header(
        "Ext 2: SSSP-Δ shared-memory vs distributed-memory inversion",
        "§6.5 \"SSSP-Δ on SM systems is surprisingly different from the DM variant\"",
    );
    with_threads(ctx.threads, || {
        let g = gen::with_random_weights(&Dataset::Pok.generate(ctx.scale), 1, 100, 3);
        let delta = 200u64;
        let opts = sssp::SsspOptions { delta };

        let sm_push = median_time(ctx.samples, || {
            sssp::sssp_delta(&g, 0, Direction::Push, &opts)
        });
        let sm_pull = median_time(ctx.samples, || {
            sssp::sssp_delta(&g, 0, Direction::Pull, &opts)
        });
        let dm_push = dm_sssp(&g, 0, delta, true, 64, CostModel::xc40());
        let dm_pull = dm_sssp(&g, 0, delta, false, 64, CostModel::xc40());

        print_series(
            "setting",
            &["SM (measured ms)".into(), "DM (modeled s, P=64)".into()],
            &[
                (
                    "Pushing",
                    vec![
                        format!("{:.3}", sm_push.as_secs_f64() * 1e3),
                        format!("{:.3}", dm_push.modeled_seconds),
                    ],
                ),
                (
                    "Pulling",
                    vec![
                        format!("{:.3}", sm_pull.as_secs_f64() * 1e3),
                        format!("{:.3}", dm_pull.modeled_seconds),
                    ],
                ),
            ],
        );
        println!();
        println!(
            "DM push sends {} messages; DM pull issues {} bulk gets.",
            dm_push.stats.messages, dm_pull.stats.remote_gets
        );
    });
}

/// Panel 3: vertex order and the stream prefetcher — the two memory-system
/// effects §6 uses to explain push/pull deltas, isolated on instrumented
/// pull-PageRank.
pub fn run_locality(ctx: Ctx) {
    header(
        "Ext 3: cache ablation — vertex order x prefetcher (pull PageRank)",
        "§6.5 \"use cache prefetchers less effectively\"; Table 1 miss columns",
    );
    // A shuffled road graph is the locality worst case; BFS reordering
    // restores it. One PR iteration, instrumented addresses.
    let base = Dataset::Rca.generate(ctx.scale);
    let shuffled = {
        let ids: Vec<u32> = {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
            let mut v: Vec<u32> = (0..base.num_vertices() as u32).collect();
            v.shuffle(&mut rng);
            v
        };
        reorder::apply_permutation(&base, &reorder::Permutation::new(ids))
    };
    let ordered = reorder::apply_permutation(&shuffled, &reorder::bfs_order(&shuffled, 0));
    let opts = pagerank::PrOptions {
        iters: 1,
        damping: 0.85,
    };

    let xs: Vec<String> = vec!["shuffled".into(), "bfs-ordered".into()];
    let mut cols: Vec<(&str, Vec<String>)> = vec![
        ("L1 miss", Vec::new()),
        ("L3 miss", Vec::new()),
        ("dTLB miss", Vec::new()),
        ("L1 miss+pf", Vec::new()),
        ("prefetches", Vec::new()),
    ];
    for g in [&shuffled, &ordered] {
        let plain = CacheSimProbe::with_hierarchy(CacheHierarchy::xc30());
        pagerank::pagerank_pull(g, &opts, &plain);
        let c = plain.counts();
        let pf_probe = CacheSimProbe::with_hierarchy(CacheHierarchy::xc30().with_prefetcher());
        pagerank::pagerank_pull(g, &opts, &pf_probe);
        let cp = pf_probe.counts();

        cols[0].1.push(c.l1_misses.to_string());
        cols[1].1.push(c.l3_misses.to_string());
        cols[2].1.push(c.dtlb_misses.to_string());
        cols[3].1.push(cp.l1_misses.to_string());
        cols[4].1.push(pf_probe.prefetches_issued().to_string());
    }
    let series: Vec<(&str, Vec<String>)> = cols;
    print_series("layout", &xs, &series);
    println!();
    println!("(\"+pf\" columns run the same trace with the stream prefetcher attached)");
}
