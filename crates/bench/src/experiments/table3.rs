//! Table 3: PageRank time per iteration \[ms\] and Triangle Counting total
//! time \[s\], push vs. pull, across all five datasets.

use pp_core::{pagerank, triangles, Direction};
use pp_graph::datasets::{Dataset, Scale};

use crate::{median_time, with_threads};

use super::{header, print_series, Ctx};

/// Prints Table 3's two blocks.
pub fn run(ctx: Ctx) {
    header(
        "Table 3: PR time/iteration [ms] and TC total time [s]",
        "§6.1, Table 3",
    );
    with_threads(ctx.threads, || {
        let iters = 5usize;
        let opts = pagerank::PrOptions {
            iters,
            damping: 0.85,
        };
        let xs: Vec<String> = Dataset::ALL.iter().map(|d| d.id().to_string()).collect();

        let mut push_col = Vec::new();
        let mut pull_col = Vec::new();
        for ds in Dataset::ALL {
            let g = ds.generate(ctx.scale);
            let t_push = median_time(ctx.samples, || {
                pagerank::pagerank(&g, Direction::Push, &opts)
            });
            let t_pull = median_time(ctx.samples, || {
                pagerank::pagerank(&g, Direction::Pull, &opts)
            });
            push_col.push(format!("{:.3}", t_push.as_secs_f64() * 1e3 / iters as f64));
            pull_col.push(format!("{:.3}", t_pull.as_secs_f64() * 1e3 / iters as f64));
        }
        println!("PageRank [ms/iteration]:");
        print_series(
            "graph",
            &xs,
            &[("Pushing", push_col), ("Pulling", pull_col)],
        );

        // TC is O(m·d̂): stick to the test scale for the dense graphs so the
        // harness stays interactive.
        let tc_scale = Scale::Test;
        let mut push_col = Vec::new();
        let mut pull_col = Vec::new();
        for ds in Dataset::ALL {
            let g = ds.generate(tc_scale);
            let t_push = median_time(ctx.samples, || {
                triangles::triangle_counts(&g, Direction::Push)
            });
            let t_pull = median_time(ctx.samples, || {
                triangles::triangle_counts(&g, Direction::Pull)
            });
            push_col.push(format!("{:.4}", t_push.as_secs_f64()));
            pull_col.push(format!("{:.4}", t_pull.as_secs_f64()));
        }
        println!();
        println!("Triangle Counting [s total] (test scale):");
        print_series(
            "graph",
            &xs,
            &[("Pushing", push_col), ("Pulling", pull_col)],
        );
    });
}
