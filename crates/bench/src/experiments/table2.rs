//! Table 2: the analyzed graphs and their structural statistics.

use pp_graph::datasets::Dataset;
use pp_graph::stats;

use super::{header, Ctx};

/// Prints the dataset table (n, m, d̄, D as in Table 2).
pub fn run(ctx: Ctx) {
    header("Table 2: analyzed graphs", "§6, Table 2");
    println!(
        "{:>6} {:>42} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "ID", "type", "n", "m", "d̄", "d̂", "D≥"
    );
    for d in Dataset::ALL {
        let g = d.generate(ctx.scale);
        let s = stats::stats(&g);
        println!(
            "{:>6} {:>42} {:>10} {:>12} {:>8.2} {:>8} {:>8}",
            d.id(),
            d.description(),
            s.n,
            s.m,
            s.avg_degree,
            s.max_degree,
            s.diameter_lb,
        );
    }
}
