//! Figure 4: Boruvka MST phase times per round — "Find Minimum",
//! "Build Merge Tree", "Merge" — push vs. pull on the orc stand-in.

use pp_core::{mst, Direction};
use pp_graph::datasets::Dataset;

use crate::with_threads;

use super::{header, print_series, Ctx};

/// Prints the three phase-time panels.
pub fn run(ctx: Ctx) {
    header(
        "Figure 4: MST phase times per round (orc)",
        "§6.1, Figure 4",
    );
    with_threads(ctx.threads, || {
        let g = Dataset::Orc.generate_weighted(ctx.scale, 1, 1_000_000);
        let push = mst::boruvka(&g, Direction::Push);
        let pull = mst::boruvka(&g, Direction::Pull);
        assert_eq!(
            push.total_weight, pull.total_weight,
            "directions must agree on the MST weight"
        );
        let rounds = push.rounds.len().max(pull.rounds.len());
        let xs: Vec<String> = (0..rounds).map(|i| i.to_string()).collect();
        let phase =
            |r: &mst::MstResult, f: fn(&mst::MstRoundInfo) -> std::time::Duration| -> Vec<String> {
                r.rounds
                    .iter()
                    .map(|ri| format!("{:.6}", f(ri).as_secs_f64()))
                    .collect()
            };
        println!("-- Find Minimum [s] --");
        print_series(
            "round",
            &xs,
            &[
                ("Pushing", phase(&push, |r| r.find_min)),
                ("Pulling", phase(&pull, |r| r.find_min)),
            ],
        );
        println!();
        println!("-- Build Merge Tree [s] --");
        print_series(
            "round",
            &xs,
            &[
                ("Pushing", phase(&push, |r| r.build_merge_tree)),
                ("Pulling", phase(&pull, |r| r.build_merge_tree)),
            ],
        );
        println!();
        println!("-- Merge [s] --");
        print_series(
            "round",
            &xs,
            &[
                ("Pushing", phase(&push, |r| r.merge)),
                ("Pulling", phase(&pull, |r| r.merge)),
            ],
        );
        println!();
        println!(
            "MST weight: {} ({} edges, {} rounds)",
            push.total_weight,
            push.edges.len(),
            push.rounds.len()
        );
    });
}
