//! Weak scaling (§6 lists "strong- and weak-scaling" among the measured
//! configurations): the per-rank problem size is held constant while ranks
//! grow — R-MAT scale rises with `log2 P`, so each rank always owns the same
//! number of vertices. Ideal weak scaling keeps the modeled time flat;
//! communication growth (the cut) bends it upward.

use pp_dm::{dm_pagerank, CostModel, DmVariant};
use pp_graph::datasets::Scale;
use pp_graph::gen;

use super::{header, print_series, Ctx};

/// Prints the weak-scaling panel for PageRank, all three DM variants.
pub fn run(ctx: Ctx) {
    header(
        "Weak scaling: PR, R-MAT with n/P held constant",
        "§6 (weak-scaling configuration); modeled s/iteration",
    );
    let base_scale = match ctx.scale {
        Scale::Test => 8,
        Scale::Small => 10,
        Scale::Medium => 12,
    };
    let steps: Vec<(usize, u32)> = (0..6)
        .map(|i| (1usize << i, base_scale + i as u32))
        .collect();
    let xs: Vec<String> = steps.iter().map(|(p, s)| format!("{p}/2^{s}")).collect();
    let mut cols: Vec<(&str, Vec<String>)> = Vec::new();
    for variant in DmVariant::ALL {
        let col = steps
            .iter()
            .map(|&(p, scale)| {
                let g = gen::rmat(scale, 8, 0x7777 + scale as u64);
                let r = dm_pagerank(&g, variant, p, 1, 0.85, CostModel::xc40());
                format!("{:.5}", r.modeled_seconds)
            })
            .collect();
        cols.push((variant.label(), col));
    }
    print_series("P / n", &xs, &cols);
    println!();
    println!("(flat = ideal weak scaling; the rise tracks cut growth)");
}
