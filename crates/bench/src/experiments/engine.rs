//! Engine scaling: the `pp-engine` frontier runtime vs. thread count, per
//! direction policy, execution mode, and dataset stand-in. Not a paper
//! figure — this is the scaling trajectory of the workspace's own parallel
//! engine across all ten `Program` algorithms (BFS, PageRank, SSSP-Δ, CC,
//! k-core, label-prop, coloring, triangle counting, Boruvka MST, Brandes
//! BC), captured so future benchmark snapshots can track it. With
//! `--json <path>` the sweep is additionally dumped as machine-readable
//! JSON (one record per measurement).

use pp_core::{bc::BcOptions, pagerank::PrOptions, sssp::SsspOptions, Direction};
use pp_engine::algo::{
    bc::BcProgram, bfs::BfsProgram, coloring::ColoringProgram, components::CcProgram,
    kcore::KCoreProgram, labelprop::LabelPropProgram, mst::MstProgram, pagerank::PageRankProgram,
    sssp::SsspProgram, triangles::TcProgram,
};
use pp_engine::{DirectionPolicy, Engine, ExecutionMode, ProbeShards, Runner};
use pp_graph::datasets::Dataset;
use pp_graph::gen;
use pp_telemetry::NullProbe;

use crate::{fmt_ms, median_time};

use super::{header, json_escape, print_series, Ctx};

/// Iteration cap for the label-propagation rows.
const LP_ITERS: usize = 20;

/// Source cap for the betweenness rows (exact BC is O(n·m) per source).
const BC_SOURCES: usize = 8;

/// One JSON record of the sweep.
struct JsonRow {
    dataset: &'static str,
    mode: &'static str,
    algo: String,
    threads: usize,
    millis: f64,
}

/// Prints one scaling table per dataset × execution mode: engine
/// BFS/PR/SSSP/CC/k-core/LP/coloring time vs. threads, per policy.
pub fn run(ctx: Ctx) {
    header(
        "Engine scaling: frontier runtime vs threads x execution mode",
        "pp-engine (this workspace); policy per §5 Generic-Switch, mode per §5 PA",
    );
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= ctx.threads.max(1) * 2)
        .collect();
    let xs: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    let pr_opts = PrOptions {
        iters: 10,
        damping: 0.85,
    };
    let sssp_opts = SsspOptions::default();
    let mut json_rows: Vec<JsonRow> = Vec::new();

    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(ctx.scale);
        let gw = gen::with_random_weights(&g, 1, 64, 0x5ca1e);
        for (mode_name, mode) in ExecutionMode::sweep() {
            println!(
                "--- {} ({}) · mode={mode_name} ---",
                ds.id(),
                ds.description()
            );

            // Column layout follows DirectionPolicy::sweep(), so a new
            // policy variant grows the table instead of silently misfiling
            // timings.
            let sweep = DirectionPolicy::sweep();
            let mut cols: Vec<(String, Vec<String>)> = Vec::new();
            for (name, _) in sweep {
                cols.push((format!("BFS {name}"), Vec::new()));
            }
            for dir in Direction::BOTH {
                cols.push((format!("PR {}", dir.label().to_lowercase()), Vec::new()));
            }
            cols.push(("SSSP adaptive".to_string(), Vec::new()));
            for (name, _) in sweep {
                cols.push((format!("CC {name}"), Vec::new()));
            }
            cols.push(("k-core adaptive".to_string(), Vec::new()));
            cols.push(("LP adaptive".to_string(), Vec::new()));
            cols.push(("BGC adaptive".to_string(), Vec::new()));
            for dir in Direction::BOTH {
                cols.push((format!("TC {}", dir.label().to_lowercase()), Vec::new()));
            }
            cols.push(("MST adaptive".to_string(), Vec::new()));
            cols.push(("BC adaptive".to_string(), Vec::new()));
            for &t in &threads {
                let engine = Engine::new(t);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                let runner = |policy: DirectionPolicy| {
                    Runner::new(&engine, &probes).policy(policy).mode(mode)
                };
                let mut col = 0;
                let mut push_time = |cols: &mut Vec<(String, Vec<String>)>,
                                     rows: &mut Vec<JsonRow>,
                                     d: std::time::Duration| {
                    rows.push(JsonRow {
                        dataset: ds.id(),
                        mode: mode_name,
                        algo: cols[col].0.clone(),
                        threads: t,
                        millis: d.as_secs_f64() * 1e3,
                    });
                    cols[col].1.push(fmt_ms(d));
                    col += 1;
                };
                for (_, policy) in sweep {
                    let d = median_time(ctx.samples, || {
                        runner(policy).run(&g, BfsProgram::new(&g, 0))
                    });
                    push_time(&mut cols, &mut json_rows, d);
                }
                for dir in Direction::BOTH {
                    let d = median_time(ctx.samples, || {
                        runner(DirectionPolicy::Fixed(dir))
                            .run(&g, PageRankProgram::new(&g, &pr_opts))
                    });
                    push_time(&mut cols, &mut json_rows, d);
                }
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive())
                        .run(&gw, SsspProgram::new(&gw, 0, &sssp_opts))
                });
                push_time(&mut cols, &mut json_rows, d);
                for (_, policy) in sweep {
                    let d = median_time(ctx.samples, || runner(policy).run(&g, CcProgram::new(&g)));
                    push_time(&mut cols, &mut json_rows, d);
                }
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive()).run(&g, KCoreProgram::new(&g))
                });
                push_time(&mut cols, &mut json_rows, d);
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive()).run(&g, LabelPropProgram::new(&g, LP_ITERS))
                });
                push_time(&mut cols, &mut json_rows, d);
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive()).run(&g, ColoringProgram::new(&g))
                });
                push_time(&mut cols, &mut json_rows, d);
                for dir in Direction::BOTH {
                    let d = median_time(ctx.samples, || {
                        runner(DirectionPolicy::Fixed(dir)).run(&g, TcProgram::new(&g))
                    });
                    push_time(&mut cols, &mut json_rows, d);
                }
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive()).run(&gw, MstProgram::new(&gw))
                });
                push_time(&mut cols, &mut json_rows, d);
                let bc_opts = BcOptions {
                    max_sources: Some(BC_SOURCES),
                };
                let d = median_time(ctx.samples, || {
                    runner(DirectionPolicy::adaptive()).run(&g, BcProgram::new(&g, &bc_opts))
                });
                push_time(&mut cols, &mut json_rows, d);
            }
            let view: Vec<(&str, Vec<String>)> =
                cols.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            print_series("threads [ms]", &xs, &view);
            println!();
        }
    }
    println!("(engine pool: caller + workers; dynamic degree-aware chunking;");
    println!(" all ten algorithms share one Program/Runner round loop;");
    println!(" BC rows cap sources at {BC_SOURCES}; MST rounds cycle FM/BMT/M phases;");
    println!(" mode=pa replaces push atomics with the §5 owner-computes exchange —");
    println!(" its rows include the per-run split build, skipped when no round pushes)");

    if let Some(path) = ctx.json {
        match std::fs::write(path, render_json(ctx, &json_rows)) {
            Ok(()) => println!("wrote {} JSON records to {path}", json_rows.len()),
            Err(e) => eprintln!("failed to write --json {path}: {e}"),
        }
    }
}

/// Renders the sweep as a self-describing JSON document.
fn render_json(ctx: Ctx, rows: &[JsonRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"engine\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", ctx.scale));
    out.push_str(&format!("  \"samples\": {},\n", ctx.samples));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"algo\": \"{}\", \
             \"threads\": {}, \"ms\": {:.3}}}{}\n",
            json_escape(r.dataset),
            json_escape(r.mode),
            json_escape(&r.algo),
            r.threads,
            r.millis,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = vec![
            JsonRow {
                dataset: "orc",
                mode: "atomic",
                algo: "BFS push".to_string(),
                threads: 2,
                millis: 1.5,
            },
            JsonRow {
                dataset: "rca",
                mode: "pa",
                algo: "CC adaptive".to_string(),
                threads: 8,
                millis: 0.25,
            },
        ];
        let s = render_json(Ctx::default(), &rows);
        assert!(s.contains("\"experiment\": \"engine\""));
        assert!(s.contains("\"mode\": \"pa\""));
        assert!(s.contains("\"ms\": 1.500"));
        // Exactly one separating comma between the two records.
        assert_eq!(s.matches("},\n").count(), 1);
        assert!(s.trim_end().ends_with('}'));
    }
}
