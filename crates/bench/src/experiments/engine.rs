//! Engine scaling: the `pp-engine` frontier runtime vs. thread count, per
//! direction policy and dataset stand-in. Not a paper figure — this is the
//! scaling trajectory of the workspace's own parallel engine across all
//! seven `Program` algorithms (BFS, PageRank, SSSP-Δ, CC, k-core,
//! label-prop, coloring), captured so future benchmark snapshots can track
//! it.

use pp_core::{pagerank::PrOptions, sssp::SsspOptions, Direction};
use pp_engine::{algo, DirectionPolicy, Engine, ProbeShards};
use pp_graph::datasets::Dataset;
use pp_graph::gen;
use pp_telemetry::NullProbe;

use crate::{fmt_ms, median_time};

use super::{header, print_series, Ctx};

/// Iteration cap for the label-propagation rows.
const LP_ITERS: usize = 20;

/// Prints one scaling table per dataset: engine BFS/PR/SSSP/CC/k-core/
/// LP/coloring time vs. threads, per policy.
pub fn run(ctx: Ctx) {
    header(
        "Engine scaling: frontier runtime vs threads",
        "pp-engine (this workspace); direction policy per §5 Generic-Switch",
    );
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= ctx.threads.max(1) * 2)
        .collect();
    let xs: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    let pr_opts = PrOptions {
        iters: 10,
        damping: 0.85,
    };
    let sssp_opts = SsspOptions::default();

    for ds in [Dataset::Orc, Dataset::Rca] {
        let g = ds.generate(ctx.scale);
        let gw = gen::with_random_weights(&g, 1, 64, 0x5ca1e);
        println!("--- {} ({}) ---", ds.id(), ds.description());

        // Column layout follows DirectionPolicy::sweep(), so a new policy
        // variant grows the table instead of silently misfiling timings.
        let sweep = DirectionPolicy::sweep();
        let mut cols: Vec<(String, Vec<String>)> = Vec::new();
        for (name, _) in sweep {
            cols.push((format!("BFS {name}"), Vec::new()));
        }
        for dir in Direction::BOTH {
            cols.push((format!("PR {}", dir.label().to_lowercase()), Vec::new()));
        }
        cols.push(("SSSP adaptive".to_string(), Vec::new()));
        for (name, _) in sweep {
            cols.push((format!("CC {name}"), Vec::new()));
        }
        cols.push(("k-core adaptive".to_string(), Vec::new()));
        cols.push(("LP adaptive".to_string(), Vec::new()));
        cols.push(("BGC adaptive".to_string(), Vec::new()));
        for &t in &threads {
            let engine = Engine::new(t);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            let mut col = 0;
            let mut push_time = |cols: &mut Vec<(String, Vec<String>)>, d: std::time::Duration| {
                cols[col].1.push(fmt_ms(d));
                col += 1;
            };
            for (_, policy) in sweep {
                let d = median_time(ctx.samples, || {
                    algo::bfs::bfs(&engine, &g, 0, policy, &probes)
                });
                push_time(&mut cols, d);
            }
            for dir in Direction::BOTH {
                let d = median_time(ctx.samples, || {
                    algo::pagerank::pagerank(&engine, &g, dir, &pr_opts, &probes)
                });
                push_time(&mut cols, d);
            }
            let d = median_time(ctx.samples, || {
                algo::sssp::sssp_delta(
                    &engine,
                    &gw,
                    0,
                    DirectionPolicy::adaptive(),
                    &sssp_opts,
                    &probes,
                )
            });
            push_time(&mut cols, d);
            for (_, policy) in sweep {
                let d = median_time(ctx.samples, || {
                    algo::components::connected_components(&engine, &g, policy, &probes)
                });
                push_time(&mut cols, d);
            }
            let d = median_time(ctx.samples, || {
                algo::kcore::kcore(&engine, &g, DirectionPolicy::adaptive(), &probes)
            });
            push_time(&mut cols, d);
            let d = median_time(ctx.samples, || {
                algo::labelprop::label_propagation(
                    &engine,
                    &g,
                    DirectionPolicy::adaptive(),
                    LP_ITERS,
                    &probes,
                )
            });
            push_time(&mut cols, d);
            let d = median_time(ctx.samples, || {
                algo::coloring::color(&engine, &g, DirectionPolicy::adaptive(), &probes)
            });
            push_time(&mut cols, d);
        }
        let view: Vec<(&str, Vec<String>)> =
            cols.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        print_series("threads [ms]", &xs, &view);
        println!();
    }
    println!("(engine pool: caller + workers; dynamic degree-aware chunking;");
    println!(" all seven algorithms share one Program/Runner round loop)");
}
