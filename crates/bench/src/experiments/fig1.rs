//! Figure 1: Boman graph coloring time per iteration — Pushing, Pulling,
//! and Greedy-Switch — on orc, ljn, and rca stand-ins.

use pp_core::{coloring, Direction};
use pp_graph::datasets::Dataset;

use crate::with_threads;

use super::{header, print_series, Ctx};

/// Prints the per-iteration time series for each of the three graphs.
pub fn run(ctx: Ctx) {
    header(
        "Figure 1: BGC time per iteration — Pushing / Pulling / GrS",
        "§6.1/§6.2, Figure 1",
    );
    with_threads(ctx.threads, || {
        let opts = coloring::GcOptions::default();
        for ds in [Dataset::Orc, Dataset::Ljn, Dataset::Rca] {
            let g = ds.generate(ctx.scale);
            let push = coloring::boman(&g, ctx.threads, Direction::Push, &opts);
            let pull = coloring::boman(&g, ctx.threads, Direction::Pull, &opts);
            let grs = coloring::greedy_switch(&g, 0.1, &opts);

            let rounds = push
                .iter_times
                .len()
                .max(pull.iter_times.len())
                .max(grs.iter_times.len());
            let xs: Vec<String> = (0..rounds).map(|i| i.to_string()).collect();
            let fmt = |r: &coloring::GcResult| -> Vec<String> {
                r.iter_times
                    .iter()
                    .map(|t| format!("{:.6}", t.as_secs_f64()))
                    .collect()
            };
            println!(
                "-- {} (colors: push {}, pull {}, GrS {}) --",
                ds.id(),
                push.num_colors(),
                pull.num_colors(),
                grs.num_colors()
            );
            print_series(
                "iteration",
                &xs,
                &[
                    ("Pushing [s]", fmt(&push)),
                    ("Pulling [s]", fmt(&pull)),
                    ("GrS [s]", fmt(&grs)),
                ],
            );
            println!(
                "   iterations to finish: push {}, pull {}, GrS {}",
                push.iterations, pull.iterations, grs.iterations
            );
            println!();
        }
    });
}
