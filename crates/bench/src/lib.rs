//! Shared helpers for the benchmark harness: wall-clock measurement,
//! thread-pool pinning, and table formatting used by both the `tables`
//! binary and the Criterion benches — plus one experiment module per table
//! and figure of the paper (see [`experiments`]).

pub mod experiments;

/// The hand-rolled JSON reader/writer now lives in `pp-serve` (the query
/// protocol parses untrusted input with it); re-exported here so the
/// harness's `pp_bench::json::...` paths keep working.
pub use pp_serve::json;

use std::time::{Duration, Instant};

/// Runs `f` once and returns its wall-clock time with the result.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Runs `f` inside a rayon pool of exactly `threads` threads — the harness's
/// analogue of the paper's `T = 16` pinning.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Median of several timed runs of `f` (the measurement loop used by the
/// table harness; Criterion handles the statistical benches).
pub fn median_time<R>(samples: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(samples >= 1);
    let mut times: Vec<Duration> = (0..samples).map(|_| time_once(&mut f).0).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Formats a duration in the unit the paper's tables use (`ms` with three
/// significant digits).
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats seconds (paper's figure axes).
pub fn fmt_s(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (d, r) = time_once(|| 41 + 1);
        assert_eq!(r, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn with_threads_pins_pool_size() {
        let seen = with_threads(3, rayon::current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut i = 0;
        let d = median_time(5, || {
            i += 1;
            std::thread::sleep(Duration::from_micros(10));
        });
        assert_eq!(i, 5);
        assert!(d >= Duration::from_micros(5));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.000");
        assert_eq!(fmt_s(Duration::from_millis(250)), "0.2500");
    }
}
