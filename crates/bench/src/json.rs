//! A minimal JSON reader for the harness's own outputs.
//!
//! The workspace writes JSON by hand (no serde in the dependency-free
//! build); `ppgraph report` needs to read those files back. This module is
//! the matching reader: a small recursive-descent parser into a [`Value`]
//! tree plus the handful of typed accessors the report renderer uses. It
//! parses standard JSON (RFC 8259) — objects, arrays, strings with
//! escapes, numbers, booleans, null — and nothing more (no comments, no
//! trailing commas), which is exactly what the writers emit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the harness's integers fit f64 exactly: they are
    /// counts and nanosecond spans well under 2⁵³).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (BTreeMap), which is fine for
    /// a reader.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements (`None` for non-arrays).
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`None` for non-numbers).
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, truncating (`None` for non-numbers and
    /// negatives).
    pub fn u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload (`None` for non-booleans).
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What the parser expected.
    pub expected: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError {
            expected,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn eat_lit(&mut self, lit: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "'{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in the harness's
                            // ASCII-escaped output; map lone surrogates to
                            // U+FFFD rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("a number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().arr().unwrap()[2]
                .get("b")
                .unwrap()
                .str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("1 2").is_err(), "trailing content");
        assert!(parse("'single'").is_err());
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("3").unwrap();
        assert_eq!(v.num(), Some(3.0));
        assert_eq!(v.u64(), Some(3));
        assert_eq!(v.str(), None);
        assert_eq!(v.arr(), None);
        assert_eq!(parse("-2").unwrap().u64(), None);
        assert_eq!(parse("true").unwrap().bool(), Some(true));
    }

    #[test]
    fn round_trips_the_trace_writer() {
        let mut t = pp_telemetry::ChromeTrace::new();
        t.name_track(0, "rounds");
        t.duration("round 0", "round", 0, 0, 1_000, vec![]);
        let v = parse(&t.to_json()).unwrap();
        let events = v.arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().str(), Some("M"));
        assert_eq!(events[1].get("dur").unwrap().num(), Some(1.0));
    }
}
