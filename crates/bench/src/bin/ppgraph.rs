//! `ppgraph` — the unified graph driver: generate, convert, inspect, and
//! run any engine algorithm on any graph.
//!
//! This is the missing piece between the paper's evaluation (on-disk
//! SNAP/Graph500 edge lists) and the workspace's synthetic stand-ins: a
//! binary that takes *your* graph, in text or binary form, and feeds it to
//! all ten `Program`s through `pp_engine::registry`.
//!
//! ```text
//! ppgraph gen rmat 14 16 --format ppg -o g.ppg
//! ppgraph convert graph.txt -o graph.ppg
//! ppgraph stats graph.ppg
//! ppgraph run bfs graph.ppg --threads 4 --direction adaptive --json -
//! ```
//!
//! Subcommands read a file argument or stdin and write `-o <path>` or
//! stdout, so the whole pipeline composes with pipes:
//! `ppgraph gen rmat 10 8 | ppgraph convert | ppgraph run cc --json -`.
//! Binary `.ppg` snapshots (`pp_graph::snapshot`) and text edge lists
//! (`pp_graph::io`) are told apart by their first bytes; text inputs parse
//! on the engine pool (`pp_engine::ingest`).

use std::io::{BufRead, Read, Write};
use std::time::Instant;

use pp_bench::experiments::json_escape;
use pp_bench::json::{self, Value};
use pp_core::Direction;
use pp_engine::policy::{BEAMER_ALPHA, BEAMER_BETA};
use pp_engine::registry::{self, AlgoRun, RunConfig};
use pp_engine::{ingest, DirectionPolicy, Engine, ExecutionMode, ProbeShards};
use pp_graph::datasets::{Dataset, Scale};
use pp_graph::{gen, io as gio, reorder, snapshot, stats, CsrGraph, VertexId, Weight};
use pp_serve::{Client, ServeConfig, Server};
use pp_telemetry::{CountingProbe, EventCounts, MetricsLevel, NullProbe};

const USAGE: &str = "\
usage: ppgraph <command> [args]

commands:
  gen <family> <params..> [--seed S] [--weights LO:HI] [--format edges|ppg]
                          [-o PATH]
      families: rmat <scale> <edge_factor> | er <n> <m> |
                road <rows> <cols> [keep] | community <k> <cs> <intra> <inter> |
                ba <n> <m_per_vertex> | ws <n> <k> <beta> |
                bipartite <left> <right> <m> |
                path <n> | cycle <n> | star <n> | complete <n> | tree <n> |
                dataset <orc|pok|ljn|am|rca> [--scale test|small|medium]
  convert [IN] [-o PATH] [--format edges|ppg] [--reorder degree|bfs]
          [--min-vertices N] [--threads N]
      IN defaults to stdin; the output format defaults to the opposite of
      the input's (text in -> .ppg out and vice versa)
  stats [IN]
      prints n, m, degree statistics, components, and diameter bound
  run <algo> [IN] [--threads N] [--direction push|pull|adaptive]
             [--mode atomic|pa] [--source V] [--sources V1,V2,..]
             [--reorder degree|bfs] [--weights LO:HI] [--lp-iters K]
             [--bc-sources K] [--json PATH] [--trace PATH] [--metrics PATH]
      runs a registry algorithm; --json dumps a machine-readable report
      ('-' = stdout) whose rows match `tables engine --json`.
      --sources batches bfs (alias msbfs) over up to 64 distinct sources
      in ONE bit-parallel traversal (one lane per source); the summary
      and JSON report carry per-source reached/depth digests.
      --trace writes a Chrome trace-event JSON (chrome://tracing /
      Perfetto: per-round spans, per-worker lanes, switch markers);
      --metrics writes the unified observability JSON (rows + RunReport
      timing + per-round policy decisions + Table-1 event counts +
      per-worker laps), readable by `ppgraph report`
  report <metrics.json> [--imbalance-threshold X] [--no-direction-check]
      renders a --metrics file as a per-round table and flags anomalies
      (policy decisions contradicting the Beamer thresholds — disable
      with --no-direction-check — and worker load imbalance over the
      --imbalance-threshold, default 2.0)
  serve [IN] [--port P] [--workers N] [--threads N] [--queue N]
            [--weights LO:HI] [--seed S] [--min-vertices N]
            [--trace-queries PATH]
      loads the graph once and answers newline-delimited JSON queries
      ({\"algo\": ..., \"source\": ..., \"params\": {...}} -> one response
      line each; {\"op\": \"stats\"|\"metrics\"|\"ping\"|\"shutdown\"}
      meta-queries; \"metrics\" returns Prometheus text exposition in its
      body field). --port serves TCP on 127.0.0.1:P; without it requests
      are read from stdin and answered on stdout until EOF. --workers
      runners of --threads engine threads each execute queries; at most
      --queue queries wait admitted (beyond that: structured 'overloaded'
      rejections). --trace-queries writes a per-query Chrome trace (queue
      span + run span per query, one lane per worker, rejection markers)
      when the server drains. Final stats go to stderr as JSON on
      shutdown.
  query [--connect HOST:PORT] [--stats | --metrics-op | --prom | --ping |
         --shutdown]
      client for `serve --port`: sends stdin's request lines one at a
      time and prints each response line (or just the one meta-query
      named by the flag). --prom fetches the metrics meta-query and
      prints the raw Prometheus text body (scrape adapter). Exit is
      nonzero only on transport failure; ok:false responses are data.
  top [HOST:PORT] [--interval S] [--once]
      live terminal dashboard for a running `serve --port`: polls stats
      every --interval seconds (default 2) and redraws RPS, queue depth,
      rejection rate, per-worker utilization, and per-algo queue/run
      latency percentiles. --once prints a single frame and exits
      (scripting). The address defaults to 127.0.0.1:7878.
  algos
      lists every runnable algorithm with its aliases

Graphs read from a path or stdin may be text edge lists (`u v [w]` lines,
'#' comments) or binary .ppg snapshots; the format is sniffed from the
first bytes. Weighted algorithms (see `ppgraph algos`) attach
deterministic random weights 1..=64 to unweighted inputs unless
--weights overrides the range.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => print!("{USAGE}"),
        Some("gen") => cmd_gen(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("algos") => cmd_algos(),
        Some(other) => die(&format!("unknown command: {other}\n\n{USAGE}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

// ---------------------------------------------------------------- options

/// Parsed flag set shared by the subcommands; positional arguments are
/// collected in order.
#[derive(Default)]
struct Opts {
    positional: Vec<String>,
    out: Option<String>,
    format: Option<String>,
    seed: u64,
    weights: Option<(Weight, Weight)>,
    scale: Option<Scale>,
    reorder: Option<String>,
    min_vertices: usize,
    threads: usize,
    direction: Option<String>,
    mode: Option<String>,
    source: VertexId,
    sources: Vec<VertexId>,
    lp_iters: usize,
    bc_sources: Option<usize>,
    json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    port: Option<u16>,
    workers: usize,
    queue: usize,
    connect: Option<String>,
    meta_op: Option<&'static str>,
    trace_queries: Option<String>,
    prom: bool,
    imbalance_threshold: f64,
    direction_check: bool,
    interval_s: f64,
    once: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 1,
        lp_iters: 20,
        bc_sources: Some(8),
        workers: 2,
        queue: 64,
        imbalance_threshold: 2.0,
        direction_check: true,
        interval_s: 2.0,
        ..Opts::default()
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| die(&format!("{flag} expects a value")))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => o.out = Some(value(args, &mut i, "-o")),
            "--format" => o.format = Some(value(args, &mut i, "--format")),
            "--seed" => {
                o.seed = value(args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed expects an integer"))
            }
            "--weights" => {
                let v = value(args, &mut i, "--weights");
                o.weights = Some(
                    parse_weight_range(&v)
                        .unwrap_or_else(|| die("--weights expects LO:HI with 0 < LO <= HI")),
                );
            }
            "--scale" => {
                let v = value(args, &mut i, "--scale");
                o.scale = Some(
                    pp_bench::experiments::parse_scale(&v)
                        .unwrap_or_else(|| die("--scale expects test|small|medium")),
                );
            }
            "--reorder" => {
                let v = value(args, &mut i, "--reorder");
                if v != "degree" && v != "bfs" {
                    die("--reorder expects degree|bfs");
                }
                o.reorder = Some(v);
            }
            "--min-vertices" => {
                o.min_vertices = value(args, &mut i, "--min-vertices")
                    .parse()
                    .unwrap_or_else(|_| die("--min-vertices expects an integer"))
            }
            "--threads" => {
                o.threads = value(args, &mut i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads expects an integer"))
            }
            "--direction" => o.direction = Some(value(args, &mut i, "--direction")),
            "--mode" => o.mode = Some(value(args, &mut i, "--mode")),
            "--source" => {
                o.source = value(args, &mut i, "--source")
                    .parse()
                    .unwrap_or_else(|_| die("--source expects a vertex id"))
            }
            "--sources" => {
                o.sources = value(args, &mut i, "--sources")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die("--sources expects comma-separated vertex ids"))
                    })
                    .collect()
            }
            "--lp-iters" => {
                o.lp_iters = value(args, &mut i, "--lp-iters")
                    .parse()
                    .ok()
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| die("--lp-iters expects a positive integer"))
            }
            "--bc-sources" => {
                let k: usize = value(args, &mut i, "--bc-sources")
                    .parse()
                    .unwrap_or_else(|_| die("--bc-sources expects an integer (0 = all)"));
                o.bc_sources = (k > 0).then_some(k);
            }
            "--json" => o.json = Some(value(args, &mut i, "--json")),
            "--trace" => o.trace = Some(value(args, &mut i, "--trace")),
            "--metrics" => o.metrics = Some(value(args, &mut i, "--metrics")),
            "--port" => {
                o.port = Some(
                    value(args, &mut i, "--port")
                        .parse()
                        .unwrap_or_else(|_| die("--port expects a port number")),
                )
            }
            "--workers" => {
                o.workers = value(args, &mut i, "--workers")
                    .parse()
                    .ok()
                    .filter(|&w| w >= 1)
                    .unwrap_or_else(|| die("--workers expects a positive integer"))
            }
            "--queue" => {
                o.queue = value(args, &mut i, "--queue")
                    .parse()
                    .ok()
                    .filter(|&q| q >= 1)
                    .unwrap_or_else(|| die("--queue expects a positive integer"))
            }
            "--connect" => o.connect = Some(value(args, &mut i, "--connect")),
            "--stats" => o.meta_op = Some("stats"),
            "--metrics-op" => o.meta_op = Some("metrics"),
            "--ping" => o.meta_op = Some("ping"),
            "--shutdown" => o.meta_op = Some("shutdown"),
            "--prom" => o.prom = true,
            "--trace-queries" => o.trace_queries = Some(value(args, &mut i, "--trace-queries")),
            "--imbalance-threshold" => {
                o.imbalance_threshold = value(args, &mut i, "--imbalance-threshold")
                    .parse()
                    .ok()
                    .filter(|x: &f64| x.is_finite() && *x >= 1.0)
                    .unwrap_or_else(|| die("--imbalance-threshold expects a number >= 1.0"))
            }
            "--no-direction-check" => o.direction_check = false,
            "--interval" => {
                o.interval_s = value(args, &mut i, "--interval")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| die("--interval expects a positive number of seconds"))
            }
            "--once" => o.once = true,
            flag if flag.starts_with("--") => die(&format!("unknown option: {flag}")),
            positional => o.positional.push(positional.to_string()),
        }
        i += 1;
    }
    o
}

fn parse_weight_range(s: &str) -> Option<(Weight, Weight)> {
    let (lo, hi) = s.split_once(':')?;
    let (lo, hi): (Weight, Weight) = (lo.parse().ok()?, hi.parse().ok()?);
    (lo > 0 && lo <= hi).then_some((lo, hi))
}

// ------------------------------------------------------------------- I/O

/// Reads a positional input path (`None`/`-` = stdin) fully into memory.
fn read_input(path: Option<&str>) -> Vec<u8> {
    let mut bytes = Vec::new();
    match path {
        None | Some("-") => {
            std::io::stdin()
                .read_to_end(&mut bytes)
                .unwrap_or_else(|e| die(&format!("failed to read stdin: {e}")));
        }
        Some(p) => {
            bytes = std::fs::read(p).unwrap_or_else(|e| die(&format!("failed to read {p}: {e}")));
        }
    }
    bytes
}

/// Sniffs and loads a graph from raw bytes: `.ppg` by magic, text edge
/// list otherwise (parsed on `engine`'s pool).
fn load_graph(engine: &Engine, bytes: &[u8], min_vertices: usize) -> Result<CsrGraph, String> {
    if snapshot::is_ppg(bytes) {
        snapshot::load_ppg(bytes).map_err(|e| e.to_string())
    } else {
        ingest::read_edge_list_parallel(engine, bytes, min_vertices).map_err(|e| e.to_string())
    }
}

/// The on-disk format of already-loaded input bytes.
fn input_format(bytes: &[u8]) -> &'static str {
    if snapshot::is_ppg(bytes) {
        "ppg"
    } else {
        "edges"
    }
}

fn write_output(out: Option<&str>, f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>) {
    let result = match out {
        None | Some("-") => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            f(&mut w).and_then(|()| w.flush())
        }
        Some(p) => std::fs::File::create(p)
            .map(std::io::BufWriter::new)
            .and_then(|mut w| f(&mut w).and_then(|()| w.flush())),
    };
    result.unwrap_or_else(|e| die(&format!("failed to write output: {e}")));
}

fn emit_graph(g: &CsrGraph, format: &str, out: Option<&str>) {
    match format {
        "ppg" => write_output(out, |w| snapshot::save_ppg(g, w)),
        "edges" => write_output(out, |w| gio::write_edge_list(g, w)),
        other => die(&format!("unknown format: {other} (expected edges|ppg)")),
    }
}

fn apply_reorder(g: CsrGraph, which: Option<&str>) -> CsrGraph {
    match which {
        None => g,
        Some("degree") => reorder::apply_permutation(&g, &reorder::degree_order(&g)),
        Some("bfs") => reorder::apply_permutation(&g, &reorder::bfs_order(&g, 0)),
        Some(other) => die(&format!("unknown reorder: {other}")),
    }
}

// ------------------------------------------------------------------- gen

fn cmd_gen(args: &[String]) {
    let o = parse_opts(args);
    let mut pos = o.positional.iter().map(String::as_str);
    let family = pos.next().unwrap_or_else(|| die("gen: missing family"));
    let mut num = {
        let params: Vec<String> = pos.map(str::to_string).collect();
        let mut i = 0;
        move |name: &str| -> Option<f64> {
            let v = params
                .get(i)?
                .parse()
                .ok()
                .or_else(|| die(&format!("gen {family}: parameter {name} must be numeric")));
            i += 1;
            v
        }
    };
    let req = |v: Option<f64>, name: &str| -> usize {
        v.unwrap_or_else(|| die(&format!("gen: missing parameter <{name}>"))) as usize
    };
    let g = match family {
        "rmat" => {
            let scale = req(num("scale"), "scale");
            let ef = req(num("edge_factor"), "edge_factor");
            gen::rmat(scale as u32, ef, o.seed)
        }
        "er" => gen::erdos_renyi(req(num("n"), "n"), req(num("m"), "m"), o.seed),
        "road" => {
            let rows = req(num("rows"), "rows");
            let cols = req(num("cols"), "cols");
            let keep = num("keep").unwrap_or(0.6);
            gen::road_grid(rows, cols, keep, o.seed)
        }
        "community" => {
            let k = req(num("k"), "k");
            let cs = req(num("cs"), "cs");
            let intra = req(num("intra"), "intra");
            let inter = req(num("inter"), "inter");
            gen::community(k, cs, intra, inter, o.seed)
        }
        "ba" => gen::barabasi_albert(req(num("n"), "n"), req(num("m_per_vertex"), "m"), o.seed),
        "ws" => {
            let n = req(num("n"), "n");
            let k = req(num("k"), "k");
            let beta = num("beta").unwrap_or_else(|| die("gen ws: missing <beta>"));
            gen::watts_strogatz(n, k, beta, o.seed)
        }
        "bipartite" => {
            let left = req(num("left"), "left");
            let right = req(num("right"), "right");
            let m = req(num("m"), "m");
            gen::bipartite(left, right, m, o.seed)
        }
        "path" => gen::path(req(num("n"), "n")),
        "cycle" => gen::cycle(req(num("n"), "n")),
        "star" => gen::star(req(num("n"), "n")),
        "complete" => gen::complete(req(num("n"), "n")),
        "tree" => gen::binary_tree(req(num("n"), "n")),
        "dataset" => {
            let id = o
                .positional
                .get(1)
                .unwrap_or_else(|| die("gen dataset: missing id (orc|pok|ljn|am|rca)"));
            let ds = Dataset::ALL
                .into_iter()
                .find(|d| d.id() == id)
                .unwrap_or_else(|| die(&format!("unknown dataset: {id}")));
            ds.generate(o.scale.unwrap_or(Scale::Test))
        }
        other => die(&format!("unknown family: {other}\n\n{USAGE}")),
    };
    let g = match o.weights {
        Some((lo, hi)) => gen::with_random_weights(&g, lo, hi, o.seed ^ 0x5eed),
        None => g,
    };
    emit_graph(&g, o.format.as_deref().unwrap_or("edges"), o.out.as_deref());
}

// --------------------------------------------------------------- convert

fn cmd_convert(args: &[String]) {
    let o = parse_opts(args);
    if o.positional.len() > 1 {
        die("convert: at most one input path");
    }
    let bytes = read_input(o.positional.first().map(String::as_str));
    let engine = Engine::new(o.threads);
    let g = load_graph(&engine, &bytes, o.min_vertices).unwrap_or_else(|e| die(&e));
    let g = apply_reorder(g, o.reorder.as_deref());
    // Default to the opposite of the input format: `convert` with no flags
    // is "turn my download into a snapshot" (and back).
    let format = o.format.clone().unwrap_or_else(|| {
        if input_format(&bytes) == "ppg" {
            "edges".to_string()
        } else {
            "ppg".to_string()
        }
    });
    emit_graph(&g, &format, o.out.as_deref());
}

// ----------------------------------------------------------------- stats

fn cmd_stats(args: &[String]) {
    let o = parse_opts(args);
    let bytes = read_input(o.positional.first().map(String::as_str));
    let engine = Engine::new(o.threads);
    let g = load_graph(&engine, &bytes, o.min_vertices).unwrap_or_else(|e| die(&e));
    let s = stats::stats(&g);
    println!("format:        {}", input_format(&bytes));
    println!("vertices:      {}", s.n);
    println!("edges:         {}", s.m);
    println!("weighted:      {}", g.is_weighted());
    println!("directed:      {}", g.is_directed());
    println!("avg degree:    {:.2}", s.avg_degree);
    println!("max degree:    {}", s.max_degree);
    println!("components:    {}", stats::num_components(&g));
    println!("diameter >=:   {}", s.diameter_lb);
}

// ------------------------------------------------------------------- run

fn policy_of(name: &str) -> DirectionPolicy {
    match name {
        "push" => DirectionPolicy::Fixed(Direction::Push),
        "pull" => DirectionPolicy::Fixed(Direction::Pull),
        "adaptive" => DirectionPolicy::adaptive(),
        other => die(&format!("unknown direction: {other} (push|pull|adaptive)")),
    }
}

fn mode_of(name: &str) -> ExecutionMode {
    match name {
        "atomic" => ExecutionMode::Atomic,
        "pa" => ExecutionMode::PartitionAware,
        other => die(&format!("unknown mode: {other} (atomic|pa)")),
    }
}

fn cmd_run(args: &[String]) {
    let o = parse_opts(args);
    let mut pos = o.positional.iter().map(String::as_str);
    let algo = pos
        .next()
        .unwrap_or_else(|| die("run: missing algorithm name (see `ppgraph algos`)"));
    let spec = registry::find(algo)
        .unwrap_or_else(|| die(&format!("unknown algorithm: {algo} (see `ppgraph algos`)")));
    let input = pos.next();
    if pos.next().is_some() {
        die("run: at most one input path");
    }

    let bytes = read_input(input);
    let engine = Engine::new(o.threads);
    let load_start = Instant::now();
    let g = load_graph(&engine, &bytes, o.min_vertices).unwrap_or_else(|e| die(&e));
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
    let g = apply_reorder(g, o.reorder.as_deref());
    let g = if spec.needs_weights && !g.is_weighted() {
        let (lo, hi) = o.weights.unwrap_or((1, 64));
        gen::with_random_weights(&g, lo, hi, o.seed ^ 0x5eed)
    } else {
        g
    };
    if g.num_vertices() == 0 {
        die("run: the input graph has no vertices");
    }
    if (o.source as usize) >= g.num_vertices() {
        die(&format!(
            "--source {} out of range (n = {})",
            o.source,
            g.num_vertices()
        ));
    }

    let policy_name = o.direction.as_deref().unwrap_or("adaptive");
    let mode_name = o.mode.as_deref().unwrap_or("atomic");
    // Observability level: --trace needs the per-round × per-worker
    // substrate, --metrics alone needs timing, neither keeps today's
    // zero-overhead NullProbe path untouched.
    let level = if o.trace.is_some() {
        MetricsLevel::Trace
    } else if o.metrics.is_some() {
        MetricsLevel::Timing
    } else {
        MetricsLevel::Off
    };
    let run_start = Instant::now();
    let (run, counts) = if level == MetricsLevel::Off {
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let cfg = RunConfig {
            policy: policy_of(policy_name),
            mode: mode_of(mode_name),
            source: o.source,
            sources: o.sources.clone(),
            lp_iters: o.lp_iters,
            bc_sources: o.bc_sources,
            ..RunConfig::new(&engine, &probes)
        };
        (
            spec.try_run(&cfg, &g)
                .unwrap_or_else(|e| die(&format!("run: {e}"))),
            None,
        )
    } else {
        // Observed runs count events too: one run yields timing AND the
        // Table-1 counters for the metrics file.
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let cfg = RunConfig {
            policy: policy_of(policy_name),
            mode: mode_of(mode_name),
            collect: level,
            source: o.source,
            sources: o.sources.clone(),
            lp_iters: o.lp_iters,
            bc_sources: o.bc_sources,
            ..RunConfig::new(&engine, &probes)
        };
        let spec = registry::find_counting(algo).expect("the registry tables mirror each other");
        let run = spec
            .try_run(&cfg, &g)
            .unwrap_or_else(|e| die(&format!("run: {e}")));
        (run, Some(probes.merged()))
    };
    let ms = run_start.elapsed().as_secs_f64() * 1e3;

    // Human-readable account. When the JSON goes to stdout it must be the
    // only thing there (the CI smoke pipes it into a parser), so the
    // narrative moves to stderr.
    let json_to_stdout = o.json.as_deref() == Some("-");
    let mut narrate: Box<dyn Write> = if json_to_stdout {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    let dataset = input.filter(|p| *p != "-").unwrap_or("<stdin>");
    let _ = writeln!(
        narrate,
        "{} on {} (n={}, m={}): load {:.1} ms, run {:.1} ms \
         [{} threads, {policy_name}, {mode_name}]",
        spec.name,
        dataset,
        g.num_vertices(),
        g.num_edges(),
        load_ms,
        ms,
        engine.threads(),
    );
    for (k, v) in &run.summary {
        let _ = writeln!(narrate, "  {k}: {v}");
    }
    let _ = writeln!(
        narrate,
        "  rounds: {} ({} push / {} pull), phases: {}, |E_F| total: {}",
        run.report.num_rounds(),
        run.report.push_rounds(),
        run.report.pull_rounds(),
        run.report.phases,
        run.report.edges_traversed(),
    );
    if level.times() {
        let _ = writeln!(
            narrate,
            "  timed: {:.3} ms in rounds ({:.3} ms elapsed), {} switches, \
             imbalance {:.2}x",
            run.report.round_duration_ns() as f64 / 1e6,
            run.report.elapsed_ns as f64 / 1e6,
            run.report.switches(),
            run.report.imbalance(),
        );
    }

    let j = RunJson {
        dataset,
        algo: spec.name,
        policy: policy_name,
        mode: mode_name,
        threads: engine.threads(),
        n: g.num_vertices(),
        m: g.num_edges(),
        ms,
        load_ms,
        sources: &o.sources,
        run: &run,
    };
    if let Some(path) = o.json.as_deref() {
        let doc = render_run_json(&j);
        write_output(Some(path), |w| w.write_all(doc.as_bytes()));
        if path != "-" {
            let _ = writeln!(narrate, "wrote JSON report to {path}");
        }
    }
    if let Some(path) = o.trace.as_deref() {
        let trace = run
            .report
            .chrome_trace(&format!("{} {policy_name}", spec.name));
        write_output(Some(path), |w| trace.write(w));
        if path != "-" {
            let _ = writeln!(
                narrate,
                "wrote Chrome trace to {path} ({} events; load in chrome://tracing)",
                trace.len()
            );
        }
    }
    if let Some(path) = o.metrics.as_deref() {
        let doc = render_metrics_json(&j, &counts.unwrap_or_default());
        write_output(Some(path), |w| w.write_all(doc.as_bytes()));
        if path != "-" {
            let _ = writeln!(
                narrate,
                "wrote metrics to {path} (render with `ppgraph report {path}`)"
            );
        }
    }
}

/// Everything the JSON report serializes.
struct RunJson<'a> {
    dataset: &'a str,
    algo: &'a str,
    policy: &'a str,
    mode: &'a str,
    threads: usize,
    n: usize,
    m: usize,
    ms: f64,
    load_ms: f64,
    /// The configured `--sources` batch, verbatim (order and duplicates
    /// preserved); empty for single-source runs.
    sources: &'a [VertexId],
    run: &'a AlgoRun,
}

/// The sections `--json` and `--metrics` share: the `rows` array matches
/// the record shape of `tables engine --json`
/// (`dataset`/`mode`/`algo`/`threads`/`ms`), so perf-trajectory tooling
/// can consume every harness file with one parser; `graph` and `summary`
/// carry the input's shape and the run's output digest.
fn push_common_sections(out: &mut String, j: &RunJson<'_>) {
    out.push_str("  \"experiment\": \"ppgraph\",\n");
    out.push_str(&format!(
        "  \"rows\": [\n    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"algo\": \"{} {}\", \
         \"threads\": {}, \"ms\": {:.3}}}\n  ],\n",
        json_escape(j.dataset),
        json_escape(j.mode),
        json_escape(j.algo),
        json_escape(j.policy),
        j.threads,
        j.ms
    ));
    out.push_str(&format!(
        "  \"graph\": {{\"n\": {}, \"m\": {}, \"load_ms\": {:.3}}},\n",
        j.n, j.m, j.load_ms
    ));
    // Batched runs echo the configured --sources verbatim (order and
    // duplicates preserved) so downstream tooling can line responses up
    // with what was asked for.
    if !j.sources.is_empty() {
        out.push_str("  \"sources\": [");
        for (i, s) in j.sources.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&s.to_string());
        }
        out.push_str("],\n");
    }
    out.push_str("  \"summary\": {");
    for (i, (k, v)) in j.run.summary.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str("},\n");
}

fn push_report_object(out: &mut String, j: &RunJson<'_>, extended: bool) {
    let r = &j.run.report;
    out.push_str(&format!(
        "  \"report\": {{\"rounds\": {}, \"phases\": {}, \"push_rounds\": {}, \
         \"pull_rounds\": {}, \"edges_traversed\": {}, \"remote_updates\": {}, \
         \"max_buffer_peak\": {}",
        r.num_rounds(),
        r.phases,
        r.push_rounds(),
        r.pull_rounds(),
        r.edges_traversed(),
        r.remote_updates(),
        r.max_buffer_peak()
    ));
    if extended {
        out.push_str(&format!(
            ", \"elapsed_ns\": {}, \"round_duration_ns\": {}, \"push_ns\": {}, \
             \"pull_ns\": {}, \"switches\": {}, \"imbalance\": {:.4}",
            r.elapsed_ns,
            r.round_duration_ns(),
            r.dir_duration_ns(Direction::Push),
            r.dir_duration_ns(Direction::Pull),
            r.switches(),
            r.imbalance()
        ));
    }
    out.push('}');
}

/// Renders the `--json` run report (rows + graph + summary + aggregate
/// report — the PR-5 shape, unchanged).
fn render_run_json(j: &RunJson<'_>) -> String {
    let mut out = String::from("{\n");
    push_common_sections(&mut out, j);
    push_report_object(&mut out, j, false);
    out.push_str("\n}\n");
    out
}

/// Renders the `--metrics` document: the common sections plus the timed
/// report aggregates, round-duration percentiles, Table-1 event counts,
/// per-worker laps, and one record per round with its policy decision —
/// everything `ppgraph report` renders back.
fn render_metrics_json(j: &RunJson<'_>, counts: &EventCounts) -> String {
    let r = &j.run.report;
    let mut out = String::from("{\n");
    push_common_sections(&mut out, j);
    push_report_object(&mut out, j, true);
    out.push_str(",\n");
    let h = r.round_histogram();
    out.push_str(&format!(
        "  \"timing\": {{\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {}}},\n",
        h.p50(),
        h.p95(),
        h.p99(),
        h.max()
    ));
    out.push_str(&format!(
        "  \"counts\": {{\"reads\": {}, \"writes\": {}, \"atomics\": {}, \"locks\": {}, \
         \"branches_cond\": {}, \"branches_uncond\": {}, \"barriers\": {}, \
         \"remote_sends\": {}, \"l1_misses\": {}, \"l2_misses\": {}, \"l3_misses\": {}, \
         \"dtlb_misses\": {}}},\n",
        counts.reads,
        counts.writes,
        counts.atomics,
        counts.locks,
        counts.branches_cond,
        counts.branches_uncond,
        counts.barriers,
        counts.remote_sends,
        counts.l1_misses,
        counts.l2_misses,
        counts.l3_misses,
        counts.dtlb_misses
    ));
    out.push_str("  \"workers\": [\n");
    for (w, lap) in r.worker_laps.iter().enumerate() {
        let comma = if w + 1 < r.worker_laps.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"worker\": {w}, \"busy_ns\": {}, \"idle_ns\": {}, \
             \"chunks\": {}}}{comma}\n",
            lap.busy_ns, lap.idle_ns, lap.chunks_claimed
        ));
    }
    out.push_str("  ],\n");
    // The per-source axis of a batched run: how long each lane stayed
    // active and the depth it reached.
    if !r.sources.is_empty() {
        out.push_str("  \"source_stats\": [\n");
        for (i, s) in r.sources.iter().enumerate() {
            let comma = if i + 1 < r.sources.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"source\": {}, \"rounds_active\": {}, \"depth\": {}}}{comma}\n",
                s.source, s.rounds_active, s.depth
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"rounds\": [\n");
    for (i, s) in r.rounds.iter().enumerate() {
        let comma = if i + 1 < r.rounds.len() { "," } else { "" };
        let dir = match s.dir {
            Direction::Push => "push",
            Direction::Pull => "pull",
        };
        out.push_str(&format!(
            "    {{\"round\": {}, \"phase\": {}, \"dir\": \"{dir}\", \"frontier\": {}, \
             \"frontier_edges\": {}, \"duration_ns\": {}, \"remote_updates\": {}, \
             \"buffer_peak\": {}, \"lanes_active\": {}, ",
            s.round,
            s.phase,
            s.frontier,
            s.frontier_edges,
            s.duration_ns,
            s.remote_updates,
            s.buffer_peak,
            s.lanes_active
        ));
        match s.decision {
            Some(d) => out.push_str(&format!(
                "\"decision\": {{\"share\": {:.6}, \"threshold\": {:.6}, \
                 \"switched\": {}}}",
                d.observed_share, d.threshold, d.switched
            )),
            None => out.push_str("\"decision\": null"),
        }
        if let Some(busy) = r.round_worker_busy.get(i) {
            out.push_str(", \"workers_busy_ns\": [");
            for (w, b) in busy.iter().enumerate() {
                if w > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push(']');
        }
        out.push_str(&format!("}}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------- report

fn cmd_report(args: &[String]) {
    let o = parse_opts(args);
    if o.positional.len() > 1 {
        die("report: at most one metrics file");
    }
    let bytes = read_input(o.positional.first().map(String::as_str));
    let text = String::from_utf8(bytes).unwrap_or_else(|_| die("report: input is not UTF-8"));
    let doc = json::parse(&text).unwrap_or_else(|e| die(&format!("report: bad JSON: {e}")));
    let thresholds = ReportThresholds {
        imbalance: o.imbalance_threshold,
        direction_check: o.direction_check,
    };
    let rendered =
        render_report(&doc, &thresholds).unwrap_or_else(|e| die(&format!("report: {e}")));
    print!("{rendered}");
}

/// Anomaly knobs for [`render_report`]: the flag-promoted thresholds with
/// the historical hardcoded values as defaults.
struct ReportThresholds {
    /// Flag worker load imbalance above this many × (max busy vs. mean).
    imbalance: f64,
    /// Whether to flag per-round direction decisions against the Beamer
    /// window at all (`--no-direction-check` clears it).
    direction_check: bool,
}

impl Default for ReportThresholds {
    fn default() -> Self {
        Self {
            imbalance: 2.0,
            direction_check: true,
        }
    }
}

/// Flags a policy decision that contradicts the Beamer window the adaptive
/// policy operates: pushing a frontier whose share is above the pull
/// threshold (`1/α`), or pulling one below the push threshold (`1/(αβ)`).
/// For adaptive runs a flag means hysteresis lag (one round of lag is
/// normal right at a crossing; persistent flags are not); for fixed
/// schedules it marks rounds where the forced direction disagrees with
/// what the frontier called for.
fn decision_anomaly(dir: &str, share: f64) -> Option<String> {
    let pull_above = 1.0 / BEAMER_ALPHA;
    let push_below = 1.0 / (BEAMER_ALPHA * BEAMER_BETA);
    match dir {
        "push" if share > pull_above => Some(format!(
            "pushed at share {share:.4} > 1/α = {pull_above:.4} (pull territory)"
        )),
        "pull" if share < push_below => Some(format!(
            "pulled at share {share:.4} < 1/αβ = {push_below:.4} (push territory)"
        )),
        _ => None,
    }
}

/// Renders a parsed `--metrics` document as the per-round table with an
/// anomaly section. Pure (string in, string out) so tests can round-trip
/// `render_metrics_json` through the parser and back.
fn render_report(doc: &Value, thresholds: &ReportThresholds) -> Result<String, String> {
    let row = doc
        .get("rows")
        .and_then(Value::arr)
        .and_then(<[Value]>::first)
        .ok_or("missing rows[0] — is this a `ppgraph run --metrics` file?")?;
    let field = |v: &Value, k: &str| v.get(k).cloned().unwrap_or(Value::Null);
    let mut out = String::new();
    let mut anomalies: Vec<String> = Vec::new();

    out.push_str(&format!(
        "{} on {} [{} threads, mode {}]: {} ms\n",
        field(row, "algo").str().unwrap_or("?"),
        field(row, "dataset").str().unwrap_or("?"),
        field(row, "threads").u64().unwrap_or(0),
        field(row, "mode").str().unwrap_or("?"),
        field(row, "ms").num().unwrap_or(0.0),
    ));
    if let Some(graph) = doc.get("graph") {
        out.push_str(&format!(
            "graph: n = {}, m = {}\n",
            field(graph, "n").u64().unwrap_or(0),
            field(graph, "m").u64().unwrap_or(0)
        ));
    }
    let report = doc.get("report").ok_or("missing report object")?;
    out.push_str(&format!(
        "report: {} rounds ({} push / {} pull), {} phases, {} switches, \
         {:.3} ms in rounds, imbalance {:.2}x\n",
        field(report, "rounds").u64().unwrap_or(0),
        field(report, "push_rounds").u64().unwrap_or(0),
        field(report, "pull_rounds").u64().unwrap_or(0),
        field(report, "phases").u64().unwrap_or(0),
        field(report, "switches").u64().unwrap_or(0),
        field(report, "round_duration_ns").num().unwrap_or(0.0) / 1e6,
        field(report, "imbalance").num().unwrap_or(0.0),
    ));
    if let Some(t) = doc.get("timing") {
        out.push_str(&format!(
            "round durations: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms\n",
            field(t, "p50_ns").num().unwrap_or(0.0) / 1e6,
            field(t, "p95_ns").num().unwrap_or(0.0) / 1e6,
            field(t, "p99_ns").num().unwrap_or(0.0) / 1e6,
        ));
    }

    let rounds = doc
        .get("rounds")
        .and_then(Value::arr)
        .ok_or("missing rounds array")?;
    out.push_str("\n round  phase  dir   |F|        |E_F|      dur_ms     share      switch\n");
    for r in rounds {
        let dir = field(r, "dir").str().unwrap_or("?").to_string();
        let decision = r.get("decision").cloned().unwrap_or(Value::Null);
        let (share_txt, switch_txt) = match &decision {
            Value::Obj(_) => {
                let share = field(&decision, "share").num().unwrap_or(0.0);
                let switched = field(&decision, "switched").bool().unwrap_or(false);
                if thresholds.direction_check {
                    if let Some(a) = decision_anomaly(&dir, share) {
                        anomalies.push(format!(
                            "round {}: {a}",
                            field(r, "round").u64().unwrap_or(0)
                        ));
                    }
                }
                (format!("{share:.4}"), if switched { "*" } else { "" })
            }
            _ => ("-".to_string(), ""),
        };
        out.push_str(&format!(
            " {:<6} {:<6} {:<5} {:<10} {:<10} {:<10.3} {:<10} {}\n",
            field(r, "round").u64().unwrap_or(0),
            field(r, "phase").u64().unwrap_or(0),
            dir,
            field(r, "frontier").u64().unwrap_or(0),
            field(r, "frontier_edges").u64().unwrap_or(0),
            field(r, "duration_ns").num().unwrap_or(0.0) / 1e6,
            share_txt,
            switch_txt,
        ));
    }

    if let Some(workers) = doc.get("workers").and_then(Value::arr) {
        out.push_str("\n worker  busy_ms    idle_ms    chunks     util\n");
        for w in workers {
            let busy = field(w, "busy_ns").num().unwrap_or(0.0);
            let idle = field(w, "idle_ns").num().unwrap_or(0.0);
            let util = if busy + idle > 0.0 {
                busy / (busy + idle)
            } else {
                0.0
            };
            out.push_str(&format!(
                " {:<7} {:<10.3} {:<10.3} {:<10} {:.0}%\n",
                field(w, "worker").u64().unwrap_or(0),
                busy / 1e6,
                idle / 1e6,
                field(w, "chunks").u64().unwrap_or(0),
                util * 100.0,
            ));
        }
    }
    let imbalance = field(report, "imbalance").num().unwrap_or(0.0);
    if imbalance > thresholds.imbalance {
        anomalies.push(format!(
            "worker load imbalance {imbalance:.2}x exceeds {:.1}x (max busy vs. mean busy)",
            thresholds.imbalance
        ));
    }

    if anomalies.is_empty() {
        out.push_str("\nno anomalies\n");
    } else {
        out.push_str(&format!("\nanomalies ({}):\n", anomalies.len()));
        for a in &anomalies {
            out.push_str(&format!("  - {a}\n"));
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- serve

fn cmd_serve(args: &[String]) {
    let o = parse_opts(args);
    let mut pos = o.positional.iter().map(String::as_str);
    let input = pos.next();
    if pos.next().is_some() {
        die("serve: at most one input path");
    }
    let from_stdin = matches!(input, None | Some("-"));
    if from_stdin && o.port.is_none() {
        die("serve: without --port, queries arrive on stdin, so the graph must be a file path");
    }

    let bytes = read_input(input);
    let load_engine = Engine::new(0);
    let load_start = Instant::now();
    let g = load_graph(&load_engine, &bytes, o.min_vertices).unwrap_or_else(|e| die(&e));
    drop(bytes);
    drop(load_engine);
    // Unweighted inputs get the same deterministic weights `ppgraph run`
    // would attach, so all ten algorithms are servable from one resident
    // graph.
    let g = if g.is_weighted() {
        g
    } else {
        let (lo, hi) = o.weights.unwrap_or((1, 64));
        gen::with_random_weights(&g, lo, hi, o.seed ^ 0x5eed)
    };
    if g.num_vertices() == 0 {
        die("serve: the input graph has no vertices");
    }
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;

    let name = input.filter(|p| *p != "-").unwrap_or("<stdin>").to_string();
    let cfg = ServeConfig {
        workers: o.workers,
        // Unlike `run` (0 = hardware parallelism), each of the serve
        // workers defaults to a single engine thread: throughput comes
        // from concurrent queries, not from one wide query.
        threads: o.threads.max(1),
        queue: o.queue,
        name: name.clone(),
        trace_queries: o.trace_queries.clone(),
        ..ServeConfig::default()
    };
    eprintln!(
        "serving {name} (n={}, m={}; loaded in {load_ms:.1} ms): \
         {} workers x {} threads, queue {}",
        g.num_vertices(),
        g.num_edges(),
        cfg.workers,
        cfg.threads,
        cfg.queue,
    );
    let server = Server::new(g, cfg);
    let stats = match o.port {
        Some(port) => {
            let listener = std::net::TcpListener::bind(("127.0.0.1", port))
                .unwrap_or_else(|e| die(&format!("serve: cannot bind 127.0.0.1:{port}: {e}")));
            eprintln!(
                "listening on 127.0.0.1:{port}; stop with \
                 `ppgraph query --connect 127.0.0.1:{port} --shutdown`"
            );
            server.serve_tcp(listener)
        }
        None => {
            let stdin = std::io::stdin();
            server.serve_lines(stdin.lock(), std::io::stdout())
        }
    };
    // The final counters go to stderr so a stdio session's stdout stays
    // pure NDJSON responses.
    eprintln!("{}", pp_serve::protocol::render_stats(&stats));
}

// ----------------------------------------------------------------- query

fn cmd_query(args: &[String]) {
    let o = parse_opts(args);
    if !o.positional.is_empty() {
        die("query: unexpected positional arguments");
    }
    let addr = o.connect.as_deref().unwrap_or("127.0.0.1:7878");
    let mut client = Client::connect(addr)
        .unwrap_or_else(|e| die(&format!("query: cannot connect to {addr}: {e}")));

    if o.prom {
        // Scrape adapter: unwrap the metrics meta-query's body field and
        // print the raw Prometheus text (pipe to a .prom file or a
        // node_exporter textfile directory).
        let resp = client
            .request("{\"op\": \"metrics\"}")
            .unwrap_or_else(|e| die(&format!("query: transport error: {e}")));
        let doc = json::parse(&resp)
            .unwrap_or_else(|e| die(&format!("query: unparseable metrics response: {e}")));
        let body = doc
            .get("body")
            .and_then(Value::str)
            .unwrap_or_else(|| die("query: metrics response has no body field"));
        print!("{body}");
        return;
    }

    if let Some(op) = o.meta_op {
        let resp = client
            .request(&format!("{{\"op\": \"{op}\"}}"))
            .unwrap_or_else(|e| die(&format!("query: transport error: {e}")));
        println!("{resp}");
        return;
    }

    // Lock-step relay: one request line in, one response line out. An
    // ok:false response is data for the caller, not a client failure —
    // only transport errors exit nonzero.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_else(|e| die(&format!("query: failed to read stdin: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        let resp = client
            .request(&line)
            .unwrap_or_else(|e| die(&format!("query: transport error: {e}")));
        println!("{resp}");
    }
}

// ------------------------------------------------------------------- top

/// The slice of a stats response `top` renders: enough to diff two polls
/// into rates and print the latency breakdown.
struct TopSample {
    uptime_s: f64,
    served: u64,
    rejected: u64,
    errors: u64,
    queue_depth: u64,
    queue_capacity: u64,
    doc: Value,
}

fn top_sample(client: &mut Client) -> Result<TopSample, String> {
    let resp = client
        .request("{\"op\": \"stats\"}")
        .map_err(|e| format!("transport error: {e}"))?;
    let doc = json::parse(&resp).map_err(|e| format!("unparseable stats response: {e}"))?;
    let num = |k: &str| doc.get(k).and_then(Value::num).unwrap_or(0.0);
    let int = |k: &str| doc.get(k).and_then(Value::u64).unwrap_or(0);
    let queue = doc.get("queue").cloned().unwrap_or(Value::Null);
    Ok(TopSample {
        uptime_s: num("uptime_s"),
        served: int("served"),
        rejected: int("rejected"),
        errors: int("errors"),
        queue_depth: queue.get("depth").and_then(Value::u64).unwrap_or(0),
        queue_capacity: queue.get("capacity").and_then(Value::u64).unwrap_or(0),
        doc,
    })
}

/// Renders one dashboard frame from the current sample and (when polling)
/// the previous one; pure so tests can feed it canned stats documents.
fn render_top_frame(addr: &str, cur: &TopSample, prev: Option<&TopSample>) -> String {
    let mut out = String::new();
    let field = |v: &Value, k: &str| v.get(k).cloned().unwrap_or(Value::Null);
    let total = cur.served + cur.rejected + cur.errors;
    // RPS: completions per second between polls; on the first (or only)
    // frame, the lifetime average.
    let (rps, basis) = match prev {
        Some(p) if cur.uptime_s > p.uptime_s => (
            (cur.served + cur.errors).saturating_sub(p.served + p.errors) as f64
                / (cur.uptime_s - p.uptime_s),
            "interval",
        ),
        _ if cur.uptime_s > 0.0 => ((cur.served + cur.errors) as f64 / cur.uptime_s, "lifetime"),
        _ => (0.0, "lifetime"),
    };
    let reject_rate = if total > 0 {
        cur.rejected as f64 / total as f64 * 100.0
    } else {
        0.0
    };
    let graph = field(&cur.doc, "graph");
    out.push_str(&format!(
        "pp-serve {addr} — {} (n={}, m={}), up {:.0}s\n",
        field(&graph, "dataset").str().unwrap_or("?"),
        field(&graph, "n").u64().unwrap_or(0),
        field(&graph, "m").u64().unwrap_or(0),
        cur.uptime_s,
    ));
    out.push_str(&format!(
        "rps {rps:.1} ({basis})  queue {}/{}  served {}  errors {}  rejected {} ({reject_rate:.1}%)\n",
        cur.queue_depth, cur.queue_capacity, cur.served, cur.errors, cur.rejected,
    ));
    if let Some(util) = cur.doc.get("workers_util").and_then(Value::arr) {
        out.push_str("workers ");
        for (w, u) in util.iter().enumerate() {
            out.push_str(&format!("[{w}] {:.0}%  ", u.num().unwrap_or(0.0) * 100.0));
        }
        out.push('\n');
    }
    // Servers without query coalescing (pre-batching) send no `batching`
    // object; skip the line rather than print zeros that mean "unknown".
    if let Some(b) = cur.doc.get("batching") {
        out.push_str(&format!(
            "batching {} runs  coalesced {} queries  max batch {}\n",
            field(b, "batches").u64().unwrap_or(0),
            field(b, "coalesced").u64().unwrap_or(0),
            field(b, "max_batch").u64().unwrap_or(0),
        ));
    }
    let window_s = field(&cur.doc, "window")
        .get("seconds")
        .and_then(Value::num)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "\n algo       served     errors     queue p50/p95/p99 (ms)     run p50/p95/p99 (ms)   [last {window_s:.0}s]\n"
    ));
    let quantiles = |lat: &Value| {
        format!(
            "{:.3}/{:.3}/{:.3}",
            field(lat, "p50_ns").num().unwrap_or(0.0) / 1e6,
            field(lat, "p95_ns").num().unwrap_or(0.0) / 1e6,
            field(lat, "p99_ns").num().unwrap_or(0.0) / 1e6,
        )
    };
    if let Some(algos) = cur.doc.get("algos").and_then(Value::arr) {
        for a in algos {
            out.push_str(&format!(
                " {:<10} {:<10} {:<10} {:<25} {}\n",
                field(a, "algo").str().unwrap_or("?"),
                field(a, "served").u64().unwrap_or(0),
                field(a, "errors").u64().unwrap_or(0),
                quantiles(&field(a, "window_queue")),
                quantiles(&field(a, "window_run")),
            ));
        }
    }
    out
}

fn cmd_top(args: &[String]) {
    let o = parse_opts(args);
    if o.positional.len() > 1 {
        die("top: at most one HOST:PORT address");
    }
    let addr = o
        .positional
        .first()
        .map(String::as_str)
        .or(o.connect.as_deref())
        .unwrap_or("127.0.0.1:7878")
        .to_string();
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| die(&format!("top: cannot connect to {addr}: {e}")));
    let mut prev: Option<TopSample> = None;
    loop {
        let cur = top_sample(&mut client).unwrap_or_else(|e| die(&format!("top: {e}")));
        let frame = render_top_frame(&addr, &cur, prev.as_ref());
        if o.once {
            print!("{frame}");
            return;
        }
        // Plain ANSI home+clear redraw — no TUI dependency.
        print!("\x1b[H\x1b[2J{frame}");
        let _ = std::io::stdout().flush();
        prev = Some(cur);
        std::thread::sleep(std::time::Duration::from_secs_f64(o.interval_s));
    }
}

// ----------------------------------------------------------------- algos

fn cmd_algos() {
    println!("algorithms (ppgraph run <name> [IN]):");
    for spec in registry::all() {
        let aliases = if spec.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aka {})", spec.aliases.join(", "))
        };
        let weights = if spec.needs_weights {
            "  [weighted]"
        } else {
            ""
        };
        println!(
            "  {:<10}{aliases:<24}{}{weights}",
            spec.name, spec.description
        );
    }
    println!("\n[weighted]: unweighted inputs get deterministic random weights");
    println!("(override the range with --weights LO:HI)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_range_parsing() {
        assert_eq!(parse_weight_range("1:9"), Some((1, 9)));
        assert_eq!(parse_weight_range("5:5"), Some((5, 5)));
        assert_eq!(parse_weight_range("0:9"), None, "zero breaks Δ-stepping");
        assert_eq!(parse_weight_range("9:1"), None);
        assert_eq!(parse_weight_range("1"), None);
        assert_eq!(parse_weight_range("a:b"), None);
    }

    #[test]
    fn option_parser_collects_flags_and_positionals() {
        let args: Vec<String> = [
            "cc",
            "in.ppg",
            "--threads",
            "4",
            "--mode",
            "pa",
            "--json",
            "-",
            "--source",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_opts(&args);
        assert_eq!(o.positional, vec!["cc", "in.ppg"]);
        assert_eq!(o.threads, 4);
        assert_eq!(o.mode.as_deref(), Some("pa"));
        assert_eq!(o.json.as_deref(), Some("-"));
        assert_eq!(o.source, 7);
    }

    #[test]
    fn run_json_is_well_formed_and_row_compatible() {
        let g = gen::rmat(6, 4, 1);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);
        let run = registry::find("cc").unwrap().run(&cfg, &g);
        let doc = render_run_json(&RunJson {
            dataset: "test \"quoted\"",
            algo: "cc",
            policy: "adaptive",
            mode: "atomic",
            threads: 2,
            n: g.num_vertices(),
            m: g.num_edges(),
            ms: 1.25,
            load_ms: 0.5,
            sources: &[],
            run: &run,
        });
        assert!(doc.contains("\"experiment\": \"ppgraph\""));
        assert!(doc.contains("\"algo\": \"cc adaptive\""));
        assert!(doc.contains("\\\"quoted\\\""), "dataset name escaped");
        assert!(doc.contains("\"components\""));
        assert!(doc.contains("\"rounds\""));
        // Balanced braces/brackets (the smoke test parses this for real).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn batched_run_json_echoes_sources_and_round_trips_through_report() {
        let g = gen::rmat(7, 6, 4);
        let engine = Engine::new(2);

        // --json: the configured batch appears verbatim (duplicate kept),
        // the summary digests follow lane (dedup) order.
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let mut cfg = RunConfig::new(&engine, &probes);
        cfg.sources = vec![3, 17, 3, 5];
        let run = registry::find("bfs").unwrap().try_run(&cfg, &g).unwrap();
        let doc = render_run_json(&RunJson {
            dataset: "rmat7",
            algo: "bfs",
            policy: "adaptive",
            mode: "atomic",
            threads: 2,
            n: g.num_vertices(),
            m: g.num_edges(),
            ms: 1.0,
            load_ms: 0.1,
            sources: &cfg.sources,
            run: &run,
        });
        assert!(
            doc.contains("\"sources\": [3, 17, 3, 5]"),
            "configured list verbatim: {doc}"
        );
        assert!(
            doc.contains("\"sources\": \"3,17,5\""),
            "lane-order summary"
        );
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());

        // --metrics: per-source stats and per-round lane counts survive a
        // parse + `ppgraph report` render.
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let mut cfg = RunConfig::new(&engine, &probes);
        cfg.collect = MetricsLevel::Timing;
        cfg.sources = vec![3, 17, 5];
        let run = registry::find_counting("bfs")
            .unwrap()
            .try_run(&cfg, &g)
            .unwrap();
        let doc = render_metrics_json(
            &RunJson {
                dataset: "rmat7",
                algo: "bfs",
                policy: "adaptive",
                mode: "atomic",
                threads: 2,
                n: g.num_vertices(),
                m: g.num_edges(),
                ms: 1.0,
                load_ms: 0.1,
                sources: &cfg.sources,
                run: &run,
            },
            &probes.merged(),
        );
        let parsed = json::parse(&doc).expect("batched metrics JSON parses");
        let stats = parsed.get("source_stats").unwrap().arr().unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].get("source").unwrap().u64(), Some(3));
        let rounds = parsed.get("rounds").unwrap().arr().unwrap();
        assert!(rounds
            .iter()
            .any(|r| r.get("lanes_active").unwrap().u64().unwrap() > 1));
        let rendered = render_report(&parsed, &ReportThresholds::default())
            .expect("batched rows render through ppgraph report");
        assert!(rendered.contains("bfs adaptive on rmat7"));
    }

    #[test]
    fn metrics_json_round_trips_through_the_report_renderer() {
        let g = gen::rmat(7, 6, 4);
        let engine = Engine::new(2);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let mut cfg = RunConfig::new(&engine, &probes);
        cfg.collect = MetricsLevel::Trace;
        let run = registry::find_counting("bfs").unwrap().run(&cfg, &g);
        let doc = render_metrics_json(
            &RunJson {
                dataset: "rmat7",
                algo: "bfs",
                policy: "adaptive",
                mode: "atomic",
                threads: 2,
                n: g.num_vertices(),
                m: g.num_edges(),
                ms: 1.0,
                load_ms: 0.1,
                sources: &[],
                run: &run,
            },
            &probes.merged(),
        );
        let parsed = json::parse(&doc).expect("the metrics writer emits valid JSON");
        let rounds = parsed.get("rounds").unwrap().arr().unwrap();
        assert_eq!(rounds.len(), run.report.rounds.len());
        assert!(rounds
            .iter()
            .all(|r| r.get("duration_ns").unwrap().num().unwrap() > 0.0));
        // At Trace level every round carries the per-worker busy split.
        assert!(rounds.iter().all(|r| r
            .get("workers_busy_ns")
            .and_then(Value::arr)
            .is_some_and(|b| b.len() == engine.threads())));
        assert_eq!(
            parsed.get("workers").unwrap().arr().unwrap().len(),
            engine.threads()
        );
        assert!(parsed.get("counts").unwrap().get("reads").unwrap().u64() > Some(0));
        let rendered = render_report(&parsed, &ReportThresholds::default())
            .expect("the renderer reads its own format");
        assert!(rendered.contains("bfs adaptive on rmat7"));
        assert!(rendered.contains("round  phase  dir"));
        assert!(rendered.contains("worker  busy_ms"));
    }

    #[test]
    fn report_renderer_flags_contradictory_decisions_and_imbalance() {
        assert!(decision_anomaly("push", 0.5).is_some(), "share ≫ 1/α");
        assert!(decision_anomaly("pull", 0.0001).is_some(), "share ≪ 1/αβ");
        assert!(decision_anomaly("push", 0.001).is_none());
        assert!(decision_anomaly("pull", 0.5).is_none());
        // Hysteresis band: neither direction is anomalous between the
        // thresholds.
        let mid = 0.5 * (1.0 / BEAMER_ALPHA + 1.0 / (BEAMER_ALPHA * BEAMER_BETA));
        assert!(decision_anomaly("push", mid).is_none());
        assert!(decision_anomaly("pull", mid).is_none());

        let doc = json::parse(
            r#"{
              "rows": [{"dataset": "d", "mode": "atomic", "algo": "bfs fixed",
                        "threads": 2, "ms": 1.0}],
              "report": {"rounds": 1, "phases": 1, "push_rounds": 1,
                         "pull_rounds": 0, "switches": 0,
                         "round_duration_ns": 1000, "imbalance": 3.5},
              "rounds": [{"round": 0, "phase": 0, "dir": "push", "frontier": 9,
                          "frontier_edges": 900, "duration_ns": 1000,
                          "decision": {"share": 0.9, "threshold": 0.066,
                                       "switched": false}}]
            }"#,
        )
        .unwrap();
        let rendered = render_report(&doc, &ReportThresholds::default()).unwrap();
        assert!(rendered.contains("anomalies (2):"));
        assert!(rendered.contains("pull territory"));
        assert!(rendered.contains("imbalance 3.50x exceeds 2.0x"));

        // The promoted thresholds change what gets flagged: a looser
        // imbalance bar drops that anomaly, --no-direction-check drops
        // the Beamer-window one.
        let loose = render_report(
            &doc,
            &ReportThresholds {
                imbalance: 4.0,
                direction_check: true,
            },
        )
        .unwrap();
        assert!(loose.contains("anomalies (1):"));
        assert!(!loose.contains("exceeds"));
        let quiet = render_report(
            &doc,
            &ReportThresholds {
                imbalance: 4.0,
                direction_check: false,
            },
        )
        .unwrap();
        assert!(quiet.contains("no anomalies"));

        let bad = json::parse("{\"rows\": []}").unwrap();
        assert!(render_report(&bad, &ReportThresholds::default()).is_err());
    }

    #[test]
    fn graph_loading_sniffs_both_formats() {
        let g = gen::rmat(6, 4, 2);
        let engine = Engine::new(2);
        let mut ppg = Vec::new();
        snapshot::save_ppg(&g, &mut ppg).unwrap();
        let mut txt = Vec::new();
        gio::write_edge_list(&g, &mut txt).unwrap();
        assert_eq!(input_format(&ppg), "ppg");
        assert_eq!(input_format(&txt), "edges");
        assert_eq!(load_graph(&engine, &ppg, 0).unwrap(), g);
        assert_eq!(load_graph(&engine, &txt, 0).unwrap(), g);
        assert!(load_graph(&engine, b"0 1\n1 2 9\n", 0)
            .unwrap_err()
            .contains("mixes"));
    }

    #[test]
    fn reorder_preserves_structure() {
        let g = gen::rmat(6, 4, 3);
        for which in ["degree", "bfs"] {
            let h = apply_reorder(g.clone(), Some(which));
            assert_eq!(h.num_vertices(), g.num_vertices(), "{which}");
            assert_eq!(h.num_edges(), g.num_edges(), "{which}");
        }
    }
}
