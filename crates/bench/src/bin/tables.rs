//! The table/figure harness: regenerates every table and figure of the
//! paper's evaluation section on the synthetic dataset stand-ins.
//!
//! ```text
//! tables <experiment> [--scale test|small|medium] [--threads N] [--samples K]
//!                     [--json <path>]
//!
//! experiments:
//!   table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6a fig6b
//!   weak pram ext engine all
//! ```

use pp_bench::experiments::{self, Ctx};

const USAGE: &str = "\
usage: tables <experiment> [--scale test|small|medium] [--threads N] [--samples K]
              [--json <path>]

experiments:
  table1   PAPI-style event counts for PR/TC/BGC/SSSP (push|push+PA|pull)
  table2   dataset statistics
  table3   PR ms/iteration and TC total seconds, push vs pull
  table4   PR across two machine configurations
  fig1     BGC time per iteration: push / pull / Greedy-Switch
  fig2     SSSP-Δ per-epoch times and the Δ sweep
  fig3     DM strong scaling for PR and TC (simulated ranks)
  fig4     Boruvka MST phase times per round
  fig5     BC scalability vs threads
  fig6a    PR push vs push+PA
  fig6b    BGC iteration counts per strategy
  weak     PR weak scaling (n/P constant, simulated ranks)
  pram     the §4 PRAM analysis table
  ext      tech-report extensions: new algorithms, SM/DM SSSP inversion,
           vertex-order x prefetcher cache ablation
  engine   pp-engine scaling: all ten Programs vs threads per direction
           policy (push | pull | adaptive) x execution mode (atomic | pa)
  all      everything above

options:
  --json <path>   additionally dump the sweep as machine-readable JSON
                  (supported by: engine) for perf-trajectory tracking;
                  the committed baseline at BENCH_engine.json is refreshed
                  each PR with `tables engine --scale test --samples 1
                  --json BENCH_engine.json` and diffed in CI
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{USAGE}");
        return;
    }
    let mut ctx = Ctx::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args
                    .get(i)
                    .and_then(|s| experiments::parse_scale(s))
                    .unwrap_or_else(|| die("--scale expects test|small|medium"));
            }
            "--threads" => {
                i += 1;
                ctx.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &usize| t >= 1)
                    .unwrap_or_else(|| die("--threads expects a positive integer"));
            }
            "--samples" => {
                i += 1;
                ctx.samples = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k: &usize| k >= 1)
                    .unwrap_or_else(|| die("--samples expects a positive integer"));
            }
            "--json" => {
                i += 1;
                let path = args
                    .get(i)
                    .filter(|p| !p.is_empty())
                    .unwrap_or_else(|| die("--json expects a file path"));
                // Leaked once per invocation so Ctx stays Copy.
                ctx.json = Some(Box::leak(path.clone().into_boxed_str()));
            }
            other => die(&format!("unknown option: {other}")),
        }
        i += 1;
    }

    match args[0].as_str() {
        "table1" => experiments::table1::run(ctx),
        "table2" => experiments::table2::run(ctx),
        "table3" => experiments::table3::run(ctx),
        "table4" => experiments::table4::run(ctx),
        "fig1" => experiments::fig1::run(ctx),
        "fig2" => experiments::fig2::run(ctx),
        "fig3" => experiments::fig3::run(ctx),
        "fig4" => experiments::fig4::run(ctx),
        "fig5" => experiments::fig5::run(ctx),
        "fig6a" => experiments::fig6::run_a(ctx),
        "fig6b" => experiments::fig6::run_b(ctx),
        "fig6" => experiments::fig6::run(ctx),
        "weak" => experiments::weak::run(ctx),
        "pram" => experiments::pram_table::run(ctx),
        "ext" => experiments::ext::run(ctx),
        "ext1" => experiments::ext::run_algorithms(ctx),
        "ext2" => experiments::ext::run_sm_dm_inversion(ctx),
        "ext3" => experiments::ext::run_locality(ctx),
        "engine" => experiments::engine::run(ctx),
        "all" => {
            experiments::table2::run(ctx);
            experiments::table1::run(ctx);
            experiments::table3::run(ctx);
            experiments::table4::run(ctx);
            experiments::fig1::run(ctx);
            experiments::fig2::run(ctx);
            experiments::fig3::run(ctx);
            experiments::fig4::run(ctx);
            experiments::fig5::run(ctx);
            experiments::fig6::run(ctx);
            experiments::weak::run(ctx);
            experiments::pram_table::run(ctx);
            experiments::ext::run(ctx);
            experiments::engine::run(ctx);
        }
        other => die(&format!("unknown experiment: {other}\n\n{USAGE}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
