//! Chrome trace-event export: serialize a run's spans into the JSON array
//! format `chrome://tracing` / Perfetto load directly.
//!
//! The format (the "Trace Event Format") is a flat JSON array of event
//! objects; the three shapes used here are
//!
//! * complete/duration events (`"ph": "X"`) — a named span with `ts` and
//!   `dur` in **microseconds**, drawn as a bar on track (`pid`, `tid`);
//! * instant events (`"ph": "i"`) — a zero-width marker (direction
//!   switches, anomalies);
//! * metadata events (`"ph": "M"`, `thread_name`) — name a track; one per
//!   pool worker gives the per-worker lanes.
//!
//! [`ChromeTrace`] is deliberately dumb: it knows nothing about rounds or
//! workers, only events with nanosecond inputs (converted to the format's
//! microseconds on write). The engine's `RunReport` does the mapping from
//! run structure to events; drivers write the result with
//! [`ChromeTrace::write`] or [`ChromeTrace::to_json`].

use std::io::Write;

/// An argument value attached to an event (shown in the tracer's detail
/// pane when the event is selected).
#[derive(Clone, Debug)]
pub enum ArgValue {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

#[derive(Clone, Debug)]
struct Event {
    name: String,
    cat: String,
    /// Event phase: `X` (complete), `i` (instant), `M` (metadata),
    /// `b`/`e` (nestable async begin/end).
    ph: char,
    ts_ns: u64,
    dur_ns: Option<u64>,
    tid: u32,
    /// Correlation id for async (`b`/`e`) events; begin/end pairs share it.
    id: Option<u64>,
    args: Vec<(String, ArgValue)>,
}

/// A buffer of trace events, serialized as one Chrome trace-event JSON
/// array. All events share one process (`pid` 1); tracks are `tid`s.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names track `tid` (a `thread_name` metadata event). Tracks render
    /// sorted by `tid`, labeled with `name`.
    pub fn name_track(&mut self, tid: u32, name: impl Into<String>) {
        self.events.push(Event {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_ns: 0,
            dur_ns: None,
            tid,
            id: None,
            args: vec![("name".to_string(), ArgValue::Str(name.into()))],
        });
    }

    /// Adds a complete (duration) event on track `tid`, spanning
    /// `start_ns .. start_ns + dur_ns`.
    pub fn duration(
        &mut self,
        name: impl Into<String>,
        cat: &str,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'X',
            ts_ns: start_ns,
            dur_ns: Some(dur_ns),
            tid,
            id: None,
            args,
        });
    }

    /// Adds an instant event (zero-width marker) on track `tid`.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &str,
        tid: u32,
        ts_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'i',
            ts_ns,
            dur_ns: None,
            tid,
            id: None,
            args,
        });
    }

    /// Opens a nestable async span (`"ph": "b"`): a named segment that may
    /// overlap other spans on the same track — the viewer gives each
    /// `(cat, id)` its own sub-row, which is what per-query queue-wait
    /// segments need (many queries wait concurrently). Close it with
    /// [`ChromeTrace::async_end`] using the same `cat`, `id`, and `name`.
    pub fn async_begin(
        &mut self,
        name: impl Into<String>,
        cat: &str,
        tid: u32,
        ts_ns: u64,
        id: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'b',
            ts_ns,
            dur_ns: None,
            tid,
            id: Some(id),
            args,
        });
    }

    /// Closes the async span opened by [`ChromeTrace::async_begin`] with
    /// the same `(cat, id)`.
    pub fn async_end(&mut self, name: impl Into<String>, cat: &str, tid: u32, ts_ns: u64, id: u64) {
        self.events.push(Event {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'e',
            ts_ns,
            dur_ns: None,
            tid,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Serializes the buffered events as a JSON array string.
    pub fn to_json(&self) -> String {
        let mut out = Vec::new();
        self.write(&mut out).expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("trace JSON is ASCII-escaped UTF-8")
    }

    /// Writes the JSON array to `w`.
    pub fn write(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            write!(
                w,
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \
                 \"ts\": {:.3}, ",
                escape(&e.name),
                escape(&e.cat),
                e.ph,
                e.ts_ns as f64 / 1e3,
            )?;
            if let Some(dur) = e.dur_ns {
                write!(w, "\"dur\": {:.3}, ", dur as f64 / 1e3)?;
            }
            if e.ph == 'i' {
                // Instant scope: thread-local marker.
                write!(w, "\"s\": \"t\", ")?;
            }
            if let Some(id) = e.id {
                write!(w, "\"id\": {id}, ")?;
            }
            write!(w, "\"pid\": 1, \"tid\": {}", e.tid)?;
            if !e.args.is_empty() {
                write!(w, ", \"args\": {{")?;
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "\"{}\": ", escape(k))?;
                    match v {
                        ArgValue::Num(x) if x.is_finite() => write!(w, "{x}")?,
                        // JSON has no NaN/Inf; stringify the rare oddball.
                        ArgValue::Num(x) => write!(w, "\"{x}\"")?,
                        ArgValue::Str(s) => write!(w, "\"{}\"", escape(s))?,
                        ArgValue::Bool(b) => write!(w, "{b}")?,
                    }
                }
                write!(w, "}}")?;
            }
            writeln!(w, "}}{comma}")?;
        }
        writeln!(w, "]")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_microsecond_timestamps() {
        let mut t = ChromeTrace::new();
        t.name_track(0, "rounds");
        t.duration(
            "round 0",
            "round",
            0,
            1_500,
            2_000,
            vec![("frontier".to_string(), ArgValue::Num(7.0))],
        );
        t.instant("switch", "policy", 0, 3_500, vec![]);
        let json = t.to_json();
        assert_eq!(t.len(), 3);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        // 1500 ns = 1.5 µs, 2000 ns = 2 µs.
        assert!(json.contains("\"ts\": 1.500"));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("\"frontier\": 7"));
        // Balanced structure; no trailing comma before the closing bracket.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = ChromeTrace::new();
        t.name_track(3, "odd \"name\"\nwith\tcontrol\u{1}");
        let json = t.to_json();
        assert!(json.contains("odd \\\"name\\\"\\nwith\\tcontrol\\u0001"));
    }

    #[test]
    fn arg_values_cover_all_json_shapes() {
        let mut t = ChromeTrace::new();
        t.instant(
            "x",
            "c",
            0,
            0,
            vec![
                ("n".to_string(), 3u64.into()),
                ("s".to_string(), "v".into()),
                ("b".to_string(), true.into()),
                ("bad".to_string(), ArgValue::Num(f64::NAN)),
            ],
        );
        let json = t.to_json();
        assert!(json.contains("\"n\": 3"));
        assert!(json.contains("\"s\": \"v\""));
        assert!(json.contains("\"b\": true"));
        assert!(json.contains("\"bad\": \"NaN\""), "no bare NaN in JSON");
    }

    #[test]
    fn async_spans_pair_by_id() {
        let mut t = ChromeTrace::new();
        t.async_begin(
            "queue bfs",
            "queue",
            0,
            1_000,
            7,
            vec![("algo".to_string(), "bfs".into())],
        );
        t.async_end("queue bfs", "queue", 0, 3_000, 7);
        let json = t.to_json();
        assert!(json.contains("\"ph\": \"b\""));
        assert!(json.contains("\"ph\": \"e\""));
        // Both carry the correlation id; timestamps are µs.
        assert_eq!(json.matches("\"id\": 7").count(), 2);
        assert!(json.contains("\"ts\": 1.000"));
        assert!(json.contains("\"ts\": 3.000"));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let json = ChromeTrace::new().to_json();
        assert_eq!(json.trim(), "[\n]");
        assert!(ChromeTrace::new().is_empty());
    }
}
