//! Relaxed-atomic event counters: the software analogue of the manually
//! counted atomics/locks and the PAPI read/write/branch events of Table 1.

use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::Probe;

/// A snapshot of counted events. Field names follow Table 1's rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Memory reads issued.
    pub reads: u64,
    /// Memory writes issued.
    pub writes: u64,
    /// Atomic RMW operations (FAA/CAS).
    pub atomics: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Conditional branches.
    pub branches_cond: u64,
    /// Unconditional branches.
    pub branches_uncond: u64,
    /// Barrier synchronizations.
    pub barriers: u64,
    /// Remote updates buffered for another owner instead of applied with an
    /// atomic (§5 partition-awareness: the owner-computes exchange turns a
    /// would-be CAS into one buffered send).
    pub remote_sends: u64,
    /// L1 data-cache misses (filled by the cache simulator probe).
    pub l1_misses: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// L3 cache misses.
    pub l3_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
}

impl EventCounts {
    /// Total synchronization events in the paper's sense (§2.4): atomics,
    /// locks, and barriers.
    pub fn synchronization(&self) -> u64 {
        self.atomics + self.locks + self.barriers
    }

    /// Total communication events in the paper's sense (§2.4): reads and
    /// writes.
    pub fn communication(&self) -> u64 {
        self.reads + self.writes
    }

    /// Element-wise difference, saturating at zero.
    pub fn saturating_sub(&self, other: &EventCounts) -> EventCounts {
        EventCounts {
            reads: self.reads.saturating_sub(other.reads),
            writes: self.writes.saturating_sub(other.writes),
            atomics: self.atomics.saturating_sub(other.atomics),
            locks: self.locks.saturating_sub(other.locks),
            branches_cond: self.branches_cond.saturating_sub(other.branches_cond),
            branches_uncond: self.branches_uncond.saturating_sub(other.branches_uncond),
            barriers: self.barriers.saturating_sub(other.barriers),
            remote_sends: self.remote_sends.saturating_sub(other.remote_sends),
            l1_misses: self.l1_misses.saturating_sub(other.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(other.l2_misses),
            l3_misses: self.l3_misses.saturating_sub(other.l3_misses),
            dtlb_misses: self.dtlb_misses.saturating_sub(other.dtlb_misses),
        }
    }
}

/// Field-wise accumulation — the one merge definition every shard fold
/// uses. It lives next to the struct so a new field cannot be added to
/// [`EventCounts`] without the compiler pointing here (no `..Default` in
/// the body; see the drift-guard test).
impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        let EventCounts {
            reads,
            writes,
            atomics,
            locks,
            branches_cond,
            branches_uncond,
            barriers,
            remote_sends,
            l1_misses,
            l2_misses,
            l3_misses,
            dtlb_misses,
        } = rhs;
        self.reads += reads;
        self.writes += writes;
        self.atomics += atomics;
        self.locks += locks;
        self.branches_cond += branches_cond;
        self.branches_uncond += branches_uncond;
        self.barriers += barriers;
        self.remote_sends += remote_sends;
        self.l1_misses += l1_misses;
        self.l2_misses += l2_misses;
        self.l3_misses += l3_misses;
        self.dtlb_misses += dtlb_misses;
    }
}

/// Thread-safe counting probe. Counters use relaxed ordering: totals are
/// exact once the instrumented region has joined all its threads, and no
/// ordering with the counted operations themselves is needed.
#[derive(Debug, Default)]
pub struct CountingProbe {
    reads: AtomicU64,
    writes: AtomicU64,
    atomics: AtomicU64,
    locks: AtomicU64,
    branches_cond: AtomicU64,
    branches_uncond: AtomicU64,
    barriers: AtomicU64,
    remote_sends: AtomicU64,
}

impl CountingProbe {
    /// A fresh probe with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the counters.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            reads: self.reads.load(Relaxed),
            writes: self.writes.load(Relaxed),
            atomics: self.atomics.load(Relaxed),
            locks: self.locks.load(Relaxed),
            branches_cond: self.branches_cond.load(Relaxed),
            branches_uncond: self.branches_uncond.load(Relaxed),
            barriers: self.barriers.load(Relaxed),
            remote_sends: self.remote_sends.load(Relaxed),
            ..EventCounts::default()
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Relaxed);
        self.writes.store(0, Relaxed);
        self.atomics.store(0, Relaxed);
        self.locks.store(0, Relaxed);
        self.branches_cond.store(0, Relaxed);
        self.branches_uncond.store(0, Relaxed);
        self.barriers.store(0, Relaxed);
        self.remote_sends.store(0, Relaxed);
    }
}

impl Probe for CountingProbe {
    #[inline]
    fn read(&self, _addr: usize, _bytes: usize) {
        self.reads.fetch_add(1, Relaxed);
    }

    #[inline]
    fn write(&self, _addr: usize, _bytes: usize) {
        self.writes.fetch_add(1, Relaxed);
    }

    #[inline]
    fn atomic_rmw(&self, _addr: usize, _bytes: usize) {
        self.atomics.fetch_add(1, Relaxed);
    }

    #[inline]
    fn lock(&self) {
        self.locks.fetch_add(1, Relaxed);
    }

    #[inline]
    fn branch_cond(&self) {
        self.branches_cond.fetch_add(1, Relaxed);
    }

    #[inline]
    fn branch_uncond(&self) {
        self.branches_uncond.fetch_add(1, Relaxed);
    }

    #[inline]
    fn barrier(&self) {
        self.barriers.fetch_add(1, Relaxed);
    }

    #[inline]
    fn remote_send(&self, _addr: usize, _bytes: usize) {
        self.remote_sends.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let p = CountingProbe::new();
        p.read(0, 8);
        p.read(8, 8);
        p.write(0, 8);
        p.atomic_rmw(0, 8);
        p.lock();
        p.branch_cond();
        p.branch_uncond();
        p.barrier();
        p.remote_send(0, 12);
        let c = p.counts();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.locks, 1);
        assert_eq!(c.branches_cond, 1);
        assert_eq!(c.branches_uncond, 1);
        assert_eq!(c.barriers, 1);
        assert_eq!(c.remote_sends, 1);
        assert_eq!(c.synchronization(), 3);
        assert_eq!(c.communication(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let p = CountingProbe::new();
        p.read(0, 8);
        p.lock();
        p.reset();
        assert_eq!(p.counts(), EventCounts::default());
    }

    #[test]
    fn counting_is_thread_safe() {
        let p = CountingProbe::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        p.read(0, 8);
                        p.atomic_rmw(0, 8);
                    }
                });
            }
        });
        let c = p.counts();
        assert_eq!(c.reads, 4000);
        assert_eq!(c.atomics, 4000);
    }

    #[test]
    fn merge_drift_guard_sums_every_field() {
        // Both literals are exhaustive on purpose (no `..Default`): adding
        // a 13th field to `EventCounts` fails to compile here AND in
        // `AddAssign`'s destructuring, so it cannot silently vanish from
        // shard merges.
        let ones = EventCounts {
            reads: 1,
            writes: 1,
            atomics: 1,
            locks: 1,
            branches_cond: 1,
            branches_uncond: 1,
            barriers: 1,
            remote_sends: 1,
            l1_misses: 1,
            l2_misses: 1,
            l3_misses: 1,
            dtlb_misses: 1,
        };
        let mut merged = ones;
        merged += ones;
        let twos = EventCounts {
            reads: 2,
            writes: 2,
            atomics: 2,
            locks: 2,
            branches_cond: 2,
            branches_uncond: 2,
            barriers: 2,
            remote_sends: 2,
            l1_misses: 2,
            l2_misses: 2,
            l3_misses: 2,
            dtlb_misses: 2,
        };
        assert_eq!(merged, twos, "every field must double under merge");
        let mut from_zero = EventCounts::default();
        from_zero += ones;
        assert_eq!(from_zero, ones);
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = EventCounts {
            reads: 5,
            ..Default::default()
        };
        let b = EventCounts {
            reads: 7,
            writes: 1,
            ..Default::default()
        };
        let d = a.saturating_sub(&b);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 0);
        let e = b.saturating_sub(&a);
        assert_eq!(e.reads, 2);
    }
}
