//! Table-1-style event reports: named columns of [`EventCounts`] with
//! human-scaled formatting (`234M`, `10,815B`, …) mirroring the paper's
//! presentation.

use std::fmt;

use crate::EventCounts;

/// A collection of named event-count columns, printable as a Table-1-style
/// block (events as rows, variants as columns).
#[derive(Clone, Debug, Default)]
pub struct EventReport {
    columns: Vec<(String, EventCounts)>,
}

/// Formats a count the way the paper's Table 1 does: `k`, `M`, `B`, `T`
/// suffixes with three significant digits.
pub fn human_count(v: u64) -> String {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "T"),
        (1_000_000_000, "B"),
        (1_000_000, "M"),
        (1_000, "k"),
    ];
    for (scale, suffix) in UNITS {
        if v >= scale {
            let scaled = v as f64 / scale as f64;
            return if scaled >= 100.0 {
                format!("{scaled:.0}{suffix}")
            } else if scaled >= 10.0 {
                format!("{scaled:.1}{suffix}")
            } else {
                format!("{scaled:.2}{suffix}")
            };
        }
    }
    v.to_string()
}

impl EventReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named column (e.g. "Push", "Push+PA", "Pull").
    pub fn add_column(&mut self, name: impl Into<String>, counts: EventCounts) {
        self.columns.push((name.into(), counts));
    }

    /// The columns added so far.
    pub fn columns(&self) -> &[(String, EventCounts)] {
        &self.columns
    }

    /// Looks a column up by name.
    pub fn get(&self, name: &str) -> Option<&EventCounts> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    fn rows(&self) -> Vec<(&'static str, Vec<u64>)> {
        let col = |f: fn(&EventCounts) -> u64| -> Vec<u64> {
            self.columns.iter().map(|(_, c)| f(c)).collect()
        };
        vec![
            ("L1 misses", col(|c| c.l1_misses)),
            ("L2 misses", col(|c| c.l2_misses)),
            ("L3 misses", col(|c| c.l3_misses)),
            ("TLB misses (data)", col(|c| c.dtlb_misses)),
            ("atomics", col(|c| c.atomics)),
            ("locks", col(|c| c.locks)),
            ("remote sends", col(|c| c.remote_sends)),
            ("reads", col(|c| c.reads)),
            ("writes", col(|c| c.writes)),
            ("branches (uncond)", col(|c| c.branches_uncond)),
            ("branches (cond)", col(|c| c.branches_cond)),
        ]
    }
}

impl fmt::Display for EventReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<18}", "Event")?;
        for (name, _) in &self.columns {
            write!(f, " {name:>10}")?;
        }
        writeln!(f)?;
        for (label, values) in self.rows() {
            write!(f, "{label:<18}")?;
            for v in values {
                write!(f, " {:>10}", human_count(v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_count_matches_paper_style() {
        assert_eq!(human_count(0), "0");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1_500), "1.50k");
        assert_eq!(human_count(234_000_000), "234M");
        assert_eq!(human_count(10_815_000_000_000), "10.8T");
        assert_eq!(human_count(76_117_000), "76.1M");
    }

    #[test]
    fn report_renders_columns_and_rows() {
        let mut r = EventReport::new();
        r.add_column(
            "Push",
            EventCounts {
                atomics: 234_000_000,
                ..Default::default()
            },
        );
        r.add_column("Pull", EventCounts::default());
        let s = r.to_string();
        assert!(s.contains("Push"));
        assert!(s.contains("Pull"));
        assert!(s.contains("atomics"));
        assert!(s.contains("234M"));
        assert_eq!(r.get("Push").unwrap().atomics, 234_000_000);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn rows_cover_all_table1_events() {
        let r = EventReport::new();
        let labels: Vec<_> = r.rows().iter().map(|(l, _)| *l).collect();
        for expected in [
            "L1 misses",
            "L2 misses",
            "L3 misses",
            "TLB misses (data)",
            "atomics",
            "locks",
            "remote sends",
            "reads",
            "writes",
            "branches (uncond)",
            "branches (cond)",
        ] {
            assert!(labels.contains(&expected), "{expected} missing");
        }
    }
}
