//! Event telemetry standing in for PAPI (§6 of the paper).
//!
//! The paper backs its push/pull analysis with nine hardware counters
//! (L1/L2/L3 misses, data/instruction TLB misses, reads, writes,
//! conditional/unconditional branches) plus manually counted atomics and
//! locks. This crate reproduces that instrumentation in software:
//!
//! * [`Probe`] — the event hooks every algorithm kernel is generic over.
//! * [`NullProbe`] — a zero-sized no-op probe; with it the instrumented
//!   kernels compile to the same code as uninstrumented ones (all hooks are
//!   `#[inline(always)]` empty bodies). Benchmarks use this.
//! * [`CountingProbe`] — tallies the event classes of Table 1 with relaxed
//!   atomic counters.
//! * [`cachesim::CacheSimProbe`] — additionally drives a set-associative
//!   L1/L2/L3 + dTLB simulator with the *actual addresses* the algorithm
//!   touches, so the cache-miss columns of Table 1 reflect real access
//!   patterns (CSR streaming vs. random gathers). Instruction-TLB misses are
//!   not modeled (they are negligible in the paper's data and have no
//!   software analogue here).
//!
//! §6's other half is *time*: the paper's counters explain a push/pull gap,
//! but the gap itself is measured in timed runs. Two modules carry that
//! side of the discipline:
//!
//! * [`timing`] — a monotonic span clock ([`timing::Clock`]), a
//!   fixed-bucket log₂ histogram with p50/p95/p99
//!   ([`timing::LogHistogram`]), and the per-worker busy/idle/claims
//!   ledger ([`timing::WorkerLap`]) the engine pool fills in, with the
//!   `max/mean` load-imbalance ratio ([`timing::imbalance`]).
//! * [`trace`] — Chrome trace-event JSON export
//!   ([`trace::ChromeTrace`]): per-round duration events, per-worker
//!   tracks, instant markers for direction switches, and nestable async
//!   spans for overlapping segments (per-query queue waits), loadable in
//!   `chrome://tracing`/Perfetto.
//!
//! A resident *service* needs one more shape — series that accumulate
//! across queries, keyed by labels, continuously exportable:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   windowed [`LogHistogram`]s ([`metrics::WindowedHistogram`]: a ring of
//!   time buckets so one series answers "since boot" *and* "last 60 s"),
//!   with a dependency-free Prometheus text-exposition renderer
//!   ([`metrics::MetricsRegistry::render_prometheus`]).
//!
//! How much of this a run records is the [`MetricsLevel`] knob: `Off`
//! keeps the zero-overhead `NullProbe` path untouched, each higher level
//! adds one layer (policy decisions → timing → full trace substrate).

pub mod cachesim;
pub mod counters;
pub mod metrics;
pub mod report;
pub mod timing;
pub mod trace;

pub use cachesim::CacheSimProbe;
pub use counters::{CountingProbe, EventCounts};
pub use metrics::{Labels, MetricsRegistry, WindowedHistogram};
pub use report::EventReport;
pub use timing::{LogHistogram, WorkerLap};
pub use trace::ChromeTrace;

/// How much run-wide observability a driver collects, beyond what its
/// probe type already counts. Levels are cumulative (`Ord`): each one
/// includes everything below it.
///
/// The level gates what the *executor* records about its own behavior
/// (decisions, clocks, per-worker laps); event counting stays the probe
/// type's job ([`NullProbe`] vs. [`CountingProbe`]), so `Off` leaves the
/// uninstrumented hot path byte-for-byte identical to a build without this
/// machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricsLevel {
    /// Record nothing: today's zero-overhead path.
    #[default]
    Off,
    /// Record policy decision records (no clock reads).
    Counts,
    /// Additionally read clocks: per-round durations, per-worker laps,
    /// run elapsed time.
    Timing,
    /// Additionally keep the per-round × per-worker substrate a Chrome
    /// trace needs (round start stamps, per-round worker busy spans).
    Trace,
}

impl MetricsLevel {
    /// Parses a level name (`off`/`counts`/`timing`/`trace`, any ASCII
    /// case).
    pub fn parse(s: &str) -> Option<MetricsLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(MetricsLevel::Off),
            "counts" => Some(MetricsLevel::Counts),
            "timing" => Some(MetricsLevel::Timing),
            "trace" => Some(MetricsLevel::Trace),
            _ => None,
        }
    }

    /// Whether this level records timing (clock reads).
    pub fn times(self) -> bool {
        self >= MetricsLevel::Timing
    }

    /// Whether this level keeps the full trace substrate.
    pub fn traces(self) -> bool {
        self >= MetricsLevel::Trace
    }
}

/// Event hooks for instrumented graph kernels.
///
/// Addresses are the real addresses of the cells the kernel touches (pass
/// `&x as *const _ as usize`); `bytes` is the access width. The default
/// implementations are empty so probes only override what they track.
pub trait Probe: Sync {
    /// A memory read of `bytes` at `addr`.
    #[inline(always)]
    fn read(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// A memory write of `bytes` at `addr`.
    #[inline(always)]
    fn write(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// An atomic read-modify-write (FAA or CAS, §2.3) on the cell at `addr`.
    #[inline(always)]
    fn atomic_rmw(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// A lock acquisition (push-based PR/BC use locks because CPUs lack
    /// float atomics, §4.1/§4.5).
    #[inline(always)]
    fn lock(&self) {}

    /// A conditional branch (taken or not).
    #[inline(always)]
    fn branch_cond(&self) {}

    /// An unconditional branch (loop back-edges of the hot inner loops).
    #[inline(always)]
    fn branch_uncond(&self) {}

    /// A barrier synchronization (the partition-aware push phases of §5 are
    /// separated by one).
    #[inline(always)]
    fn barrier(&self) {}

    /// A remote update buffered for its owner instead of applied with an
    /// atomic (§5 partition-awareness). `addr`/`bytes` describe the buffered
    /// payload cell, mirroring [`Probe::write`].
    #[inline(always)]
    fn remote_send(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }
}

/// The no-op probe: zero-sized, every hook empty. `&NullProbe` is what the
/// timed benchmark paths pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Convenience: compute the address of a slice element for probe calls.
#[inline(always)]
pub fn addr_of_index<T>(slice: &[T], i: usize) -> usize {
    debug_assert!(i < slice.len());
    slice.as_ptr() as usize + i * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_levels_are_ordered_and_parse() {
        assert!(MetricsLevel::Off < MetricsLevel::Counts);
        assert!(MetricsLevel::Counts < MetricsLevel::Timing);
        assert!(MetricsLevel::Timing < MetricsLevel::Trace);
        assert_eq!(MetricsLevel::default(), MetricsLevel::Off);
        assert!(!MetricsLevel::Counts.times());
        assert!(MetricsLevel::Timing.times() && !MetricsLevel::Timing.traces());
        assert!(MetricsLevel::Trace.times() && MetricsLevel::Trace.traces());
        for (name, level) in [
            ("off", MetricsLevel::Off),
            ("counts", MetricsLevel::Counts),
            ("Timing", MetricsLevel::Timing),
            ("TRACE", MetricsLevel::Trace),
        ] {
            assert_eq!(MetricsLevel::parse(name), Some(level));
        }
        assert_eq!(MetricsLevel::parse("verbose"), None);
    }

    #[test]
    fn null_probe_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
    }

    #[test]
    fn null_probe_hooks_are_callable() {
        let p = NullProbe;
        p.read(0, 8);
        p.write(0, 8);
        p.atomic_rmw(0, 8);
        p.lock();
        p.branch_cond();
        p.branch_uncond();
        p.barrier();
        p.remote_send(0, 12);
    }

    #[test]
    fn addr_of_index_strides_by_element_size() {
        let v = vec![0u64; 4];
        assert_eq!(addr_of_index(&v, 1) - addr_of_index(&v, 0), 8);
        let w = vec![0u32; 4];
        assert_eq!(addr_of_index(&w, 3) - addr_of_index(&w, 0), 12);
    }
}
