//! Event telemetry standing in for PAPI (§6 of the paper).
//!
//! The paper backs its push/pull analysis with nine hardware counters
//! (L1/L2/L3 misses, data/instruction TLB misses, reads, writes,
//! conditional/unconditional branches) plus manually counted atomics and
//! locks. This crate reproduces that instrumentation in software:
//!
//! * [`Probe`] — the event hooks every algorithm kernel is generic over.
//! * [`NullProbe`] — a zero-sized no-op probe; with it the instrumented
//!   kernels compile to the same code as uninstrumented ones (all hooks are
//!   `#[inline(always)]` empty bodies). Benchmarks use this.
//! * [`CountingProbe`] — tallies the event classes of Table 1 with relaxed
//!   atomic counters.
//! * [`cachesim::CacheSimProbe`] — additionally drives a set-associative
//!   L1/L2/L3 + dTLB simulator with the *actual addresses* the algorithm
//!   touches, so the cache-miss columns of Table 1 reflect real access
//!   patterns (CSR streaming vs. random gathers). Instruction-TLB misses are
//!   not modeled (they are negligible in the paper's data and have no
//!   software analogue here).

pub mod cachesim;
pub mod counters;
pub mod report;

pub use cachesim::CacheSimProbe;
pub use counters::{CountingProbe, EventCounts};
pub use report::EventReport;

/// Event hooks for instrumented graph kernels.
///
/// Addresses are the real addresses of the cells the kernel touches (pass
/// `&x as *const _ as usize`); `bytes` is the access width. The default
/// implementations are empty so probes only override what they track.
pub trait Probe: Sync {
    /// A memory read of `bytes` at `addr`.
    #[inline(always)]
    fn read(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// A memory write of `bytes` at `addr`.
    #[inline(always)]
    fn write(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// An atomic read-modify-write (FAA or CAS, §2.3) on the cell at `addr`.
    #[inline(always)]
    fn atomic_rmw(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }

    /// A lock acquisition (push-based PR/BC use locks because CPUs lack
    /// float atomics, §4.1/§4.5).
    #[inline(always)]
    fn lock(&self) {}

    /// A conditional branch (taken or not).
    #[inline(always)]
    fn branch_cond(&self) {}

    /// An unconditional branch (loop back-edges of the hot inner loops).
    #[inline(always)]
    fn branch_uncond(&self) {}

    /// A barrier synchronization (the partition-aware push phases of §5 are
    /// separated by one).
    #[inline(always)]
    fn barrier(&self) {}

    /// A remote update buffered for its owner instead of applied with an
    /// atomic (§5 partition-awareness). `addr`/`bytes` describe the buffered
    /// payload cell, mirroring [`Probe::write`].
    #[inline(always)]
    fn remote_send(&self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }
}

/// The no-op probe: zero-sized, every hook empty. `&NullProbe` is what the
/// timed benchmark paths pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Convenience: compute the address of a slice element for probe calls.
#[inline(always)]
pub fn addr_of_index<T>(slice: &[T], i: usize) -> usize {
    debug_assert!(i < slice.len());
    slice.as_ptr() as usize + i * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
    }

    #[test]
    fn null_probe_hooks_are_callable() {
        let p = NullProbe;
        p.read(0, 8);
        p.write(0, 8);
        p.atomic_rmw(0, 8);
        p.lock();
        p.branch_cond();
        p.branch_uncond();
        p.barrier();
        p.remote_send(0, 12);
    }

    #[test]
    fn addr_of_index_strides_by_element_size() {
        let v = vec![0u64; 4];
        assert_eq!(addr_of_index(&v, 1) - addr_of_index(&v, 0), 8);
        let w = vec![0u32; 4];
        assert_eq!(addr_of_index(&w, 3) - addr_of_index(&w, 0), 12);
    }
}
