//! Wall-clock instrumentation: the *time* half of the paper's measurement
//! discipline (§6 backs every claim with timed runs, not just counters).
//!
//! Three small pieces, deliberately independent of what is being timed:
//!
//! * [`Clock`] — a monotonic span clock anchored at construction. Every
//!   timestamp it hands out is a `u64` nanosecond offset from that anchor,
//!   so spans from one clock compose into a single timeline (what the
//!   Chrome-trace export in [`crate::trace`] needs).
//! * [`LogHistogram`] — a fixed-bucket log₂ histogram of `u64` samples
//!   (nanoseconds, bytes, counts — it does not care) with
//!   p50/p95/p99 estimation. Fixed 65-bucket layout means recording is one
//!   `leading_zeros` plus one increment: cheap enough to sit on a hot path,
//!   and two histograms merge bucket-wise without resampling.
//! * [`WorkerLap`] — one worker's busy/idle/claim account over some
//!   interval, the per-thread load ledger the engine's pool fills in and
//!   the load-imbalance ratio is computed from.

use std::ops::AddAssign;
use std::time::Instant;

/// A monotonic span clock: nanosecond offsets from a fixed anchor.
///
/// `Instant` is opaque and cannot be serialized or subtracted across
/// threads without carrying the `Instant` itself around; a `Clock` pins one
/// anchor and turns every subsequent reading into a plain `u64`, which
/// round/worker spans can store and trace exporters can emit directly.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    anchor: Instant,
}

impl Clock {
    /// A clock anchored at "now": the next [`Clock::now_ns`] is ~0.
    pub fn start() -> Self {
        Self {
            anchor: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the anchor. Monotone non-decreasing.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime.
        self.anchor.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::start()
    }
}

/// Number of buckets: one for zero plus one per possible `log₂` of a `u64`.
const BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Quantiles are estimated as the upper bound of the
/// bucket containing the requested rank, clamped to the observed maximum —
/// a conservative (never-underestimating) answer with bounded 2× relative
/// error, which is what latency percentiles need.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the sample of rank `⌈q·count⌉`, clamped to the
    /// observed max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (bucket-wise; exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One worker's load account over an interval: how long it executed chunks,
/// how long it sat out rounds it did not (or could not) help with, and how
/// many chunks it claimed from the dynamic scheduler.
///
/// The invariant a recorder maintains is `busy_ns + idle_ns ≈` (recorded
/// wall time) for every worker, so `busy / (busy + idle)` is the worker's
/// utilization and `max(busy) / mean(busy)` across workers is the
/// load-imbalance ratio (1.0 = perfectly balanced).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerLap {
    /// Nanoseconds spent executing claimed chunks.
    pub busy_ns: u64,
    /// Nanoseconds inside recorded rounds *not* spent executing chunks
    /// (claim overhead, barrier waits, rounds that ran inline on another
    /// thread).
    pub idle_ns: u64,
    /// Chunks claimed from the dynamic scheduler.
    pub chunks_claimed: u64,
}

impl WorkerLap {
    /// Busy share of the recorded time, in `0.0 ..= 1.0` (0 if nothing was
    /// recorded).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

impl AddAssign for WorkerLap {
    fn add_assign(&mut self, rhs: WorkerLap) {
        self.busy_ns += rhs.busy_ns;
        self.idle_ns += rhs.idle_ns;
        self.chunks_claimed += rhs.chunks_claimed;
    }
}

/// Load-imbalance ratio of a worker set: `max(busy) / mean(busy)`.
///
/// 1.0 is perfect balance; 2.0 means the most-loaded worker did twice the
/// mean work — the classic trigger threshold for rebalancing. Returns 0.0
/// for an empty set and 1.0 when no busy time was recorded at all (an idle
/// fleet is trivially balanced).
pub fn imbalance(laps: &[WorkerLap]) -> f64 {
    if laps.is_empty() {
        return 0.0;
    }
    let max = laps.iter().map(|l| l.busy_ns).max().unwrap_or(0);
    if max == 0 {
        return 1.0;
    }
    let mean = laps.iter().map(|l| l.busy_ns).sum::<u64>() as f64 / laps.len() as f64;
    max as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_starts_near_zero() {
        let c = Clock::start();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(a <= b);
        assert!(a < 1_000_000_000, "anchor is 'now', not the epoch");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_percentiles_bound_the_samples() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500, in bucket [256, 512): upper bound 511.
        assert_eq!(h.p50(), 511);
        // p95 = 950 and p99 = 990 both land in [512, 1024), clamped to max.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.p99(), 1000);
        // A quantile never underestimates its exact counterpart.
        for (q, exact) in [(0.5, 500), (0.95, 950), (0.99, 990)] {
            assert!(h.quantile(q) >= exact, "q={q}");
        }
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_histogram_answers_every_accessor_with_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0, "min() must not leak the u64::MAX sentinel");
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn merge_with_empty_preserves_min_in_both_directions() {
        let mut nonempty = LogHistogram::new();
        nonempty.record(42);
        nonempty.record(7);

        // Non-empty absorbing empty: nothing changes.
        let mut a = nonempty.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), 42);

        // Empty absorbing non-empty: the sentinel min must not survive.
        let mut b = LogHistogram::new();
        b.merge(&nonempty);
        assert_eq!(b.count(), 2);
        assert_eq!(b.min(), 7);
        assert_eq!(b.max(), 42);
        assert_eq!(b.p50(), nonempty.p50());

        // Empty absorbing empty stays empty (and min() stays 0).
        let mut c = LogHistogram::new();
        c.merge(&LogHistogram::new());
        assert_eq!(c.count(), 0);
        assert_eq!(c.min(), 0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [3u64, 17, 200, 9000] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.p50(), c.p50());
    }

    #[test]
    fn lap_accumulates_and_reports_utilization() {
        let mut lap = WorkerLap::default();
        lap += WorkerLap {
            busy_ns: 300,
            idle_ns: 100,
            chunks_claimed: 4,
        };
        lap += WorkerLap {
            busy_ns: 100,
            idle_ns: 300,
            chunks_claimed: 1,
        };
        assert_eq!(lap.busy_ns, 400);
        assert_eq!(lap.idle_ns, 400);
        assert_eq!(lap.chunks_claimed, 5);
        assert!((lap.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(WorkerLap::default().utilization(), 0.0);
    }

    #[test]
    fn imbalance_ratio_is_max_over_mean() {
        let laps = [
            WorkerLap {
                busy_ns: 300,
                ..Default::default()
            },
            WorkerLap {
                busy_ns: 100,
                ..Default::default()
            },
        ];
        // mean = 200, max = 300.
        assert!((imbalance(&laps) - 1.5).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[WorkerLap::default(); 4]), 1.0);
    }
}
