//! Service-level metrics: a registry of named, label-tagged series with
//! Prometheus text exposition.
//!
//! [`crate::timing`] instruments *one run*; a resident service needs the
//! complementary shape: counters and latency distributions that accumulate
//! across queries, keyed by labels (`{algo="bfs", outcome="ok"}`), and
//! answer both "since boot" and "over the last minute". Three series
//! kinds live in a [`MetricsRegistry`]:
//!
//! * **Counters** — monotonic `u64` totals (`pp_serve_queries_total`).
//! * **Gauges** — last-written `f64` levels (`pp_serve_queue_depth`).
//! * **Windowed histograms** — a cumulative [`LogHistogram`] *plus* a ring
//!   of `N` time-bucketed histograms ([`WindowedHistogram`]), so the same
//!   series yields a since-boot p99 and a last-`N×width` p99. Buckets
//!   rotate lazily on record/read; an idle series costs nothing.
//!
//! [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//! exposition format (`# HELP`/`# TYPE` lines, escaped label values,
//! histograms as `summary` series with `quantile` labels plus `_sum` and
//! `_count`) without any dependency — any Prometheus-compatible scraper
//! ingests it as-is.
//!
//! Timestamps are caller-provided nanoseconds (from a
//! [`crate::timing::Clock`]), never read internally, so every rotation
//! boundary is unit-testable with a synthetic clock.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::timing::LogHistogram;

/// A label set: sorted `(key, value)` pairs. Construction sorts, so two
/// label sets with the same pairs in different orders are the same series.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// Builds a label set from `(key, value)` pairs (order-insensitive).
    pub fn new<K: Into<String>, V: Into<String>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(k, val)| (k.into(), val.into()))
            .collect();
        v.sort();
        Self(v)
    }

    /// The empty label set (an unlabeled series).
    pub fn none() -> Self {
        Self(Vec::new())
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Renders as `{k="v", ...}` (empty string for no labels), with label
    /// values escaped per the Prometheus text format (`\\`, `\"`, `\n`).
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        if self.0.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self
            .0
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Escapes a label value for the Prometheus text format: backslash, double
/// quote, and newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A [`LogHistogram`] ring over `buckets × bucket_ns` of recent time plus
/// a cumulative total, so one series answers "since boot" and "last
/// window" without resampling.
///
/// Bucket `i` covers `[i·bucket_ns, (i+1)·bucket_ns)`: a sample landing
/// exactly on a bucket edge opens the *next* bucket (half-open intervals,
/// no sample counted twice). Rotation is lazy — recording or reading at
/// time `t` first clears every ring slot whose previous occupant aged out.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    total: LogHistogram,
    ring: Vec<LogHistogram>,
    /// Absolute bucket index each ring slot currently holds.
    slot_epoch: Vec<u64>,
    bucket_ns: u64,
}

impl WindowedHistogram {
    /// A window of `buckets` ring slots, each `bucket_ns` wide. The
    /// reachable window is `buckets × bucket_ns` nanoseconds.
    pub fn new(buckets: usize, bucket_ns: u64) -> Self {
        let buckets = buckets.max(1);
        Self {
            total: LogHistogram::new(),
            ring: vec![LogHistogram::new(); buckets],
            slot_epoch: vec![u64::MAX; buckets],
            bucket_ns: bucket_ns.max(1),
        }
    }

    /// Width of the full window in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.ring.len() as u64 * self.bucket_ns
    }

    /// The slot for absolute bucket `epoch`, cleared if a stale occupant
    /// is still in it.
    fn slot(&mut self, epoch: u64) -> &mut LogHistogram {
        let i = (epoch % self.ring.len() as u64) as usize;
        if self.slot_epoch[i] != epoch {
            self.ring[i] = LogHistogram::new();
            self.slot_epoch[i] = epoch;
        }
        &mut self.ring[i]
    }

    /// Records `value` at time `now_ns` into the total and the live bucket.
    pub fn record(&mut self, now_ns: u64, value: u64) {
        self.total.record(value);
        let epoch = now_ns / self.bucket_ns;
        self.slot(epoch).record(value);
    }

    /// The since-boot histogram.
    pub fn total(&self) -> &LogHistogram {
        &self.total
    }

    /// The merged histogram of every bucket still inside the window ending
    /// at `now_ns` (the current bucket and the `buckets - 1` before it).
    pub fn windowed(&self, now_ns: u64) -> LogHistogram {
        let epoch = now_ns / self.bucket_ns;
        let oldest = epoch.saturating_sub(self.ring.len() as u64 - 1);
        let mut merged = LogHistogram::new();
        for (i, h) in self.ring.iter().enumerate() {
            let e = self.slot_epoch[i];
            if e != u64::MAX && e >= oldest && e <= epoch {
                merged.merge(h);
            }
        }
        merged
    }
}

/// One series' payload.
#[derive(Clone, Debug)]
enum Series {
    Counter(u64),
    Gauge(f64),
    // Boxed: a windowed histogram is ~100x the size of the scalar variants.
    Histogram(Box<WindowedHistogram>),
}

/// A metric family: every series sharing one name, plus its metadata.
#[derive(Clone, Debug)]
struct Family {
    help: String,
    series: BTreeMap<Labels, Series>,
}

/// The registry: named families of labeled series, all behind one lock.
///
/// The lock is uncontended in practice — services record a handful of
/// samples per query, each a sub-microsecond critical section — and keeps
/// the whole structure coherent for rendering. Mixing kinds under one name
/// panics: that is a programming error, not load-time data.
#[derive(Debug)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    window_buckets: usize,
    bucket_ns: u64,
}

/// A point-in-time digest of one windowed-histogram series: the since-boot
/// and in-window histograms side by side.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Everything recorded since the registry was created.
    pub total: LogHistogram,
    /// Only the samples inside the window ending at the query time.
    pub windowed: LogHistogram,
}

impl MetricsRegistry {
    /// A registry whose histogram series keep `window_buckets` ring slots
    /// of `bucket_ns` each (the "last 60s" default is `60 × 1s`).
    pub fn new(window_buckets: usize, bucket_ns: u64) -> Self {
        Self {
            families: Mutex::new(BTreeMap::new()),
            window_buckets: window_buckets.max(1),
            bucket_ns: bucket_ns.max(1),
        }
    }

    /// The default service shape: 60 buckets × 1 s.
    pub fn with_default_window() -> Self {
        Self::new(60, 1_000_000_000)
    }

    /// Width of the histogram window in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_buckets as u64 * self.bucket_ns
    }

    fn with_series<R>(
        &self,
        name: &str,
        help: &str,
        labels: &Labels,
        make: impl FnOnce(&Self) -> Series,
        f: impl FnOnce(&mut Series) -> R,
    ) -> R {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let series = fam
            .series
            .entry(labels.clone())
            .or_insert_with(|| make(self));
        f(series)
    }

    /// Adds `delta` to the counter `name{labels}` (created at 0 on first
    /// touch).
    pub fn inc_counter(&self, name: &str, help: &str, labels: &Labels, delta: u64) {
        self.with_series(
            name,
            help,
            labels,
            |_| Series::Counter(0),
            |s| match s {
                Series::Counter(c) => *c += delta,
                _ => panic!("{name} is not a counter"),
            },
        );
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn set_gauge(&self, name: &str, help: &str, labels: &Labels, value: f64) {
        self.with_series(
            name,
            help,
            labels,
            |_| Series::Gauge(0.0),
            |s| match s {
                Series::Gauge(g) => *g = value,
                _ => panic!("{name} is not a gauge"),
            },
        );
    }

    /// Records `value` at `now_ns` into the windowed histogram
    /// `name{labels}`.
    pub fn observe(&self, name: &str, help: &str, labels: &Labels, now_ns: u64, value: u64) {
        self.with_series(
            name,
            help,
            labels,
            |reg| {
                Series::Histogram(Box::new(WindowedHistogram::new(
                    reg.window_buckets,
                    reg.bucket_ns,
                )))
            },
            |s| match s {
                Series::Histogram(h) => h.record(now_ns, value),
                _ => panic!("{name} is not a histogram"),
            },
        );
    }

    /// Current value of the counter `name{labels}` (`None` if the series
    /// does not exist).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> Option<u64> {
        match self.families.lock().unwrap().get(name)?.series.get(labels) {
            Some(Series::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Sum of every series in the counter family `name` (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.families
            .lock()
            .unwrap()
            .get(name)
            .map(|f| {
                f.series
                    .values()
                    .map(|s| match s {
                        Series::Counter(c) => *c,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Current value of the gauge `name{labels}`.
    pub fn gauge_value(&self, name: &str, labels: &Labels) -> Option<f64> {
        match self.families.lock().unwrap().get(name)?.series.get(labels) {
            Some(Series::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of one histogram series (total + window ending `now_ns`).
    pub fn histogram(&self, name: &str, labels: &Labels, now_ns: u64) -> Option<HistogramSnapshot> {
        match self.families.lock().unwrap().get(name)?.series.get(labels) {
            Some(Series::Histogram(h)) => Some(HistogramSnapshot {
                total: h.total().clone(),
                windowed: h.windowed(now_ns),
            }),
            _ => None,
        }
    }

    /// Merged snapshot across every series of a histogram family whose
    /// labels satisfy `keep` (both totals and windows merge bucket-wise).
    pub fn histogram_merged(
        &self,
        name: &str,
        now_ns: u64,
        keep: impl Fn(&Labels) -> bool,
    ) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            total: LogHistogram::new(),
            windowed: LogHistogram::new(),
        };
        if let Some(fam) = self.families.lock().unwrap().get(name) {
            for (labels, s) in &fam.series {
                if let Series::Histogram(h) = s {
                    if keep(labels) {
                        snap.total.merge(h.total());
                        snap.windowed.merge(&h.windowed(now_ns));
                    }
                }
            }
        }
        snap
    }

    /// Every `(labels, value)` pair of a counter family, label-sorted.
    pub fn counter_series(&self, name: &str) -> Vec<(Labels, u64)> {
        self.families
            .lock()
            .unwrap()
            .get(name)
            .map(|f| {
                f.series
                    .iter()
                    .filter_map(|(l, s)| match s {
                        Series::Counter(c) => Some((l.clone(), *c)),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The distinct values label `key` takes across every series of family
    /// `name`, sorted.
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        if let Some(fam) = self.families.lock().unwrap().get(name) {
            for labels in fam.series.keys() {
                for (k, v) in labels.pairs() {
                    if k == key && !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Counters render as `counter`, gauges as `gauge`, and windowed
    /// histograms as two `summary` families: `<name>` (since boot) and
    /// `<name>_window` (last window), each with
    /// `quantile="0.5|0.95|0.99"` series plus `_sum` and `_count`.
    /// `now_ns` anchors the windows.
    pub fn render_prometheus(&self, now_ns: u64) -> String {
        let mut out = String::new();
        for (name, fam) in self.families.lock().unwrap().iter() {
            match fam.series.values().next() {
                Some(Series::Counter(_)) => {
                    header(&mut out, name, &fam.help, "counter");
                    for (labels, s) in &fam.series {
                        if let Series::Counter(c) = s {
                            line(&mut out, name, labels, None, &c.to_string());
                        }
                    }
                }
                Some(Series::Gauge(_)) => {
                    header(&mut out, name, &fam.help, "gauge");
                    for (labels, s) in &fam.series {
                        if let Series::Gauge(g) = s {
                            line(&mut out, name, labels, None, &render_f64(*g));
                        }
                    }
                }
                Some(Series::Histogram(_)) => {
                    header(&mut out, name, &fam.help, "summary");
                    for (labels, s) in &fam.series {
                        if let Series::Histogram(h) = s {
                            summary(&mut out, name, labels, h.total());
                        }
                    }
                    let wname = format!("{name}_window");
                    let whelp = format!(
                        "{} (last {} s window)",
                        fam.help,
                        self.window_ns() / 1_000_000_000
                    );
                    header(&mut out, &wname, &whelp, "summary");
                    for (labels, s) in &fam.series {
                        if let Series::Histogram(h) = s {
                            summary(&mut out, &wname, labels, &h.windowed(now_ns));
                        }
                    }
                }
                None => {}
            }
        }
        out
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Escapes a HELP line: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn line(out: &mut String, name: &str, labels: &Labels, extra: Option<(&str, &str)>, value: &str) {
    out.push_str(name);
    out.push_str(&labels.render(extra));
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn summary(out: &mut String, name: &str, labels: &Labels, h: &LogHistogram) {
    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
        line(
            out,
            name,
            labels,
            Some(("quantile", &format!("{q}"))),
            &v.to_string(),
        );
    }
    line(
        out,
        &format!("{name}_sum"),
        labels,
        None,
        &h.sum().to_string(),
    );
    line(
        out,
        &format!("{name}_count"),
        labels,
        None,
        &h.count().to_string(),
    );
}

/// Renders an `f64` sample value (Prometheus accepts `NaN`/`+Inf`/`-Inf`
/// spelled exactly so).
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(pairs: &[(&str, &str)]) -> Labels {
        Labels::new(pairs.iter().copied())
    }

    #[test]
    fn labels_are_order_insensitive_and_escaped() {
        let a = l(&[("algo", "bfs"), ("outcome", "ok")]);
        let b = l(&[("outcome", "ok"), ("algo", "bfs")]);
        assert_eq!(a, b);
        assert_eq!(a.render(None), "{algo=\"bfs\",outcome=\"ok\"}");
        assert_eq!(Labels::none().render(None), "");
        let odd = l(&[("k", "a\"b\\c\nd")]);
        assert_eq!(odd.render(None), "{k=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn counters_accumulate_per_label_set_and_total() {
        let r = MetricsRegistry::with_default_window();
        let ok = l(&[("algo", "bfs"), ("outcome", "ok")]);
        let err = l(&[("algo", "bfs"), ("outcome", "error")]);
        r.inc_counter("q_total", "queries", &ok, 2);
        r.inc_counter("q_total", "queries", &ok, 1);
        r.inc_counter("q_total", "queries", &err, 4);
        assert_eq!(r.counter_value("q_total", &ok), Some(3));
        assert_eq!(r.counter_value("q_total", &err), Some(4));
        assert_eq!(r.counter_total("q_total"), 7);
        assert_eq!(r.counter_value("q_total", &Labels::none()), None);
        assert_eq!(r.counter_total("absent"), 0);
        assert_eq!(r.counter_series("q_total").len(), 2);
        assert_eq!(r.label_values("q_total", "outcome"), vec!["error", "ok"]);
    }

    #[test]
    fn gauges_hold_the_last_write() {
        let r = MetricsRegistry::with_default_window();
        r.set_gauge("depth", "queue depth", &Labels::none(), 3.0);
        r.set_gauge("depth", "queue depth", &Labels::none(), 1.0);
        assert_eq!(r.gauge_value("depth", &Labels::none()), Some(1.0));
    }

    #[test]
    fn windowed_histogram_ages_out_old_buckets() {
        // 4 buckets × 100 ns = 400 ns window.
        let mut h = WindowedHistogram::new(4, 100);
        assert_eq!(h.window_ns(), 400);
        h.record(0, 10);
        h.record(150, 20);
        // Both inside the window at t=200.
        let w = h.windowed(200);
        assert_eq!(w.count(), 2);
        assert_eq!(h.total().count(), 2);
        // At t=450 the bucket holding t=0 (epoch 0) has aged out
        // (window covers epochs 1..=4); t=150's epoch 1 survives.
        let w = h.windowed(450);
        assert_eq!(w.count(), 1);
        assert_eq!(w.min(), 20);
        // Far future: everything aged out, total unchanged.
        assert_eq!(h.windowed(10_000).count(), 0);
        assert_eq!(h.total().count(), 2);
    }

    #[test]
    fn window_edge_sample_opens_the_next_bucket() {
        // Satellite case: a record landing exactly on a bucket edge.
        let mut h = WindowedHistogram::new(2, 100);
        h.record(99, 1); // epoch 0
        h.record(100, 2); // exactly on the edge -> epoch 1, not epoch 0
                          // Window at t=199 covers epochs 0..=1: both samples.
        assert_eq!(h.windowed(199).count(), 2);
        // Window at t=200 covers epochs 1..=2: the edge sample survived
        // exactly because it opened the newer bucket.
        let w = h.windowed(200);
        assert_eq!(w.count(), 1);
        assert_eq!(w.min(), 2);
    }

    #[test]
    fn ring_reuse_clears_stale_epochs() {
        let mut h = WindowedHistogram::new(2, 100);
        h.record(0, 1); // epoch 0, slot 0
        h.record(250, 9); // epoch 2, slot 0 again: must evict epoch 0
        assert_eq!(h.windowed(250).count(), 1);
        assert_eq!(h.windowed(250).min(), 9);
        assert_eq!(h.total().count(), 2);
    }

    #[test]
    fn windowed_p95_diverges_from_boot_p95_after_a_slow_phase() {
        let mut h = WindowedHistogram::new(4, 1_000);
        // Fast phase: 1000 samples around 100 ns at t=0.
        for _ in 0..1000 {
            h.record(0, 100);
        }
        // 5 µs later (past the 4 µs window): a slow phase.
        for _ in 0..50 {
            h.record(5_000, 1 << 20);
        }
        let boot = h.total();
        let win = h.windowed(5_500);
        // Since boot, 95% of samples are fast; the window holds only slow.
        assert!(boot.p95() < 1 << 10, "boot p95 {}", boot.p95());
        assert!(win.p95() >= 1 << 19, "window p95 {}", win.p95());
        assert_eq!(win.count(), 50);
        assert_eq!(boot.count(), 1050);
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_escapes() {
        let r = MetricsRegistry::new(4, 1_000);
        let bfs = l(&[("algo", "bfs"), ("outcome", "ok")]);
        let cc = l(&[("algo", "cc"), ("outcome", "ok")]);
        r.inc_counter("pp_q_total", "total \"queries\"", &bfs, 5);
        r.inc_counter("pp_q_total", "total \"queries\"", &cc, 2);
        r.set_gauge("pp_depth", "queue depth", &Labels::none(), 3.5);
        r.observe("pp_run_ns", "run latency", &bfs, 10, 1024);
        r.observe("pp_run_ns", "run latency", &bfs, 10, 2048);
        let body = r.render_prometheus(20);

        // Every series name has a # TYPE line.
        for (name, kind) in [
            ("pp_q_total", "counter"),
            ("pp_depth", "gauge"),
            ("pp_run_ns", "summary"),
            ("pp_run_ns_window", "summary"),
        ] {
            assert!(
                body.contains(&format!("# TYPE {name} {kind}\n")),
                "missing TYPE for {name}:\n{body}"
            );
            assert!(body.contains(&format!("# HELP {name} ")));
        }
        assert!(body.contains("pp_q_total{algo=\"bfs\",outcome=\"ok\"} 5"));
        assert!(body.contains("pp_q_total{algo=\"cc\",outcome=\"ok\"} 2"));
        assert!(body.contains("pp_depth 3.5"));
        assert!(body.contains("pp_run_ns{algo=\"bfs\",outcome=\"ok\",quantile=\"0.5\"}"));
        assert!(body.contains("pp_run_ns_sum{algo=\"bfs\",outcome=\"ok\"} 3072"));
        assert!(body.contains("pp_run_ns_count{algo=\"bfs\",outcome=\"ok\"} 2"));
        assert!(body.contains("pp_run_ns_window_count{algo=\"bfs\",outcome=\"ok\"} 2"));

        // Line-by-line: every non-comment line is `name[{labels}] value`.
        for lineref in body.lines() {
            if lineref.starts_with('#') {
                continue;
            }
            let (series, value) = lineref.rsplit_once(' ').expect("metric line has a value");
            assert!(!series.is_empty());
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {lineref:?}"
            );
        }
    }

    #[test]
    fn histogram_snapshots_merge_across_label_sets() {
        let r = MetricsRegistry::new(8, 1_000);
        let a = l(&[("algo", "bfs")]);
        let b = l(&[("algo", "cc")]);
        r.observe("lat", "latency", &a, 0, 10);
        r.observe("lat", "latency", &b, 0, 1000);
        let one = r.histogram("lat", &a, 500).unwrap();
        assert_eq!(one.total.count(), 1);
        assert_eq!(one.windowed.count(), 1);
        let all = r.histogram_merged("lat", 500, |_| true);
        assert_eq!(all.total.count(), 2);
        assert_eq!(all.total.min(), 10);
        assert_eq!(all.total.max(), 1000);
        let only_cc = r.histogram_merged("lat", 500, |labels| {
            labels.pairs().iter().any(|(_, v)| v == "cc")
        });
        assert_eq!(only_cc.total.count(), 1);
        assert_eq!(only_cc.total.min(), 1000);
        assert!(r.histogram("lat", &Labels::none(), 0).is_none());
    }
}
