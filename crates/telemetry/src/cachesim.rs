//! Set-associative cache and TLB simulation.
//!
//! The cache-miss and TLB-miss columns of Table 1 come from PAPI on Xeon
//! nodes. We substitute a software model: an inclusive three-level
//! set-associative hierarchy with LRU replacement plus a data TLB, driven by
//! the actual addresses instrumented kernels touch. Defaults mirror the
//! paper's XC30 Sandy Bridge nodes (32 KiB L1d/8-way, 256 KiB L2/8-way,
//! 20 MiB shared L3/16-way ≈ 8 MiB per-thread share here, 64-entry dTLB with
//! 4 KiB pages).

use parking_lot::Mutex;

use crate::{counters::CountingProbe, EventCounts, Probe};

/// Geometry of one cache level (or a TLB, where a "line" is a page).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (for a TLB: entries × page size).
    pub size_bytes: usize,
    /// Line size in bytes (for a TLB: the page size).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines >= self.ways, "cache smaller than one set");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// One set-associative cache level with LRU replacement.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets × ways` tags in LRU order (front = most recent). `u64::MAX`
    /// marks an invalid way.
    tags: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let slots = config.sets() * config.ways;
        Self {
            config,
            tags: vec![u64::MAX; slots],
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled
    /// (evicting the set's LRU way).
    pub fn access(&mut self, addr: usize) -> bool {
        self.accesses += 1;
        let line = (addr / self.config.line_bytes) as u64;
        let sets = self.config.sets();
        let set = (line as usize) & (sets - 1);
        let ways = self.config.ways;
        let base = set * ways;
        let slot = &mut self.tags[base..base + ways];
        if let Some(pos) = slot.iter().position(|&t| t == line) {
            // Hit: move to MRU position.
            slot[..=pos].rotate_right(1);
            true
        } else {
            self.misses += 1;
            slot.rotate_right(1);
            slot[0] = line;
            false
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.accesses = 0;
        self.misses = 0;
    }

    /// Installs `line` without touching the access/miss statistics — the
    /// fill path used by the prefetcher (prefetch fills are not demand
    /// accesses). The line lands in the MRU way of its set.
    pub fn fill(&mut self, line: u64) {
        let sets = self.config.sets();
        let set = (line as usize) & (sets - 1);
        let ways = self.config.ways;
        let base = set * ways;
        let slot = &mut self.tags[base..base + ways];
        if let Some(pos) = slot.iter().position(|&t| t == line) {
            slot[..=pos].rotate_right(1);
        } else {
            slot.rotate_right(1);
            slot[0] = line;
        }
    }
}

/// A stream/stride hardware prefetcher model (the "cache prefetchers" §6.5
/// credits for push-PR's contiguous-scan advantage).
///
/// A small fully-associative table tracks recent access streams as
/// `(last_line, stride)` pairs. An access that continues a stream (its line
/// equals `last_line + stride`) confirms it and prefetches the *next* line
/// of the stride; an access one line after any recent access starts a new
/// unit-stride stream. Random gathers never confirm a stream, so they get
/// no help — exactly the asymmetry between CSR offset/target sweeps
/// (streaming) and rank gathers (random) that the paper's PR data shows.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    /// `(last_line, stride)` per tracked stream, LRU order (front = MRU).
    streams: Vec<(u64, i64)>,
    issued: u64,
}

impl StridePrefetcher {
    /// A prefetcher tracking up to `streams` concurrent streams (hardware
    /// prefetchers track 8–32).
    pub fn new(streams: usize) -> Self {
        assert!(streams >= 1);
        Self {
            streams: Vec::with_capacity(streams),
            issued: 0,
        }
    }

    /// Number of prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Clears stream state and statistics.
    pub fn reset(&mut self) {
        self.streams.clear();
        self.issued = 0;
    }

    /// Observes a demand access to `line`; returns the line to prefetch, if
    /// any.
    pub fn observe(&mut self, line: u64) -> Option<u64> {
        // Continue a confirmed stream?
        if let Some(pos) = self
            .streams
            .iter()
            .position(|&(last, stride)| last.wrapping_add(stride as u64) == line)
        {
            let (_, stride) = self.streams.remove(pos);
            self.streams.insert(0, (line, stride));
            self.issued += 1;
            return Some(line.wrapping_add(stride as u64));
        }
        // Detect a new stream from any recent line at distance ±1.
        if let Some(pos) = self
            .streams
            .iter()
            .position(|&(last, _)| line.abs_diff(last) == 1)
        {
            let (last, _) = self.streams.remove(pos);
            let stride = line as i64 - last as i64;
            self.streams.insert(0, (line, stride));
            return None;
        }
        // Track as a potential stream head, evicting the LRU entry.
        if self.streams.len() == self.streams.capacity() {
            self.streams.pop();
        }
        self.streams.insert(0, (line, 1));
        None
    }
}

/// Three cache levels plus a data TLB, probed in hierarchy order: an access
/// that hits L1 does not reach L2; every access consults the TLB.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    /// L1 data cache.
    pub l1: SetAssocCache,
    /// Unified L2.
    pub l2: SetAssocCache,
    /// Last-level cache.
    pub l3: SetAssocCache,
    /// Data TLB.
    pub dtlb: SetAssocCache,
    /// Optional stream prefetcher (fills L1/L2/L3 on confirmed strides).
    pub prefetcher: Option<StridePrefetcher>,
}

impl CacheHierarchy {
    /// Geometry matching the paper's Cray XC30 nodes (per-thread L3 share).
    pub fn xc30() -> Self {
        Self {
            l1: SetAssocCache::new(CacheConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                ways: 8,
            }),
            l2: SetAssocCache::new(CacheConfig {
                size_bytes: 256 << 10,
                line_bytes: 64,
                ways: 8,
            }),
            l3: SetAssocCache::new(CacheConfig {
                size_bytes: 8 << 20,
                line_bytes: 64,
                ways: 16,
            }),
            dtlb: SetAssocCache::new(CacheConfig {
                size_bytes: 64 * 4096,
                line_bytes: 4096,
                ways: 4,
            }),
            prefetcher: None,
        }
    }

    /// A small hierarchy for tests (64-line L1 etc.) so miss behaviour is
    /// easy to trigger deliberately.
    pub fn tiny() -> Self {
        Self {
            l1: SetAssocCache::new(CacheConfig {
                size_bytes: 1024,
                line_bytes: 64,
                ways: 2,
            }),
            l2: SetAssocCache::new(CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 4,
            }),
            l3: SetAssocCache::new(CacheConfig {
                size_bytes: 16384,
                line_bytes: 64,
                ways: 4,
            }),
            dtlb: SetAssocCache::new(CacheConfig {
                size_bytes: 4 * 4096,
                line_bytes: 4096,
                ways: 2,
            }),
            prefetcher: None,
        }
    }

    /// Attaches a 16-stream stride prefetcher (builder style).
    pub fn with_prefetcher(mut self) -> Self {
        self.prefetcher = Some(StridePrefetcher::new(16));
        self
    }

    /// Runs one access through the hierarchy, updating miss counters.
    pub fn access(&mut self, addr: usize) {
        self.dtlb.access(addr);
        if !self.l1.access(addr) && !self.l2.access(addr) {
            self.l3.access(addr);
        }
        if let Some(pf) = &mut self.prefetcher {
            let line_bytes = self.l1.config.line_bytes as u64;
            if let Some(next) = pf.observe(addr as u64 / line_bytes) {
                // Prefetch fills all levels without counting as demand
                // traffic (inclusive hierarchy).
                self.l1.fill(next);
                self.l2.fill(next);
                self.l3.fill(next);
            }
        }
    }

    /// Snapshot of the four miss counters.
    pub fn miss_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.l1.misses(),
            self.l2.misses(),
            self.l3.misses(),
            self.dtlb.misses(),
        )
    }

    /// Clears all levels and the prefetcher.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.dtlb.reset();
        if let Some(pf) = &mut self.prefetcher {
            pf.reset();
        }
    }

    /// Prefetches issued so far (0 when no prefetcher is attached).
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetcher.as_ref().map_or(0, StridePrefetcher::issued)
    }
}

/// A probe that counts events *and* feeds every address through a
/// [`CacheHierarchy`].
///
/// The hierarchy sits behind a mutex: instrumented runs are about exact
/// counts, not time, and Table-1 experiments run at small scale. Accesses
/// from concurrent threads interleave in the shared hierarchy the way they
/// would in a shared LLC; per-thread L1/L2 behaviour is approximated, which
/// is adequate for the order-of-magnitude contrasts the paper draws.
pub struct CacheSimProbe {
    counting: CountingProbe,
    hierarchy: Mutex<CacheHierarchy>,
}

impl CacheSimProbe {
    /// XC30-geometry probe.
    pub fn new() -> Self {
        Self::with_hierarchy(CacheHierarchy::xc30())
    }

    /// Probe with explicit geometry.
    pub fn with_hierarchy(hierarchy: CacheHierarchy) -> Self {
        Self {
            counting: CountingProbe::new(),
            hierarchy: Mutex::new(hierarchy),
        }
    }

    /// Snapshot: event counters plus cache/TLB misses.
    pub fn counts(&self) -> EventCounts {
        let mut c = self.counting.counts();
        let (l1, l2, l3, dtlb) = self.hierarchy.lock().miss_counts();
        c.l1_misses = l1;
        c.l2_misses = l2;
        c.l3_misses = l3;
        c.dtlb_misses = dtlb;
        c
    }

    /// Reset counters and cache contents.
    pub fn reset(&self) {
        self.counting.reset();
        self.hierarchy.lock().reset();
    }

    /// Prefetches issued by the hierarchy's prefetcher (0 without one).
    pub fn prefetches_issued(&self) -> u64 {
        self.hierarchy.lock().prefetches_issued()
    }

    fn touch(&self, addr: usize, bytes: usize) {
        let mut h = self.hierarchy.lock();
        // A wide access crossing a line boundary touches both lines.
        let first = addr / 64;
        let last = (addr + bytes.max(1) - 1) / 64;
        h.access(addr);
        if last != first {
            h.access(last * 64);
        }
    }
}

impl Default for CacheSimProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for CacheSimProbe {
    fn read(&self, addr: usize, bytes: usize) {
        self.counting.read(addr, bytes);
        self.touch(addr, bytes);
    }

    fn write(&self, addr: usize, bytes: usize) {
        self.counting.write(addr, bytes);
        self.touch(addr, bytes);
    }

    fn atomic_rmw(&self, addr: usize, bytes: usize) {
        self.counting.atomic_rmw(addr, bytes);
        self.touch(addr, bytes);
    }

    fn lock(&self) {
        self.counting.lock();
    }

    fn branch_cond(&self) {
        self.counting.branch_cond();
    }

    fn branch_uncond(&self) {
        self.counting.branch_uncond();
    }

    fn barrier(&self) {
        self.counting.barrier();
    }

    fn remote_send(&self, addr: usize, bytes: usize) {
        self.counting.remote_send(addr, bytes);
        // A buffered owner-computes send is a plain write into the
        // exchange queue: model its memory traffic like any other store.
        self.touch(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cache(lines: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: lines * 64,
            line_bytes: 64,
            ways,
        })
    }

    #[test]
    fn geometry_computes_sets() {
        let c = CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 8,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = line_cache(4, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: lines map to the same set.
        let mut c = line_cache(2, 2);
        c.access(0); // miss, cache: [0]
        c.access(64); // miss, cache: [64, 0]
        c.access(0); // hit, cache: [0, 64]
        c.access(128); // miss, evicts 64
        assert!(c.access(0), "0 was MRU, must survive");
        assert!(!c.access(64), "64 was LRU, must be gone");
    }

    #[test]
    fn streaming_beats_random_on_misses() {
        // The phenomenon behind Table 1's pull-PR numbers: sequential sweeps
        // miss once per line, random gathers miss almost every access.
        let mut seq = CacheHierarchy::tiny();
        let mut rnd = CacheHierarchy::tiny();
        let n = 4096usize;
        for i in 0..n {
            seq.access(i * 8); // stride-8 stream
        }
        let mut x = 1usize;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rnd.access((x >> 16) % (1 << 22));
        }
        assert!(
            seq.l1.misses() * 4 < rnd.l1.misses(),
            "seq {} vs rnd {}",
            seq.l1.misses(),
            rnd.l1.misses()
        );
    }

    #[test]
    fn hierarchy_filters_l2_behind_l1() {
        let mut h = CacheHierarchy::tiny();
        h.access(0);
        h.access(0);
        h.access(0);
        // Only the cold miss reaches L2/L3.
        assert_eq!(h.l1.misses(), 1);
        assert_eq!(h.l2.accesses(), 1);
        assert_eq!(h.l3.accesses(), 1);
        assert_eq!(h.dtlb.accesses(), 3, "TLB sees every access");
    }

    #[test]
    fn probe_combines_counts_and_misses() {
        let p = CacheSimProbe::with_hierarchy(CacheHierarchy::tiny());
        p.read(0, 8);
        p.read(0, 8);
        p.write(4096 * 8, 8);
        p.atomic_rmw(0, 8);
        let c = p.counts();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.atomics, 1);
        assert!(c.l1_misses >= 2);
        assert!(c.dtlb_misses >= 2);
    }

    #[test]
    fn remote_sends_are_counted_and_drive_the_cache_model() {
        let p = CacheSimProbe::with_hierarchy(CacheHierarchy::tiny());
        p.remote_send(1 << 20, 12);
        p.remote_send(1 << 20, 12);
        let c = p.counts();
        assert_eq!(c.remote_sends, 2);
        assert!(
            c.l1_misses >= 1,
            "the buffered payload write must touch the hierarchy"
        );
    }

    #[test]
    fn line_crossing_access_touches_two_lines() {
        let p = CacheSimProbe::with_hierarchy(CacheHierarchy::tiny());
        p.read(60, 8); // crosses the 64-byte boundary
        let c = p.counts();
        assert_eq!(c.l1_misses, 2);
    }

    #[test]
    fn prefetcher_confirms_unit_strides() {
        let mut pf = StridePrefetcher::new(4);
        assert_eq!(pf.observe(10), None); // head (assumed unit stride)
        assert_eq!(pf.observe(11), Some(12)); // next-line: confirmed
        assert_eq!(pf.observe(12), Some(13));
        assert_eq!(pf.observe(13), Some(14));
        assert_eq!(pf.issued(), 3);
    }

    #[test]
    fn prefetcher_tracks_negative_and_wide_strides() {
        let mut pf = StridePrefetcher::new(4);
        pf.observe(100);
        pf.observe(99); // stride -1 detected
        assert_eq!(pf.observe(98), Some(97));
    }

    #[test]
    fn prefetcher_ignores_random_accesses() {
        let mut pf = StridePrefetcher::new(8);
        let mut x = 7usize;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            pf.observe((x >> 20) as u64);
        }
        // A few accidental adjacencies are possible; a stream is not.
        assert!(pf.issued() < 20, "issued {}", pf.issued());
    }

    #[test]
    fn prefetcher_interleaved_streams() {
        // Two interleaved sequential sweeps, as in PR's offsets+targets
        // scans: both must be tracked simultaneously.
        let mut pf = StridePrefetcher::new(8);
        let mut hits = 0;
        for i in 0..100u64 {
            if pf.observe(i).is_some() {
                hits += 1;
            }
            if pf.observe(1_000_000 + i).is_some() {
                hits += 1;
            }
        }
        assert!(hits >= 190, "both streams must confirm: {hits}");
    }

    #[test]
    fn prefetching_eliminates_streaming_misses() {
        let mut plain = CacheHierarchy::tiny();
        let mut pf = CacheHierarchy::tiny().with_prefetcher();
        for i in 0..4096usize {
            plain.access(i * 8);
            pf.access(i * 8);
        }
        assert!(pf.prefetches_issued() > 0);
        assert!(
            pf.l1.misses() * 4 < plain.l1.misses(),
            "prefetch {} vs plain {}",
            pf.l1.misses(),
            plain.l1.misses()
        );
    }

    #[test]
    fn prefetching_does_not_help_random_gathers() {
        let mut plain = CacheHierarchy::tiny();
        let mut pf = CacheHierarchy::tiny().with_prefetcher();
        let mut x = 1usize;
        for _ in 0..4096 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 16) % (1 << 22);
            plain.access(addr);
            pf.access(addr);
        }
        let (p, q) = (plain.l1.misses() as f64, pf.l1.misses() as f64);
        assert!((q / p) > 0.9, "random misses {q} vs {p} should be ~equal");
    }

    #[test]
    fn fill_does_not_count_as_demand_access() {
        let mut c = line_cache(4, 2);
        c.fill(0);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0), "filled line must hit");
    }

    #[test]
    fn reset_restores_cold_state() {
        let p = CacheSimProbe::with_hierarchy(CacheHierarchy::tiny());
        p.read(0, 8);
        p.reset();
        let c = p.counts();
        assert_eq!(c.reads, 0);
        assert_eq!(c.l1_misses, 0);
        p.read(0, 8);
        assert_eq!(p.counts().l1_misses, 1, "cache must be cold after reset");
    }
}
