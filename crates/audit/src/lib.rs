//! `pp-audit` — the workspace invariant checker.
//!
//! The engine's performance story rests on hand-maintained disciplines:
//! the §5 owner-computes path is atomic-free *because* every write is
//! single-writer by partition ownership; `MetricsLevel::Off` is free
//! *because* no library code reads a clock unless telemetry hands it one;
//! the pool's lap ledgers are race-free *because* each round-scratch cell
//! has exactly one writer between barriers. None of that is visible to
//! the type system — it lives in `// SAFETY:` and `// ORDERING:` comments
//! and module boundaries. This crate machine-checks the comment half:
//!
//! * [`lexer`] — a dependency-free Rust surface lexer (strings, raw
//!   strings, char literals vs lifetimes, nested block comments, CRLF)
//!   so rules never fire on text inside literals or comments.
//! * [`rules`] — the invariant rules (`safety`, `ordering`,
//!   `ordering-strong`, `clock`, `spawn`, `print`) plus the
//!   `audit.allow` grandfathering list with stale-entry detection.
//! * [`report`] — `file:line` diagnostics and a JSON report following the
//!   `pp_serve::json` writer conventions.
//!
//! The dynamic half of the same program — asserting the single-writer
//! discipline at runtime instead of lexically — is
//! `pp_engine::race` (feature `race-detect`), which shadow-tracks every
//! owner-computes write between exchange barriers.
//!
//! Run it as `cargo run -p pp-audit -- --deny` (CI gates on this), or
//! call [`audit_tree`] from tests.

pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Report;
use rules::{Allowlist, Finding};

/// Directory names never scanned: build output, VCS, and the vendored
/// API-shim crates (stand-ins for external code, not part of the
/// workspace's own invariant surface).
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "node_modules"];

/// Collects every `.rs` file under `root` (sorted, deterministic),
/// skipping `SKIP_DIRS` (build output, VCS, vendored shims).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Audits every `.rs` file under `root`, applying `allowlist` (pass a
/// default one for none). Findings come back sorted by file then line,
/// with stale-allowlist findings appended.
pub fn audit_tree(root: &Path, allowlist: &mut Allowlist) -> io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut raw: Vec<Finding> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        raw.extend(rules::scan_file(&rel, &src));
    }
    let (mut findings, suppressed) = allowlist.filter(raw);
    findings.extend(allowlist.stale());
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        root: root.to_string_lossy().into_owned(),
        files_scanned: files.len(),
        findings,
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_shims_and_target() {
        let dir = std::env::temp_dir().join(format!("pp_audit_walk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/x/src")).unwrap();
        fs::create_dir_all(dir.join("shims/y/src")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::write(dir.join("crates/x/src/lib.rs"), "fn a() {}\n").unwrap();
        fs::write(dir.join("shims/y/src/lib.rs"), "unsafe { nope() }\n").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "unsafe { nope() }\n").unwrap();
        let files = collect_rs_files(&dir).unwrap();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("crates/x/src/lib.rs"));
        let report = audit_tree(&dir, &mut Allowlist::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        fs::remove_dir_all(&dir).unwrap();
    }
}
