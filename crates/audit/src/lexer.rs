//! A hand-rolled Rust surface lexer: just enough token structure for the
//! rules engine, no external crates (the workspace build is shims-only).
//!
//! The rules in [`crate::rules`] are lexical — "an `unsafe` keyword needs
//! an adjacent `// SAFETY:` comment" — so the only hard requirement on the
//! lexer is that it never mistakes *text* for *code*: `"unsafe"` inside a
//! string literal, `// Ordering::Relaxed` inside a comment, a `'` that
//! starts a lifetime rather than a char literal. Everything the rules
//! consume is a [`Tok`] with a kind, its text, and the 1-based line range
//! it spans.
//!
//! Handled: line comments (`//`, `///`, `//!`), **nested** block comments
//! (`/* /* */ */`, `/** */`), string literals with escapes, raw strings
//! with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`), byte strings and
//! byte chars, char literals (including `'\''` and `'\u{…}'`) versus
//! lifetimes (`'a`, `'static`), numeric literals (so `0..n` does not eat
//! the range dots), and CRLF line endings (`\r` is whitespace; only `\n`
//! advances the line counter, so `file:line` diagnostics agree with
//! editors on either convention).

/// What a token is. The rules engine only dispatches on this plus the
/// token text, so literal kinds are collapsed where the distinction does
/// not matter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `spawn`, …).
    Ident,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, nesting already balanced (text includes
    /// delimiters).
    BlockComment,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`, `b'c'`.
    Literal,
    /// A numeric literal (`0x1f`, `1_000`, `1.5e-3`, `0u64`).
    Num,
    /// A single punctuation character (`{`, `}`, `:`, `!`, `(`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line span it covers
/// (`line == line_end` for everything except multi-line comments and
/// strings).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on.
    pub line_end: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32, line_end: u32) -> Self {
        Self {
            kind,
            text: text.into(),
            line,
            line_end,
        }
    }
}

/// Character cursor with line tracking.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks two characters ahead (cloning the iterator is cheap — it is a
    /// byte-slice walk).
    fn peek2(&mut self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }
}

/// Tokenizes `src`. The lexer is total: any input produces a token stream
/// (malformed trailing literals become a literal token running to EOF),
/// because an audit tool must report on half-written files rather than die
/// on them.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => match cur.peek2() {
                Some('/') => toks.push(line_comment(&mut cur)),
                Some('*') => toks.push(block_comment(&mut cur)),
                _ => {
                    cur.bump();
                    toks.push(Tok::new(TokKind::Punct, "/", line, line));
                }
            },
            '"' => toks.push(string_lit(&mut cur)),
            '\'' => quote_or_lifetime(&mut cur, &mut toks),
            c if c.is_ascii_digit() => toks.push(number(&mut cur)),
            c if c.is_alphabetic() || c == '_' => ident_or_prefixed_literal(&mut cur, &mut toks),
            c => {
                cur.bump();
                toks.push(Tok::new(TokKind::Punct, c.to_string(), line, line));
            }
        }
    }
    toks
}

fn line_comment(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok::new(TokKind::LineComment, text, line, line)
}

fn block_comment(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    let mut text = String::new();
    // Consume the opening `/*`.
    text.push(cur.bump().unwrap());
    text.push(cur.bump().unwrap());
    let mut depth = 1usize;
    while depth > 0 {
        match cur.peek() {
            Some('/') if cur.peek2() == Some('*') => {
                depth += 1;
                text.push(cur.bump().unwrap());
                text.push(cur.bump().unwrap());
            }
            Some('*') if cur.peek2() == Some('/') => {
                depth -= 1;
                text.push(cur.bump().unwrap());
                text.push(cur.bump().unwrap());
            }
            Some(c) => {
                text.push(c);
                cur.bump();
            }
            None => break, // unterminated: run to EOF
        }
    }
    Tok::new(TokKind::BlockComment, text, line, cur.line)
}

/// A `"…"` string body, opening quote not yet consumed.
fn string_lit(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    let mut text = String::new();
    text.push(cur.bump().unwrap()); // opening quote
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                // Skip the escaped character, whatever it is (`\"`, `\\`,
                // `\u{…}` — the braces are ordinary chars here).
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    Tok::new(TokKind::Literal, text, line, cur.line)
}

/// A raw string with `hashes` leading `#`s; cursor sits on the opening
/// quote. The already-consumed prefix (e.g. `r##`) is in `prefix`.
fn raw_string(cur: &mut Cursor, prefix: String, hashes: usize) -> Tok {
    let line = cur.line;
    let mut text = prefix;
    text.push(cur.bump().unwrap()); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                text.push('"');
                // A raw string closes only on `"` followed by exactly the
                // opening hash count.
                let mut seen = 0;
                while seen < hashes && cur.peek() == Some('#') {
                    text.push(cur.bump().unwrap());
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(c) => text.push(c),
            None => break, // unterminated: run to EOF
        }
    }
    Tok::new(TokKind::Literal, text, line, cur.line)
}

/// `'` is either a char literal or a lifetime. Rust's own rule: `'x` where
/// `x` is an identifier character and the *next* char is not `'` is a
/// lifetime; everything else (`'a'`, `'\n'`, `'\''`, `'0'`, `'}'`) is a
/// char literal.
fn quote_or_lifetime(cur: &mut Cursor, toks: &mut Vec<Tok>) {
    let line = cur.line;
    match (cur.peek2(), {
        let mut it = cur.chars.clone();
        it.next();
        it.next();
        it.next()
    }) {
        // `'a'` — identifier char followed by closing quote: char literal.
        (Some(c), Some('\'')) if c.is_alphanumeric() || c == '_' => {
            let mut text = String::new();
            text.push(cur.bump().unwrap());
            text.push(cur.bump().unwrap());
            text.push(cur.bump().unwrap());
            toks.push(Tok::new(TokKind::Literal, text, line, line));
        }
        // `'a`, `'static`, `'_` — lifetime: quote token + the identifier
        // lexes on its own next iteration.
        (Some(c), _) if c.is_alphabetic() || c == '_' => {
            cur.bump();
            toks.push(Tok::new(TokKind::Punct, "'", line, line));
        }
        // `'\…'`, `'0'`, `'}'`, `'"'` — char literal with arbitrary body.
        _ => {
            let mut text = String::new();
            text.push(cur.bump().unwrap()); // opening quote
            while let Some(c) = cur.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(e) = cur.bump() {
                            text.push(e);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            toks.push(Tok::new(TokKind::Literal, text, line, cur.line));
        }
    }
}

fn number(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    let mut text = String::new();
    // Integer part, radix prefixes, suffixes: any alphanumeric/underscore
    // run (`0xff_u64`).
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fraction: a single `.` followed by a digit (so `0..n` stays two
    // tokens and `1.` is left to the Punct fallback, which is fine).
    if cur.peek() == Some('.') {
        if let Some(d) = cur.peek2() {
            if d.is_ascii_digit() {
                text.push(cur.bump().unwrap());
                while let Some(c) = cur.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // Exponent sign: `1.5e-3` — the `e` was consumed above,
                // the sign and exponent digits follow.
                if (text.ends_with('e') || text.ends_with('E'))
                    && matches!(cur.peek(), Some('+') | Some('-'))
                {
                    text.push(cur.bump().unwrap());
                    while let Some(c) = cur.peek() {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }
    Tok::new(TokKind::Num, text, line, line)
}

/// An identifier — unless it is one of the literal prefixes (`r"`, `r#"`,
/// `b"`, `b'`, `br"`, `rb` is not a Rust prefix) in which case the literal
/// is lexed whole. `r#ident` raw identifiers become plain idents.
fn ident_or_prefixed_literal(cur: &mut Cursor, toks: &mut Vec<Tok>) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    match (text.as_str(), cur.peek()) {
        // Raw string or raw identifier.
        ("r" | "br", Some('"')) => toks.push(raw_string(cur, text, 0)),
        ("r" | "br", Some('#')) => {
            // Count hashes; then `"` means raw string, an ident char means
            // a raw identifier (`r#fn`).
            let mut hashes = 0;
            while cur.peek() == Some('#') {
                text.push(cur.bump().unwrap());
                hashes += 1;
            }
            match cur.peek() {
                Some('"') => toks.push(raw_string(cur, text, hashes)),
                Some(c) if hashes == 1 && (c.is_alphabetic() || c == '_') => {
                    // Raw identifier: restart the ident scan, keep `r#`
                    // out of the reported name.
                    let mut name = String::new();
                    while let Some(c) = cur.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            name.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    toks.push(Tok::new(TokKind::Ident, name, line, line));
                }
                _ => {
                    // `r#` followed by nothing useful: emit what we have.
                    toks.push(Tok::new(TokKind::Ident, text, line, line));
                }
            }
        }
        // Byte string / byte char.
        ("b", Some('"')) => toks.push(string_lit_prefixed(cur, text)),
        ("b", Some('\'')) => {
            // `b'x'` — lex like a char literal (no lifetime ambiguity
            // after `b`).
            let mut t = text;
            t.push(cur.bump().unwrap());
            while let Some(c) = cur.bump() {
                t.push(c);
                match c {
                    '\\' => {
                        if let Some(e) = cur.bump() {
                            t.push(e);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            toks.push(Tok::new(TokKind::Literal, t, line, cur.line));
        }
        _ => toks.push(Tok::new(TokKind::Ident, text, line, line)),
    }
}

/// A `"`-delimited string whose prefix (`b`) was already consumed.
fn string_lit_prefixed(cur: &mut Cursor, prefix: String) -> Tok {
    let t = string_lit(cur);
    Tok::new(
        TokKind::Literal,
        format!("{prefix}{}", t.text),
        t.line,
        t.line_end,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unsafe_inside_string_literals_is_text_not_code() {
        let src = r##"let s = "unsafe { Ordering::Relaxed }"; let r = r#"unsafe"#;"##;
        assert!(!idents(src).iter().any(|i| i == "unsafe"));
        assert!(!idents(src).iter().any(|i| i == "Ordering"));
        let lits: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn line_comment_markers_inside_strings_do_not_start_comments() {
        let src = r#"let url = "https://example.com"; unsafe { x() }"#;
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.kind != TokKind::LineComment));
        assert!(idents(src).iter().any(|i| i == "unsafe"));
    }

    #[test]
    fn nested_block_comments_balance() {
        let src = "/* outer /* inner */ still comment */ unsafe";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert_eq!(toks[1].text, "unsafe");
    }

    #[test]
    fn char_literal_quotes_and_lifetimes_disambiguate() {
        // `'"'` is a char literal holding a quote: the string scanner must
        // not fire. `'a` in `&'a str` is a lifetime; `'a'` is a literal.
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let c = 'a'; let esc = '\\''; }";
        let toks = lex(src);
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'\"'", "'a'", "'\\''"]);
        // The lifetime `a` surfaces as an ident after a `'` punct.
        assert!(toks
            .windows(2)
            .any(|w| w[0].text == "'" && w[1].text == "a"));
    }

    #[test]
    fn raw_strings_with_hashes_containing_quotes_and_unsafe() {
        let src = r####"let x = r##"has "quote"# and unsafe words"##; spawn()"####;
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokKind::Literal).unwrap();
        assert!(lit.text.contains("unsafe words"));
        assert!(idents(src).iter().any(|i| i == "spawn"));
        assert!(!idents(src).iter().any(|i| i == "unsafe"));
    }

    #[test]
    fn crlf_files_count_lines_like_editors_do() {
        let src = "line1\r\nunsafe\r\n// SAFETY: x\r\nOrdering";
        let toks = lex(src);
        let unsafe_tok = toks.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(unsafe_tok.line, 2);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert_eq!(comment.line, 3);
        let ord = toks.iter().find(|t| t.text == "Ordering").unwrap();
        assert_eq!(ord.line, 4);
    }

    #[test]
    fn multiline_block_comments_span_lines() {
        let src = "/* a\nb\nc */\nunsafe";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].line_end, 3);
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..10 { x[i] = 1.5e-3; }";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
        assert_eq!(
            toks.iter()
                .filter(|t| t.text == "." && t.kind == TokKind::Punct)
                .count(),
            2,
            "the range dots survive as punctuation"
        );
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let src = "let r#fn = 1; let r = r#\"raw\"#;";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "fn"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text.contains("raw")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"unsafe\"; let c = b'x'; let d = br#\"spawn(\"#;";
        assert!(idents(src).iter().all(|i| i != "unsafe" && i != "spawn"));
        let lits = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["let s = \"never closed", "let r = r#\"open", "/* open"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
        }
    }
}
