//! The invariant rules and the engine that applies them to one file's
//! token stream.
//!
//! Each rule guards a discipline the workspace's performance story depends
//! on but the compiler cannot check:
//!
//! | rule | invariant |
//! |---|---|
//! | `safety` | every `unsafe` carries an adjacent `// SAFETY:` (or `# Safety` doc section) |
//! | `ordering` | every `Ordering::Relaxed` outside a counter/probe module carries `// ORDERING:` |
//! | `ordering-strong` | every `Acquire`/`Release`/`AcqRel`/`SeqCst` carries `// ORDERING:` — never grandfathered by the built-in module list |
//! | `clock` | no `Instant::now`/`SystemTime::now` outside `pp_telemetry` (the `MetricsLevel::Off` zero-clock contract) |
//! | `spawn` | no thread spawns outside `pp_engine::pool` and `pp_serve::server` |
//! | `print` | no `println!`/`eprintln!`/`dbg!` in library crates |
//! | `allowlist` | every allowlist entry still suppresses something (stale entries rot) |
//!
//! A justification comment covers a site when it *ends* within
//! [`LOOKBACK_LINES`] lines above it (or sits on the same line) — the
//! "adjacent comment" convention the workspace already follows by hand.
//! Test code (`tests/`, `benches/`, `#[cfg(test)]` modules, `#[test]`
//! items) is exempt from every rule: the invariants protect the shipped
//! runtime, and test-local atomics follow the test's own logic.

use crate::lexer::{lex, Tok, TokKind};

/// How far above a site a justification comment may end and still count
/// as "adjacent" (in lines). Eight covers a comment above a
/// several-statement cluster that shares one justification without
/// letting a stale comment vouch for a whole screen of code.
pub const LOOKBACK_LINES: u32 = 8;

/// The rules the audit enforces. `id()` strings are the stable names used
/// in diagnostics and `audit.allow` entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` / `# Safety`.
    Safety,
    /// Unjustified `Ordering::Relaxed` outside a counter/probe module.
    Ordering,
    /// Unjustified `Acquire`/`Release`/`AcqRel`/`SeqCst` anywhere.
    OrderingStrong,
    /// Clock read outside `pp_telemetry`.
    Clock,
    /// Thread spawn outside the pool/server modules.
    Spawn,
    /// Console print in a library crate.
    Print,
    /// An `audit.allow` entry that suppressed nothing.
    AllowlistStale,
}

impl Rule {
    /// Stable rule name (diagnostics, JSON, allowlist entries).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Safety => "safety",
            Rule::Ordering => "ordering",
            Rule::OrderingStrong => "ordering-strong",
            Rule::Clock => "clock",
            Rule::Spawn => "spawn",
            Rule::Print => "print",
            Rule::AllowlistStale => "allowlist",
        }
    }

    /// Parses a rule name from an allowlist entry. `AllowlistStale` is not
    /// nameable: it cannot be allowlisted away.
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "safety" => Rule::Safety,
            "ordering" => Rule::Ordering,
            "ordering-strong" => Rule::OrderingStrong,
            "clock" => Rule::Clock,
            "spawn" => Rule::Spawn,
            "print" => Rule::Print,
            _ => return None,
        })
    }

    /// One-line statement of what the rule protects (for `--list-rules`).
    pub fn protects(self) -> &'static str {
        match self {
            Rule::Safety => "every unsafe site states its proof obligation next to the code",
            Rule::Ordering => {
                "relaxed atomics outside counter/probe modules justify why relaxed is enough"
            }
            Rule::OrderingStrong => {
                "acquire/release/seqcst sites justify why that strength is needed (and no more)"
            }
            Rule::Clock => "MetricsLevel::Off reads no clocks: timing flows through pp_telemetry",
            Rule::Spawn => "all parallelism is owned by pp_engine::pool / pp_serve::server",
            Rule::Print => "library crates never write to the console behind a caller's back",
            Rule::AllowlistStale => {
                "audit.allow entries that no longer suppress anything are removed"
            }
        }
    }

    /// Every enforced rule, for documentation surfaces.
    pub fn all() -> [Rule; 7] {
        [
            Rule::Safety,
            Rule::Ordering,
            Rule::OrderingStrong,
            Rule::Clock,
            Rule::Spawn,
            Rule::Print,
            Rule::AllowlistStale,
        ]
    }
}

/// One diagnostic: a rule violated at `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// Modules whose `Ordering::Relaxed` masses need no per-site comment: the
/// counter/probe sharding layers, where "relaxed, merged after the
/// barrier" is the module-level design stated in their docs.
const RELAXED_COUNTER_MODULES: &[&str] = &[
    "crates/telemetry/src/counters.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/engine/src/probes.rs",
];

/// The only modules allowed to read wall clocks: `pp_telemetry` owns
/// every timestamp the workspace takes.
const CLOCK_MODULES_PREFIX: &str = "crates/telemetry/";

/// The only modules allowed to spawn OS threads.
const SPAWN_MODULES: &[&str] = &["crates/engine/src/pool.rs", "crates/serve/src/server.rs"];

/// Crates whose `src/` is a CLI surface, not a library: printing is their
/// job.
const CLI_CRATES_PREFIX: &[&str] = &["crates/bench/"];

/// Strong memory orderings (always require justification).
const STRONG_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// Scans one file and returns its raw findings (allowlist not yet
/// applied). `rel_path` must be workspace-relative with forward slashes —
/// it drives both the context classification (test/example/bin/library)
/// and the built-in module lists.
pub fn scan_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::classify(rel_path);
    if ctx.in_tests {
        return Vec::new();
    }
    let toks = lex(src);
    let exempt = test_exempt_mask(&toks);
    let comments = CommentIndex::build(&toks);
    let mut out = Vec::new();

    let code = |mut i: usize, toks: &[Tok]| -> Option<usize> {
        i += 1;
        while i < toks.len() {
            match toks[i].kind {
                TokKind::LineComment | TokKind::BlockComment => i += 1,
                _ => return Some(i),
            }
        }
        None
    };
    let prev_code = |i: usize, toks: &[Tok]| -> Option<usize> {
        let mut i = i;
        while i > 0 {
            i -= 1;
            match toks[i].kind {
                TokKind::LineComment | TokKind::BlockComment => {}
                _ => return Some(i),
            }
        }
        None
    };

    for (i, t) in toks.iter().enumerate() {
        if exempt[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unsafe" if !comments.has_safety_near(t.line) => {
                out.push(Finding {
                    rule: Rule::Safety,
                    file: rel_path.to_string(),
                    line: t.line,
                    msg: "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                });
            }
            "Ordering" => {
                // `Ordering :: Variant` — `std::cmp::Ordering::Less` is
                // filtered out by the variant sets.
                let Some(c1) = code(i, &toks) else { continue };
                let Some(c2) = code(c1, &toks) else { continue };
                let Some(c3) = code(c2, &toks) else { continue };
                if toks[c1].text != ":" || toks[c2].text != ":" {
                    continue;
                }
                let variant = toks[c3].text.as_str();
                let strong = STRONG_ORDERINGS.contains(&variant);
                if !strong && variant != "Relaxed" {
                    continue;
                }
                let rule = if strong {
                    Rule::OrderingStrong
                } else {
                    Rule::Ordering
                };
                if !strong && RELAXED_COUNTER_MODULES.contains(&rel_path) {
                    continue;
                }
                if !comments.has_ordering_near(t.line) {
                    out.push(Finding {
                        rule,
                        file: rel_path.to_string(),
                        line: t.line,
                        msg: format!(
                            "`Ordering::{variant}` without an adjacent `// ORDERING:` justification"
                        ),
                    });
                }
            }
            "Instant" | "SystemTime" => {
                if !ctx.library || rel_path.starts_with(CLOCK_MODULES_PREFIX) {
                    continue;
                }
                let Some(c1) = code(i, &toks) else { continue };
                let Some(c2) = code(c1, &toks) else { continue };
                let Some(c3) = code(c2, &toks) else { continue };
                if toks[c1].text == ":" && toks[c2].text == ":" && toks[c3].text == "now" {
                    out.push(Finding {
                        rule: Rule::Clock,
                        file: rel_path.to_string(),
                        line: t.line,
                        msg: format!(
                            "`{}::now` outside pp_telemetry — route timing through \
                             `pp_telemetry::timing::Clock` so `MetricsLevel::Off` stays clock-free",
                            t.text
                        ),
                    });
                }
            }
            "spawn" => {
                if !ctx.library || SPAWN_MODULES.contains(&rel_path) {
                    continue;
                }
                // A call — `.spawn(` or `thread::spawn(` — not an `fn
                // spawn` definition.
                let called = code(i, &toks).map(|c| toks[c].text == "(").unwrap_or(false);
                let qualified = prev_code(i, &toks)
                    .map(|p| toks[p].text == "." || toks[p].text == ":")
                    .unwrap_or(false);
                if called && qualified {
                    out.push(Finding {
                        rule: Rule::Spawn,
                        file: rel_path.to_string(),
                        line: t.line,
                        msg: "thread spawn outside `pp_engine::pool` / `pp_serve::server`".into(),
                    });
                }
            }
            "println" | "eprintln" | "print" | "eprint" | "dbg" => {
                if !ctx.library || CLI_CRATES_PREFIX.iter().any(|p| rel_path.starts_with(p)) {
                    continue;
                }
                let is_macro = code(i, &toks).map(|c| toks[c].text == "!").unwrap_or(false);
                if is_macro {
                    out.push(Finding {
                        rule: Rule::Print,
                        file: rel_path.to_string(),
                        line: t.line,
                        msg: format!("`{}!` in a library crate", t.text),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Path-derived context: which rule families apply to this file.
struct FileCtx {
    /// `tests/` or `benches/` trees, exempt from everything.
    in_tests: bool,
    /// Library source (a crate's `src/`, not `examples/`, not `src/bin/`):
    /// the clock/spawn/print rules apply only here.
    library: bool,
}

impl FileCtx {
    fn classify(rel_path: &str) -> Self {
        let segs: Vec<&str> = rel_path.split('/').collect();
        let in_tests = segs.iter().any(|s| *s == "tests" || *s == "benches");
        let in_examples = segs.contains(&"examples");
        let in_bin = segs.contains(&"bin") || rel_path.ends_with("src/main.rs");
        let in_src = segs.contains(&"src");
        Self {
            in_tests,
            library: in_src && !in_tests && !in_examples && !in_bin,
        }
    }
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-gated item (the
/// attribute through the item's closing brace) as exempt.
fn test_exempt_mask(toks: &[Tok]) -> Vec<bool> {
    let mut exempt = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            // Scan the attribute `[...]` for a `test` ident.
            let mut j = i + 1;
            while j < toks.len()
                && matches!(toks[j].kind, TokKind::LineComment | TokKind::BlockComment)
            {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                let mut depth = 0usize;
                let mut has_test = false;
                let mut k = j;
                while k < toks.len() {
                    match (toks[k].kind, toks[k].text.as_str()) {
                        (TokKind::Punct, "[") => depth += 1,
                        (TokKind::Punct, "]") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (TokKind::Ident, "test") => has_test = true,
                        _ => {}
                    }
                    k += 1;
                }
                if has_test && k < toks.len() {
                    // Find the gated item's body: the next `{` at
                    // attribute level. A `;` first means a braceless item
                    // (`#[cfg(test)] use …;`) — exempt just through it.
                    let mut m = k + 1;
                    let mut body_start = None;
                    while m < toks.len() {
                        match (toks[m].kind, toks[m].text.as_str()) {
                            (TokKind::Punct, "{") => {
                                body_start = Some(m);
                                break;
                            }
                            (TokKind::Punct, ";") => break,
                            _ => {}
                        }
                        m += 1;
                    }
                    let end = if let Some(b) = body_start {
                        let mut depth = 0usize;
                        let mut e = b;
                        while e < toks.len() {
                            match (toks[e].kind, toks[e].text.as_str()) {
                                (TokKind::Punct, "{") => depth += 1,
                                (TokKind::Punct, "}") => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            e += 1;
                        }
                        e
                    } else {
                        m
                    };
                    for cell in exempt.iter_mut().take(end.min(toks.len() - 1) + 1).skip(i) {
                        *cell = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    exempt
}

/// Comment positions with justification markers, indexed for the
/// adjacency queries.
struct CommentIndex {
    /// `(line, line_end)` of comments containing `SAFETY:` or `# Safety`.
    safety: Vec<(u32, u32)>,
    /// `(line, line_end)` of comments containing `ORDERING:`.
    ordering: Vec<(u32, u32)>,
}

impl CommentIndex {
    fn build(toks: &[Tok]) -> Self {
        let mut safety = Vec::new();
        let mut ordering = Vec::new();
        // A run of `//` lines on consecutive lines is one comment: the
        // marker may sit on its first line while the prose continues for
        // several more, and the whole block is what is "adjacent".
        fn flush(
            run: &mut Option<(u32, u32, bool, bool)>,
            safety: &mut Vec<(u32, u32)>,
            ordering: &mut Vec<(u32, u32)>,
        ) {
            if let Some((start, end, s, o)) = run.take() {
                if s {
                    safety.push((start, end));
                }
                if o {
                    ordering.push((start, end));
                }
            }
        }
        let mut run: Option<(u32, u32, bool, bool)> = None;
        for t in toks {
            // Doc comments lex as line comments (`///`) or block comments
            // (`/** */`), so `# Safety` sections are found here too.
            let has_safety = t.text.contains("SAFETY:") || t.text.contains("# Safety");
            let has_ordering = t.text.contains("ORDERING:");
            match t.kind {
                TokKind::LineComment => match &mut run {
                    Some((_, end, s, o)) if *end + 1 == t.line => {
                        *end = t.line;
                        *s |= has_safety;
                        *o |= has_ordering;
                    }
                    _ => {
                        flush(&mut run, &mut safety, &mut ordering);
                        run = Some((t.line, t.line_end, has_safety, has_ordering));
                    }
                },
                TokKind::BlockComment => {
                    flush(&mut run, &mut safety, &mut ordering);
                    if has_safety {
                        safety.push((t.line, t.line_end));
                    }
                    if has_ordering {
                        ordering.push((t.line, t.line_end));
                    }
                }
                // Code between comment lines breaks the run — but only
                // code on a *later* line: a trailing comment shares its
                // line with the code it annotates.
                _ => {
                    if let Some((_, end, _, _)) = run {
                        if t.line > end {
                            flush(&mut run, &mut safety, &mut ordering);
                        }
                    }
                }
            }
        }
        flush(&mut run, &mut safety, &mut ordering);
        Self { safety, ordering }
    }

    /// Whether a marker comment is adjacent to `line`: it starts at or
    /// before `line` (same-line trailing comments count) and ends within
    /// [`LOOKBACK_LINES`] above it.
    fn near(spans: &[(u32, u32)], line: u32) -> bool {
        spans
            .iter()
            .any(|&(start, end)| start <= line && end + LOOKBACK_LINES >= line)
    }

    fn has_safety_near(&self, line: u32) -> bool {
        Self::near(&self.safety, line)
    }

    fn has_ordering_near(&self, line: u32) -> bool {
        Self::near(&self.ordering, line)
    }
}

/// One `audit.allow` entry: suppress `rule` findings in files whose
/// workspace-relative path starts with `prefix`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being grandfathered.
    pub rule: Rule,
    /// Path prefix (a file or a directory ending in `/`).
    pub prefix: String,
    /// The `audit.allow` line it came from (for stale-entry diagnostics).
    pub line: u32,
    /// How many findings this entry suppressed in the current run.
    pub hits: usize,
}

/// The parsed allowlist. Entries record their hit counts so stale ones
/// can be reported.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
    /// The path the list was loaded from (diagnostics only).
    pub source: String,
}

impl Allowlist {
    /// Parses allowlist text. Lines are `<rule> <path-prefix>`; `#` starts
    /// a comment; blank lines are skipped.
    pub fn parse(source: &str, text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule_id), Some(prefix), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "{source}:{}: expected `<rule> <path-prefix>`, got {raw:?}",
                    idx + 1
                ));
            };
            let Some(rule) = Rule::from_id(rule_id) else {
                return Err(format!("{source}:{}: unknown rule {rule_id:?}", idx + 1));
            };
            entries.push(AllowEntry {
                rule,
                prefix: prefix.to_string(),
                line: idx as u32 + 1,
                hits: 0,
            });
        }
        Ok(Self {
            entries,
            source: source.to_string(),
        })
    }

    /// Removes suppressed findings, counting hits per entry.
    pub fn filter(&mut self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self
                .entries
                .iter_mut()
                .find(|e| e.rule == f.rule && f.file.starts_with(&e.prefix));
            match hit {
                Some(e) => {
                    e.hits += 1;
                    suppressed += 1;
                }
                None => kept.push(f),
            }
        }
        (kept, suppressed)
    }

    /// Findings for entries that suppressed nothing: a stale allowlist is
    /// a silently-weakened audit.
    pub fn stale(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| e.hits == 0)
            .map(|e| Finding {
                rule: Rule::AllowlistStale,
                file: self.source.clone(),
                line: e.line,
                msg: format!(
                    "stale allowlist entry `{} {}` suppresses nothing — remove it",
                    e.rule.id(),
                    e.prefix
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn unsafe_with_adjacent_safety_comment_passes() {
        let src = "// SAFETY: single writer per slot.\nunsafe { go() }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged_at_its_line() {
        let src = "fn f() {\n    let x = 1;\n    unsafe { go() }\n}\n";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Safety);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller holds the lock.\npub unsafe fn f() {}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        let mut src = String::from("// SAFETY: stale justification.\n");
        for _ in 0..LOOKBACK_LINES + 1 {
            src.push_str("fn pad() {}\n");
        }
        src.push_str("fn f() { unsafe { go() } }\n");
        let f = scan(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Safety);
    }

    #[test]
    fn ordering_variants_split_into_relaxed_and_strong_rules() {
        let src =
            "fn f() {\n    x.load(Ordering::Relaxed);\n    y.store(1, Ordering::SeqCst);\n}\n";
        let f = scan(src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, Rule::Ordering);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].rule, Rule::OrderingStrong);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn ordering_comment_covers_nearby_sites_and_trailing_lines() {
        let src = "// ORDERING: counters folded after the barrier.\n\
                   x.fetch_add(1, Ordering::Relaxed);\n\
                   y.fetch_add(1, Ordering::Relaxed); // same justification window\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn cmp_ordering_variants_are_not_atomics() {
        let src = "fn f() { if a.cmp(&b) == Ordering::Less { return Ordering::Greater; } }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn counter_modules_skip_relaxed_but_not_strong() {
        let src = "x.fetch_add(1, Ordering::Relaxed);\ny.store(1, Ordering::AcqRel);\n";
        let f = scan_file("crates/telemetry/src/counters.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::OrderingStrong);
    }

    #[test]
    fn clock_rule_fires_only_in_library_code_outside_telemetry() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(scan(src)[0].rule, Rule::Clock);
        assert!(scan_file("crates/telemetry/src/timing.rs", src).is_empty());
        assert!(scan_file("crates/demo/examples/x.rs", src).is_empty());
        assert!(scan_file("crates/demo/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn spawn_rule_distinguishes_calls_from_definitions() {
        let flagged = scan("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, Rule::Spawn);
        assert!(scan("fn spawn(x: u32) {}\n").is_empty());
        assert!(scan_file(
            "crates/engine/src/pool.rs",
            "fn f() { std::thread::spawn(|| {}); }\n"
        )
        .is_empty());
    }

    #[test]
    fn print_rule_fires_in_libraries_not_cli_crates() {
        let src = "fn f() { println!(\"hi\"); eprintln!(\"err\"); }\n";
        let f = scan(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::Print));
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_every_rule() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::time::Instant;\n\
                   #[test]\n\
                   fn t() { let _ = Instant::now(); unsafe { go() } x.load(Ordering::Relaxed); }\n\
                   }\n";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn braceless_cfg_test_items_do_not_swallow_following_code() {
        let src = "#[cfg(test)]\nuse std::time::Instant;\nfn f() { unsafe { go() } }\n";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Safety);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_dir_files_are_fully_exempt() {
        let src = "fn f() { unsafe { go() } let t = Instant::now(); }\n";
        assert!(scan_file("crates/demo/tests/it.rs", src).is_empty());
        assert!(scan_file("tests/it.rs", src).is_empty());
    }

    #[test]
    fn markers_inside_string_literals_do_not_justify() {
        let src = "let s = \"// SAFETY: not a comment\";\nunsafe { go() }\n";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Safety);
    }

    #[test]
    fn allowlist_suppresses_by_rule_and_prefix_and_reports_stale() {
        let mut allow = Allowlist::parse(
            "audit.allow",
            "# comment\nordering crates/core/\nclock crates/never/\n",
        )
        .unwrap();
        let findings = vec![
            Finding {
                rule: Rule::Ordering,
                file: "crates/core/src/bfs.rs".into(),
                line: 5,
                msg: String::new(),
            },
            Finding {
                rule: Rule::OrderingStrong,
                file: "crates/core/src/bfs.rs".into(),
                line: 6,
                msg: String::new(),
            },
        ];
        let (kept, suppressed) = allow.filter(findings);
        assert_eq!(suppressed, 1);
        assert_eq!(
            kept.len(),
            1,
            "strong ordering is not covered by `ordering`"
        );
        let stale = allow.stale();
        assert_eq!(stale.len(), 1);
        assert!(stale[0].msg.contains("clock crates/never/"));
        assert_eq!(stale[0].line, 3);
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_malformed_lines() {
        assert!(Allowlist::parse("a", "bogus crates/x/\n").is_err());
        assert!(Allowlist::parse("a", "ordering\n").is_err());
        assert!(Allowlist::parse("a", "ordering a b\n").is_err());
    }
}
