//! The `pp-audit` CLI: scan a workspace tree, print `file:line`
//! diagnostics, optionally write a JSON report, and (under `--deny`) exit
//! nonzero on any finding — the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use pp_audit::rules::{Allowlist, Rule};

const USAGE: &str = "\
pp-audit — workspace invariant checker

USAGE:
    pp-audit [--root DIR] [--allow FILE] [--json FILE] [--deny] [--quiet] [--list-rules]

OPTIONS:
    --root DIR     Tree to scan (default: current directory)
    --allow FILE   Allowlist file (default: <root>/audit.allow if present)
    --json FILE    Write the machine-readable report here
    --deny         Exit 1 if any finding survives the allowlist (CI mode)
    --quiet        Suppress per-finding lines (summary only)
    --list-rules   Print the rule table and exit
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pp-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = next_value(&mut args, "--root")?.into(),
            "--allow" => allow_path = Some(next_value(&mut args, "--allow")?.into()),
            "--json" => json_path = Some(next_value(&mut args, "--json")?.into()),
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--list-rules" => {
                for rule in Rule::all() {
                    println!("{:16} {}", rule.id(), rule.protects());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    let allow_file = allow_path.or_else(|| {
        let default = root.join("audit.allow");
        default.exists().then_some(default)
    });
    let mut allowlist = match &allow_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            Allowlist::parse(&path.to_string_lossy(), &text)?
        }
        None => Allowlist::default(),
    };

    let report = pp_audit::audit_tree(&root, &mut allowlist)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if let Some(path) = &json_path {
        std::fs::write(path, report.render_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if quiet {
        // Only the trailing summary line.
        let human = report.render_human();
        print!(
            "{}",
            human
                .lines()
                .last()
                .map(|l| format!("{l}\n"))
                .unwrap_or_default()
        );
    } else {
        print!("{}", report.render_human());
    }

    Ok(if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}
