//! Rendering: human diagnostics and the machine-readable JSON report.
//!
//! The JSON follows the workspace's hand-rolled writer conventions (see
//! `pp_serve::json`): string payloads go through [`pp_serve::json::escape`],
//! integers are emitted bare, and the shape is stable enough for CI to
//! parse with nothing but a JSON reader.

use crate::rules::{Finding, Rule};
use pp_serve::json::escape;

/// The outcome of one audit run over a file tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived the allowlist (including stale-allowlist
    /// entries), sorted by file then line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `audit.allow`.
    pub suppressed: usize,
}

impl Report {
    /// Whether the run is clean (what `--deny` gates on).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `file:line: [rule] msg` per finding
    /// plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let mut per_rule: Vec<(Rule, usize)> = Vec::new();
        for f in &self.findings {
            match per_rule.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => per_rule.push((f.rule, 1)),
            }
        }
        let breakdown = per_rule
            .iter()
            .map(|(r, n)| format!("{} {}", n, r.id()))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "pp-audit: {} file(s), {} finding(s){}{}, {} suppressed by allowlist\n",
            self.files_scanned,
            self.findings.len(),
            if breakdown.is_empty() { "" } else { ": " },
            breakdown,
            self.suppressed,
        ));
        out
    }

    /// The machine-readable report.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"root\": \"{}\",\n", escape(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
                f.rule.id(),
                escape(&f.file),
                f.line,
                escape(&f.msg)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: "/w s".into(),
            files_scanned: 3,
            findings: vec![Finding {
                rule: Rule::Safety,
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                msg: "needs \"SAFETY\"".into(),
            }],
            suppressed: 2,
        }
    }

    #[test]
    fn json_parses_back_with_the_workspace_reader() {
        let r = sample();
        let v = pp_serve::json::parse(&r.render_json()).expect("valid JSON");
        assert_eq!(v.get("files_scanned").and_then(|x| x.u64()), Some(3));
        assert_eq!(v.get("clean").and_then(|x| x.bool()), Some(false));
        let f = &v.get("findings").and_then(|x| x.arr()).unwrap()[0];
        assert_eq!(f.get("rule").and_then(|x| x.str()), Some("safety"));
        assert_eq!(f.get("line").and_then(|x| x.u64()), Some(7));
        assert_eq!(f.get("msg").and_then(|x| x.str()), Some("needs \"SAFETY\""));
    }

    #[test]
    fn human_rendering_is_file_line_rule_shaped() {
        let r = sample();
        let text = r.render_human();
        assert!(text.contains("crates/x/src/lib.rs:7: [safety]"));
        assert!(text.contains("1 finding(s): 1 safety"));
        assert!(text.contains("2 suppressed"));
    }

    #[test]
    fn empty_report_is_clean_and_renders_an_empty_array() {
        let r = Report {
            root: "w".into(),
            files_scanned: 1,
            ..Report::default()
        };
        assert!(r.is_clean());
        let v = pp_serve::json::parse(&r.render_json()).unwrap();
        assert_eq!(
            v.get("findings").and_then(|x| x.arr()).map(|a| a.len()),
            Some(0)
        );
        assert_eq!(v.get("clean").and_then(|x| x.bool()), Some(true));
    }
}
