//! End-to-end audit runs: the seeded-violation fixture tree must produce
//! exactly the expected `file:line` diagnostics, the allowlist must
//! suppress (and report staleness) precisely, the CLI must gate with a
//! nonzero exit under `--deny`, and the workspace itself must audit
//! clean under its checked-in `audit.allow`.

use pp_audit::audit_tree;
use pp_audit::report::Report;
use pp_audit::rules::{Allowlist, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/viol")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn audit(root: &Path, allow: &str) -> Report {
    let mut allow = Allowlist::parse("inline", allow).expect("parse allowlist");
    audit_tree(root, &mut allow).expect("audit walk")
}

#[test]
fn fixture_tree_yields_exactly_the_seeded_findings() {
    let report = audit(&fixtures_root(), "");
    let got: Vec<(String, u32, Rule)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    // Sorted by file then line — the report's contract.
    let want = vec![
        ("src/crlf.rs".to_string(), 5, Rule::Ordering),
        ("src/lib.rs".to_string(), 9, Rule::Safety),
        ("src/lib.rs".to_string(), 18, Rule::Ordering),
        ("src/lib.rs".to_string(), 22, Rule::OrderingStrong),
        ("src/lib.rs".to_string(), 31, Rule::Clock),
        ("src/lib.rs".to_string(), 35, Rule::Spawn),
        ("src/lib.rs".to_string(), 39, Rule::Print),
    ];
    assert_eq!(got, want);
    assert_eq!(report.suppressed, 0);
    assert!(!report.is_clean());
    // The justified twins, the literal/comment decoys, the test module,
    // and the binary target contributed nothing — only the seeds flag.
    assert_eq!(report.files_scanned, 3);
}

#[test]
fn allowlist_suppresses_exact_rules_and_reports_stale_entries() {
    // Suppress the two ordering findings in lib.rs; crlf.rs stays hot.
    let report = audit(
        &fixtures_root(),
        "# fixture allow\nordering src/lib.rs\nordering-strong src/lib.rs\n",
    );
    assert_eq!(report.suppressed, 2);
    assert!(report
        .findings
        .iter()
        .any(|f| f.file == "src/crlf.rs" && f.rule == Rule::Ordering));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file == "src/lib.rs" && f.rule == Rule::Ordering));

    // An entry that matches nothing is itself a finding: allowlists must
    // shrink as sites are fixed, not fossilize.
    let stale = audit(&fixtures_root(), "print src/nonexistent.rs\n");
    assert!(stale
        .findings
        .iter()
        .any(|f| f.rule == Rule::AllowlistStale && f.msg.contains("src/nonexistent.rs")));
}

#[test]
fn cli_deny_gates_with_nonzero_exit_and_writes_json() {
    let json_path = std::env::temp_dir().join(format!("pp-audit-test-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_pp-audit"))
        .args(["--root"])
        .arg(fixtures_root())
        .args(["--deny", "--quiet", "--json"])
        .arg(&json_path)
        .output()
        .expect("run pp-audit");
    assert_eq!(out.status.code(), Some(1), "--deny with findings exits 1");

    let text = std::fs::read_to_string(&json_path).expect("json artifact");
    std::fs::remove_file(&json_path).ok();
    let v = pp_serve::json::parse(&text).expect("valid json");
    assert_eq!(v.get("clean").and_then(|c| c.bool()), Some(false));
    let findings = v.get("findings").and_then(|f| f.arr()).unwrap();
    assert_eq!(findings.len(), 7);
    assert!(findings.iter().any(|f| {
        f.get("rule").and_then(|r| r.str()) == Some("safety")
            && f.get("file").and_then(|p| p.str()) == Some("src/lib.rs")
            && f.get("line").and_then(|l| l.num()) == Some(9.0)
    }));
}

#[test]
fn cli_without_deny_reports_but_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_pp-audit"))
        .args(["--root"])
        .arg(fixtures_root())
        .arg("--quiet")
        .output()
        .expect("run pp-audit");
    assert_eq!(out.status.code(), Some(0), "report-only mode never gates");
}

/// The tentpole's acceptance criterion: the workspace itself, under its
/// checked-in allowlist, has zero findings — and every allowlist entry
/// still earns its keep.
#[test]
fn workspace_audits_clean_under_its_own_allowlist() {
    let root = repo_root();
    let allow = std::fs::read_to_string(root.join("audit.allow")).expect("checked-in allowlist");
    let report = audit(&root, &allow);
    let rendered = report.render_human();
    assert!(
        report.is_clean(),
        "workspace must stay audit-clean:\n{rendered}"
    );
    assert!(report.suppressed > 0, "the allowlist is load-bearing");
    assert!(report.files_scanned > 100);
}
