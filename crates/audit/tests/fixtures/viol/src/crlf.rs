// CRLF fixture: every line ends in \r\n; line numbers must still count.
use std::sync::atomic::{AtomicU32, Ordering};

pub fn relaxed(a: &AtomicU32) -> u32 {
    a.load(Ordering::Relaxed)
}
