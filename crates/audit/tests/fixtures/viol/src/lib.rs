// A seeded-violation fixture: every site below is either a deliberate
// violation (flagged by exactly one rule) or a justified twin that must
// stay silent. `tests/audit_fixtures.rs` asserts the exact file:line of
// each finding, so keep the layout stable.
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

pub fn unsafe_without_comment(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn unsafe_with_comment(p: *const u32) -> u32 {
    // SAFETY: caller contract; fixture twin that must stay silent.
    unsafe { *p }
}

pub fn relaxed_without_comment(a: &AtomicU32) -> u32 {
    a.load(Ordering::Relaxed)
}

pub fn seqcst_without_comment(a: &AtomicU32) {
    a.store(1, Ordering::SeqCst);
}

pub fn strong_with_comment(a: &AtomicU32) {
    // ORDERING: AcqRel — fixture twin that must stay silent.
    a.fetch_add(1, Ordering::AcqRel);
}

pub fn clock_read() -> Instant {
    Instant::now()
}

pub fn spawns() {
    std::thread::spawn(|| {}).join().unwrap();
}

pub fn prints() {
    println!("library crates must not print");
}

pub fn tricky_non_violations() {
    // None of these may flag: the keywords live inside literals or
    // comments, and the lexer must see through all of them.
    let raw = r#"unsafe { Ordering::SeqCst } Instant::now() println!("x")"#;
    let s = "// not a comment: unsafe { std::thread::spawn }";
    let q = '"';
    /* nested /* block comment: unsafe { Instant::now() } */ still one */
    let _ = raw.len() + s.len() + q.len_utf8();
}

/// Doc text mentioning `unsafe` and `Ordering::SeqCst` must not flag.
pub fn documented() {}

#[cfg(test)]
mod tests {
    // Test code is exempt from every rule.
    #[test]
    fn exempt() {
        println!("fine here");
        let _ = std::time::Instant::now();
        let _ = std::thread::spawn(|| 1).join();
    }
}
