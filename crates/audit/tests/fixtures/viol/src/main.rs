// Binary target: `println!` is the program's output channel here, so the
// print rule must stay silent for this file.
fn main() {
    println!("binaries may print");
}
