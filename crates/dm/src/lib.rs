//! Distributed-memory simulation substrate (§6.3 of the paper).
//!
//! The paper's DM experiments ran on Cray XC40 nodes with up to ~1000 MPI
//! processes, comparing three variants per algorithm: push over RMA (remote
//! atomics), pull over RMA (remote gets), and Message Passing (buffered
//! `MPI_Alltoallv`). Reproducing that hardware is impossible here, so this
//! crate provides a *deterministic BSP simulator*:
//!
//! * ranks execute supersteps against real in-memory state, so algorithm
//!   results are exact and comparable with the shared-memory versions;
//! * every communication primitive charges a [`cost::CostModel`] price to
//!   the issuing rank's clock — a LogGP-style model with the asymmetry the
//!   paper identifies in §6.5: float `MPI_Accumulate` takes a slow locking
//!   protocol while integer FAA has a fast path;
//! * modeled wall-clock = max over rank clocks, advanced at barriers.
//!
//! Message/byte/remote-op *counts* are exact; only the time mapping is
//! modeled. Figure 3's strong-scaling shapes (MP ≫ RMA for PageRank,
//! RMA > MP for triangle counting, pushing slowest for PR) emerge from the
//! counts × the documented cost asymmetries, not from curve fitting.

// Rank loops index per-rank arrays by rank id; enumerate() would obscure
// the BSP structure.
#![allow(clippy::needless_range_loop)]

pub mod algos;
pub mod cost;
pub mod machine;

pub use algos::{
    dm_bfs, dm_coloring, dm_pagerank, dm_sssp, dm_triangle_count, DmBfsReport, DmBfsVariant,
    DmColoringReport, DmReport, DmSsspReport, DmVariant,
};
pub use cost::{CostModel, NetStats};
pub use machine::Machine;
