//! The communication cost model and per-rank network statistics.

/// LogGP-style cost parameters, in microseconds (µs) and µs/byte. Defaults
/// approximate a Cray Aries interconnect with the §6.5 asymmetry between
//  float accumulates and integer FAAs.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Message/remote-op startup latency α (µs).
    pub alpha: f64,
    /// Per-byte transfer cost β (µs/byte).
    pub beta: f64,
    /// Extra cost of one remote get beyond α+β·bytes (µs).
    pub rma_get: f64,
    /// Extra cost of one remote put (µs).
    pub rma_put: f64,
    /// Remote integer FAA — hardware fast path (µs). §6.5: "the utilized
    /// RMA library offers fast path codes of remote atomic FAAs that access
    /// 64-bit integers".
    pub rma_faa_int: f64,
    /// Remote float accumulate — "implemented with costly underlying
    /// locking protocol" (§6.3.1), hence several times the FAA cost (µs).
    pub rma_accumulate_float: f64,
    /// Per-message software overhead of message passing (buffer
    /// preparation, §6.3.1) on top of α (µs).
    pub msg_overhead: f64,
    /// Modeled cost of one local memory operation (µs) — calibrates the
    /// compute/communication ratio.
    pub local_op: f64,
    /// Barrier base cost; a barrier costs `barrier · log2(P)` (µs).
    pub barrier: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::xc40()
    }
}

impl CostModel {
    /// Parameters approximating the paper's XC40/Aries setting.
    pub fn xc40() -> Self {
        Self {
            alpha: 1.6,
            beta: 0.0003,
            rma_get: 0.9,
            rma_put: 0.7,
            rma_faa_int: 0.8,
            rma_accumulate_float: 6.5,
            msg_overhead: 0.15,
            local_op: 0.002,
            barrier: 1.2,
        }
    }

    /// Cost of one point-to-point transfer of `bytes`.
    pub fn transfer(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }
}

/// Per-rank communication statistics (the distributed analogue of the
/// PAPI/manual counters: "in distributed settings we count sent/received
/// messages, issued collective operations, and remote reads/writes/atomics",
/// §6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Point-to-point or collective messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Remote gets issued.
    pub remote_gets: u64,
    /// Remote puts issued.
    pub remote_puts: u64,
    /// Remote integer FAAs issued.
    pub remote_faas: u64,
    /// Remote float accumulates issued.
    pub remote_accumulates: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Peak bytes of send/receive buffering (MP's memory price, §6.3.1).
    pub peak_buffer_bytes: u64,
}

impl NetStats {
    /// Element-wise sum.
    pub fn merge(&self, o: &NetStats) -> NetStats {
        NetStats {
            messages: self.messages + o.messages,
            bytes_sent: self.bytes_sent + o.bytes_sent,
            remote_gets: self.remote_gets + o.remote_gets,
            remote_puts: self.remote_puts + o.remote_puts,
            remote_faas: self.remote_faas + o.remote_faas,
            remote_accumulates: self.remote_accumulates + o.remote_accumulates,
            collectives: self.collectives + o.collectives,
            peak_buffer_bytes: self.peak_buffer_bytes.max(o.peak_buffer_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_accumulate_is_slower_than_int_faa() {
        // The §6.5 asymmetry the whole PR-vs-TC contrast rests on.
        let c = CostModel::xc40();
        assert!(c.rma_accumulate_float > 3.0 * c.rma_faa_int);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let c = CostModel::xc40();
        assert!(c.transfer(1 << 20) > 100.0 * c.transfer(8));
        assert!(c.transfer(0) == c.alpha);
    }

    #[test]
    fn stats_merge_adds_and_maxes() {
        let a = NetStats {
            messages: 2,
            peak_buffer_bytes: 100,
            ..Default::default()
        };
        let b = NetStats {
            messages: 3,
            peak_buffer_bytes: 40,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.messages, 5);
        assert_eq!(m.peak_buffer_bytes, 100, "buffers peak, not add");
    }
}
