//! Distributed PageRank and triangle counting in the three variants of
//! §6.3: push over RMA, pull over RMA, and Message Passing.

use pp_graph::CsrGraph;

use crate::cost::NetStats;
use crate::machine::Machine;
use crate::CostModel;

/// The three DM variants of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmVariant {
    /// Remote accumulates/FAAs into the owner's window.
    PushRma,
    /// Remote gets of the needed operands, local updates.
    PullRma,
    /// Buffered update exchange through an `MPI_Alltoallv` collective —
    /// "this variant is unusual as it combines pushing and pulling"
    /// (§6.3.1).
    MsgPassing,
}

impl DmVariant {
    /// All variants in Figure 3's legend order.
    pub const ALL: [DmVariant; 3] = [
        DmVariant::PushRma,
        DmVariant::PullRma,
        DmVariant::MsgPassing,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            DmVariant::PushRma => "Pushing",
            DmVariant::PullRma => "Pulling",
            DmVariant::MsgPassing => "Msg-Passing",
        }
    }
}

/// Outcome of a simulated distributed run.
#[derive(Clone, Debug)]
pub struct DmReport {
    /// Modeled wall-clock per iteration (PR) or total (TC), in seconds.
    pub modeled_seconds: f64,
    /// Aggregated communication statistics.
    pub stats: NetStats,
    /// The algorithm's numeric result (ranks for PR, total triangles for
    /// TC encoded in `triangles`).
    pub ranks: Vec<f64>,
    /// Total triangles (TC runs only).
    pub triangles: u64,
}

/// Distributed PageRank (§6.3.1) on `p` simulated ranks.
///
/// * push-RMA: each rank scatters `f·pr[v]/d(v)` into `new_pr` with
///   `MPI_Accumulate` — the slow float path.
/// * pull-RMA: each rank gets *both the degree and the rank* of every
///   neighbor (the §6.3.1 communication overhead) and updates locally.
/// * MP: update vectors are exchanged with one `MPI_Alltoallv` per
///   iteration; each process both pushes (contributes updates) and pulls
///   (receives them).
pub fn dm_pagerank(
    g: &CsrGraph,
    variant: DmVariant,
    p: usize,
    iters: usize,
    damping: f64,
    cost: CostModel,
) -> DmReport {
    let n = g.num_vertices();
    let mut machine = Machine::new(p, cost);
    let part = machine.partition(n);
    let base = (1.0 - damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];

    for _ in 0..iters {
        new_pr.iter_mut().for_each(|x| *x = base);
        match variant {
            DmVariant::PushRma => {
                for r in 0..p {
                    for v in part.range(r) {
                        let d = g.degree(v);
                        if d == 0 {
                            continue;
                        }
                        let share = damping * pr[v as usize] / d as f64;
                        machine.local_work(r, d as u64);
                        for &u in g.neighbors(v) {
                            machine.rma_accumulate_float(r, part.owner(u));
                            new_pr[u as usize] += share;
                        }
                    }
                }
                machine.barrier();
            }
            DmVariant::PullRma => {
                for r in 0..p {
                    for v in part.range(r) {
                        let mut acc = 0.0;
                        machine.local_work(r, g.degree(v) as u64);
                        for &u in g.neighbors(v) {
                            // Fetch the neighbor's rank *and* degree
                            // (§6.3.1: "it fetches both the degree and the
                            // rank of each neighbor").
                            machine.rma_get(r, part.owner(u), 8);
                            machine.rma_get(r, part.owner(u), 8);
                            acc += pr[u as usize] / g.degree(u) as f64;
                        }
                        new_pr[v as usize] += damping * acc;
                    }
                }
                machine.barrier();
            }
            DmVariant::MsgPassing => {
                // Each rank aggregates one (vertex, delta) update per owned
                // *target* it touches, then a single alltoallv delivers all
                // updates. 12 bytes per update (u32 index + f64 delta).
                let mut send_bytes = vec![vec![0usize; p]; p];
                for r in 0..p {
                    // Updates to one owner are merged per target vertex;
                    // count distinct (owner, target) pairs.
                    let mut touched: Vec<Vec<u32>> = vec![Vec::new(); p];
                    for v in part.range(r) {
                        let d = g.degree(v);
                        if d == 0 {
                            continue;
                        }
                        let share = damping * pr[v as usize] / d as f64;
                        machine.local_work(r, d as u64);
                        for &u in g.neighbors(v) {
                            touched[part.owner(u)].push(u);
                            new_pr[u as usize] += share;
                        }
                    }
                    for (dest, mut ts) in touched.into_iter().enumerate() {
                        if dest == r {
                            continue;
                        }
                        ts.sort_unstable();
                        ts.dedup();
                        send_bytes[r][dest] = ts.len() * 12;
                    }
                }
                machine.alltoallv(&send_bytes);
            }
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }

    DmReport {
        modeled_seconds: machine.elapsed_seconds() / iters as f64,
        stats: machine.total_stats(),
        ranks: pr,
        triangles: 0,
    }
}

/// Distributed triangle counting (§6.3.2) on `p` simulated ranks.
///
/// Every variant fetches the neighbor list `N(u)` of each scanned neighbor
/// (one bulk get of `4·d(u)` bytes — the paper's single-get extreme, §6.3.2
/// "Memory Consumption"). Push increments remote counters with integer
/// FAAs (the fast path, §6.5); pull increments only local counters; MP
/// buffers increment messages and flushes them in one exchange.
pub fn dm_triangle_count(g: &CsrGraph, variant: DmVariant, p: usize, cost: CostModel) -> DmReport {
    let n = g.num_vertices();
    let mut machine = Machine::new(p, cost);
    let part = machine.partition(n);
    let mut tc = vec![0u64; n];
    let mut send_updates: Vec<Vec<u64>> = vec![vec![0; p]; p];

    for r in 0..p {
        for v in part.range(r) {
            let nbrs = g.neighbors(v);
            for (i, &w1) in nbrs.iter().enumerate() {
                // Bulk fetch of N(w1) to intersect against: one-sided get
                // under RMA, a request/response message pair under MP.
                match variant {
                    DmVariant::MsgPassing => {
                        machine.msg_fetch(r, part.owner(w1), 4 * g.degree(w1).max(1))
                    }
                    _ => machine.rma_get(r, part.owner(w1), 4 * g.degree(w1).max(1)),
                }
                machine.local_work(r, (nbrs.len() * 2) as u64);
                for (j, &w2) in nbrs.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if g.has_edge(w1, w2) {
                        match variant {
                            DmVariant::PushRma => {
                                machine.rma_faa_int(r, part.owner(w1));
                                tc[w1 as usize] += 1;
                            }
                            DmVariant::PullRma => {
                                machine.local_work(r, 1);
                                tc[v as usize] += 1;
                            }
                            DmVariant::MsgPassing => {
                                // Buffer the increment for w1's owner.
                                send_updates[r][part.owner(w1)] += 1;
                                tc[w1 as usize] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    if variant == DmVariant::MsgPassing {
        // Flush all buffered counter updates (8 bytes each).
        let bytes: Vec<Vec<usize>> = send_updates
            .iter()
            .enumerate()
            .map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(|(d, &cnt)| if d == r { 0 } else { (cnt * 8) as usize })
                    .collect()
            })
            .collect();
        machine.alltoallv(&bytes);
    } else {
        machine.barrier();
    }

    let triangles: u64 = tc.iter().sum::<u64>() / 2 / 3;
    DmReport {
        modeled_seconds: machine.elapsed_seconds(),
        stats: machine.total_stats(),
        ranks: Vec::new(),
        triangles,
    }
}

/// Result of a distributed Δ-stepping run.
#[derive(Clone, Debug)]
pub struct DmSsspReport {
    /// Modeled wall-clock in seconds.
    pub modeled_seconds: f64,
    /// Aggregated communication statistics.
    pub stats: NetStats,
    /// Exact distances (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
}

/// Distributed Δ-stepping (§3.4 cites Chakaravarthy et al.'s DM variant;
/// §6.5 observes the SM/DM inversion this reproduces).
///
/// * **push**: every relaxation of a remote edge is one fine-grained
///   message-backed update (request + the owner's bucket bookkeeping) —
///   cheap as an intra-node atomic, expensive as a message;
/// * **pull**: each epoch, unsettled vertices *batch-fetch* the distances of
///   their remote neighbors in the current bucket — one bulk get per
///   (vertex, epoch) instead of one message per relaxation.
///
/// On shared memory the push atomics are nearly free and pushing wins
/// (Figure 2); across a network the per-relaxation messages dominate and
/// pulling wins — "intra-node atomics are less costly than messages" (§6.5).
pub fn dm_sssp(
    g: &CsrGraph,
    root: u32,
    delta: u64,
    dir_push: bool,
    p: usize,
    cost: CostModel,
) -> DmSsspReport {
    assert!(g.is_weighted(), "Δ-stepping requires weights");
    let n = g.num_vertices();
    let mut machine = Machine::new(p, cost);
    let part = machine.partition(n);
    let mut dist = vec![u64::MAX; n];
    dist[root as usize] = 0;

    let mut b = 0u64;
    loop {
        // Settle bucket b with Bellman-Ford-style phases.
        loop {
            let mut changed = false;
            if dir_push {
                // Bucket members scatter relaxations.
                for r in 0..p {
                    for v in part.range(r) {
                        let dv = dist[v as usize];
                        if dv == u64::MAX || dv / delta != b {
                            continue;
                        }
                        for (w, wt) in g.weighted_neighbors(v) {
                            let owner = part.owner(w);
                            let cand = dv.saturating_add(wt as u64);
                            if owner != r {
                                // Fine-grained remote update: the paper's DM
                                // push sends one message per relaxation.
                                machine.msg_fetch(r, owner, 16);
                            } else {
                                machine.local_work(r, 1);
                            }
                            if cand < dist[w as usize] {
                                dist[w as usize] = cand;
                                if cand / delta == b {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            } else {
                // Unsettled vertices batch-pull bucket members' distances.
                for r in 0..p {
                    for v in part.range(r) {
                        let dv = dist[v as usize];
                        if dv <= b * delta {
                            continue;
                        }
                        // One bulk get per remote owner touched per phase
                        // (the batched-fetch scheme that makes DM pulling
                        // viable).
                        let mut owners_touched = vec![false; p];
                        let mut best = dv;
                        for (w, wt) in g.weighted_neighbors(v) {
                            let owner = part.owner(w);
                            if owner != r && !owners_touched[owner] {
                                owners_touched[owner] = true;
                                machine.rma_get(r, owner, 8 * g.degree(v).max(1));
                            } else {
                                machine.local_work(r, 1);
                            }
                            let dw = dist[w as usize];
                            if dw != u64::MAX && dw / delta == b {
                                best = best.min(dw.saturating_add(wt as u64));
                            }
                        }
                        if best < dv {
                            dist[v as usize] = best;
                            if best / delta == b {
                                changed = true;
                            }
                        }
                    }
                }
            }
            machine.barrier();
            if !changed {
                break;
            }
        }
        match dist
            .iter()
            .filter(|&&d| d != u64::MAX && d / delta > b)
            .map(|&d| d / delta)
            .min()
        {
            Some(nb) => b = nb,
            None => break,
        }
    }

    DmSsspReport {
        modeled_seconds: machine.elapsed_seconds(),
        stats: machine.total_stats(),
        dist,
    }
}

/// BFS traversal policy for [`dm_bfs`] (§7.2 "MP (Point-to-Point
/// Messages)": in traversals, pushing–pulling switching offers the highest
/// performance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmBfsVariant {
    /// Top-down every round: frontier owners send visit requests to the
    /// owners of unvisited neighbors.
    Push,
    /// Bottom-up every round: every rank scans its own unvisited vertices
    /// and fetches the frontier membership of their neighbors.
    Pull,
    /// Direction-optimizing: top-down while the frontier is small, bottom-up
    /// when its out-edges pass `m/alpha` (Beamer's heuristic over BSP).
    Switching {
        /// Push→pull threshold divisor.
        alpha: usize,
    },
}

impl DmBfsVariant {
    /// The three policies in legend order.
    pub const ALL: [DmBfsVariant; 3] = [
        DmBfsVariant::Push,
        DmBfsVariant::Pull,
        DmBfsVariant::Switching { alpha: 15 },
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            DmBfsVariant::Push => "Pushing",
            DmBfsVariant::Pull => "Pulling",
            DmBfsVariant::Switching { .. } => "Switching",
        }
    }
}

/// Result of a distributed BFS.
#[derive(Clone, Debug)]
pub struct DmBfsReport {
    /// Modeled wall-clock in seconds.
    pub modeled_seconds: f64,
    /// Aggregated communication statistics.
    pub stats: NetStats,
    /// BFS levels (`u32::MAX` = unreached) — exact.
    pub levels: Vec<u32>,
    /// Rounds executed and the direction used in each (`true` = pull).
    pub rounds: Vec<bool>,
}

/// Distributed BFS on `p` simulated ranks.
///
/// Push rounds communicate one visit request per cut arc out of the
/// frontier (an 8-byte put to the target's owner). Pull rounds have every
/// rank with unvisited vertices fetch the remote frontier words its
/// adjacency needs (one get per remote frontier-membership probe). The
/// switching policy reproduces the direction-optimizing tradeoff in the
/// BSP cost model.
pub fn dm_bfs(
    g: &CsrGraph,
    root: u32,
    variant: DmBfsVariant,
    p: usize,
    cost: CostModel,
) -> DmBfsReport {
    let n = g.num_vertices();
    let mut machine = Machine::new(p, cost);
    let part = machine.partition(n);
    let m = g.num_arcs().max(1);

    let mut levels = vec![u32::MAX; n];
    levels[root as usize] = 0;
    let mut frontier: Vec<u32> = vec![root];
    let mut rounds = Vec::new();
    let mut cur = 0u32;

    while !frontier.is_empty() {
        let frontier_arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
        let pull_round = match variant {
            DmBfsVariant::Push => false,
            DmBfsVariant::Pull => true,
            DmBfsVariant::Switching { alpha } => frontier_arcs > m / alpha,
        };
        let mut next = Vec::new();
        if pull_round {
            // Bottom-up: each rank scans its own unvisited vertices; a
            // remote neighbor's frontier membership costs one get.
            for r in 0..p {
                for v in part.range(r) {
                    if levels[v as usize] != u32::MAX {
                        continue;
                    }
                    machine.local_work(r, 1);
                    for &u in g.neighbors(v) {
                        let owner = part.owner(u);
                        if owner != r {
                            machine.rma_get(r, owner, 8);
                        } else {
                            machine.local_work(r, 1);
                        }
                        if levels[u as usize] == cur {
                            levels[v as usize] = cur + 1;
                            next.push(v);
                            break;
                        }
                    }
                }
            }
        } else {
            // Top-down: frontier owners push visit requests along out-edges.
            for r in 0..p {
                for &v in frontier.iter().filter(|&&v| part.owner(v) == r) {
                    for &w in g.neighbors(v) {
                        let owner = part.owner(w);
                        if owner != r {
                            machine.rma_put(r, owner, 8);
                        } else {
                            machine.local_work(r, 1);
                        }
                        if levels[w as usize] == u32::MAX {
                            levels[w as usize] = cur + 1;
                            next.push(w);
                        }
                    }
                }
            }
        }
        machine.barrier();
        rounds.push(pull_round);
        frontier = next;
        cur += 1;
    }

    DmBfsReport {
        modeled_seconds: machine.elapsed_seconds(),
        stats: machine.total_stats(),
        levels,
        rounds,
    }
}

/// Result of a distributed Boman coloring.
#[derive(Clone, Debug)]
pub struct DmColoringReport {
    /// Modeled wall-clock in seconds.
    pub modeled_seconds: f64,
    /// Aggregated communication statistics.
    pub stats: NetStats,
    /// Per-vertex colors — exact and conflict-free.
    pub colors: Vec<u32>,
    /// Outer iterations until no cross-partition conflict remained.
    pub iterations: usize,
}

/// Distributed Boman graph coloring (§3.6 — the algorithm was designed for
/// "distributed memory computers" in the first place).
///
/// Each iteration greedily colors every rank's uncolored vertices against
/// the colors it can see, then resolves cross-partition conflicts on border
/// vertices; the higher-id endpoint is uncolored for the next round.
/// The push/pull choice (`dir_push`) sits in how border colors move:
///
/// * **push**: after coloring, a rank *writes* each border vertex's color to
///   the owner of every remote neighbor (one put per cut arc) — the remote
///   side's conflict check is then local;
/// * **pull**: a rank *reads* the colors of its border vertices' remote
///   neighbors (one bulk get per remote owner per border vertex).
pub fn dm_coloring(g: &CsrGraph, dir_push: bool, p: usize, cost: CostModel) -> DmColoringReport {
    let n = g.num_vertices();
    let mut machine = Machine::new(p, cost);
    let part = machine.partition(n);
    let mut colors = vec![u32::MAX; n];
    let mut iterations = 0;

    loop {
        iterations += 1;
        // Phase 1: sequential greedy coloring inside each partition. Ranks
        // color concurrently in the real algorithm, so a rank sees *stale*
        // colors for vertices it does not own (the snapshot from the last
        // exchange) — that staleness is what creates the cross-partition
        // conflicts phase 2 exists to fix.
        let snapshot = colors.clone();
        for r in 0..p {
            for v in part.range(r) {
                if colors[v as usize] != u32::MAX {
                    continue;
                }
                machine.local_work(r, g.degree(v) as u64 + 1);
                let mut used: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .map(|&u| {
                        if part.owner(u) == r {
                            colors[u as usize]
                        } else {
                            snapshot[u as usize]
                        }
                    })
                    .filter(|&c| c != u32::MAX)
                    .collect();
                used.sort_unstable();
                used.dedup();
                let mut c = 0u32;
                for &u in &used {
                    if u == c {
                        c += 1;
                    } else if u > c {
                        break;
                    }
                }
                colors[v as usize] = c;
            }
        }

        // Border color movement: push writes outward, pull reads inward.
        for r in 0..p {
            for v in part.range(r) {
                let mut owners_touched = vec![false; p];
                for &u in g.neighbors(v) {
                    let owner = part.owner(u);
                    if owner == r {
                        continue;
                    }
                    if dir_push {
                        // One put per cut arc.
                        machine.rma_put(r, owner, 8);
                    } else if !owners_touched[owner] {
                        // One bulk get per (border vertex, remote owner).
                        owners_touched[owner] = true;
                        machine.rma_get(r, owner, 8 * g.degree(v).max(1));
                    }
                }
            }
        }
        machine.barrier();

        // Phase 2: conflict detection on border vertices (exact, local after
        // the exchange above). Higher id loses its color.
        let mut any_conflict = false;
        for r in 0..p {
            for v in part.range(r) {
                for &u in g.neighbors(v) {
                    machine.local_work(r, 1);
                    if part.owner(u) != r
                        && u < v
                        && colors[u as usize] == colors[v as usize]
                        && colors[v as usize] != u32::MAX
                    {
                        colors[v as usize] = u32::MAX;
                        any_conflict = true;
                        break;
                    }
                }
            }
        }
        machine.barrier();
        if !any_conflict {
            break;
        }
    }

    DmColoringReport {
        modeled_seconds: machine.elapsed_seconds(),
        stats: machine.total_stats(),
        colors,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    fn pr_reference(g: &CsrGraph, iters: usize, damping: f64) -> Vec<f64> {
        let n = g.num_vertices();
        let base = (1.0 - damping) / n as f64;
        let mut pr = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![base; n];
            for v in g.vertices() {
                let d = g.degree(v);
                if d > 0 {
                    let share = damping * pr[v as usize] / d as f64;
                    for &u in g.neighbors(v) {
                        next[u as usize] += share;
                    }
                }
            }
            pr = next;
        }
        pr
    }

    #[test]
    fn all_variants_compute_correct_pageranks() {
        let g = gen::rmat(7, 4, 3);
        let reference = pr_reference(&g, 8, 0.85);
        for variant in DmVariant::ALL {
            let r = dm_pagerank(&g, variant, 4, 8, 0.85, CostModel::xc40());
            let diff: f64 = r
                .ranks
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(diff < 1e-10, "{variant:?}: diff {diff}");
        }
    }

    #[test]
    fn all_variants_count_the_same_triangles() {
        let g = gen::complete(10);
        let expected = 10 * 9 * 8 / 6; // C(10,3)
        for variant in DmVariant::ALL {
            let r = dm_triangle_count(&g, variant, 4, CostModel::xc40());
            assert_eq!(r.triangles, expected as u64, "{variant:?}");
        }
    }

    #[test]
    fn pr_variant_ordering_matches_figure_3() {
        // §6.3.1: "MP consistently outperforms RMA; pushing is the slowest."
        let g = gen::rmat(8, 6, 5);
        let p = 16;
        let push = dm_pagerank(&g, DmVariant::PushRma, p, 2, 0.85, CostModel::xc40());
        let pull = dm_pagerank(&g, DmVariant::PullRma, p, 2, 0.85, CostModel::xc40());
        let mp = dm_pagerank(&g, DmVariant::MsgPassing, p, 2, 0.85, CostModel::xc40());
        assert!(mp.modeled_seconds < pull.modeled_seconds);
        assert!(pull.modeled_seconds < push.modeled_seconds);
    }

    #[test]
    fn tc_variant_ordering_matches_figure_3() {
        // §6.3.2: "RMA variants always outperform MP; pulling is always
        // faster than pushing." Needs a realistically triangle-sparse graph
        // (adjacency reads must dominate counter hits as in Table 1);
        // small-scale R-MAT is too clustered, Erdős–Rényi is right.
        let g = gen::erdos_renyi(1024, 4096, 9);
        let p = 16;
        let push = dm_triangle_count(&g, DmVariant::PushRma, p, CostModel::xc40());
        let pull = dm_triangle_count(&g, DmVariant::PullRma, p, CostModel::xc40());
        let mp = dm_triangle_count(&g, DmVariant::MsgPassing, p, CostModel::xc40());
        assert!(pull.modeled_seconds <= push.modeled_seconds);
        assert!(push.modeled_seconds < mp.modeled_seconds);
    }

    #[test]
    fn pr_strong_scaling_decreases_time() {
        let g = gen::rmat(12, 8, 7);
        let t4 = dm_pagerank(&g, DmVariant::MsgPassing, 4, 2, 0.85, CostModel::xc40());
        let t64 = dm_pagerank(&g, DmVariant::MsgPassing, 64, 2, 0.85, CostModel::xc40());
        assert!(
            t64.modeled_seconds < t4.modeled_seconds,
            "more ranks must be faster on a large enough graph"
        );
    }

    #[test]
    fn mp_pays_memory_rma_does_not() {
        // §6.3.1 memory consumption: MP needs send/receive buffers, RMA is
        // O(1) additional.
        let g = gen::rmat(7, 4, 1);
        let mp = dm_pagerank(&g, DmVariant::MsgPassing, 8, 1, 0.85, CostModel::xc40());
        let rma = dm_pagerank(&g, DmVariant::PullRma, 8, 1, 0.85, CostModel::xc40());
        assert!(mp.stats.peak_buffer_bytes > 0);
        assert_eq!(rma.stats.peak_buffer_bytes, 0);
    }

    #[test]
    fn pull_pr_issues_two_gets_per_remote_edge() {
        let g = gen::rmat(6, 4, 2);
        let p = 4;
        let r = dm_pagerank(&g, DmVariant::PullRma, p, 1, 0.85, CostModel::xc40());
        let part = pp_graph::BlockPartition::new(g.num_vertices(), p);
        let remote_arcs = part.cut_arcs(&g) as u64;
        assert_eq!(r.stats.remote_gets, 2 * remote_arcs);
    }

    #[test]
    fn single_rank_runs_without_communication() {
        let g = gen::rmat(6, 4, 8);
        for variant in DmVariant::ALL {
            let r = dm_pagerank(&g, variant, 1, 2, 0.85, CostModel::xc40());
            assert_eq!(r.stats.remote_gets, 0);
            assert_eq!(r.stats.remote_accumulates, 0);
            assert_eq!(r.stats.messages, 0);
        }
    }

    #[test]
    fn dm_bfs_levels_are_exact_for_all_variants() {
        let g = gen::rmat(8, 6, 4);
        let (expected, _, _) = pp_graph::stats::bfs_levels(&g, 0);
        for variant in DmBfsVariant::ALL {
            for p in [1usize, 4, 32] {
                let r = dm_bfs(&g, 0, variant, p, CostModel::xc40());
                assert_eq!(r.levels, expected, "{variant:?} P={p}");
            }
        }
    }

    /// The two-regime graph the switching test is driven from: a long path
    /// `0 — 1 — … — 99` (tiny frontiers, the push-friendly regime) feeding
    /// a 60-clique on `100..160` (one dense frontier, the pull-friendly
    /// regime). Fully deterministic — no RNG anywhere.
    fn path_into_clique() -> CsrGraph {
        let mut b = pp_graph::GraphBuilder::undirected(160);
        for i in 0..99u32 {
            b.add_edge(i, i + 1);
        }
        b.add_edge(99, 100);
        for u in 100..160u32 {
            for v in (u + 1)..160 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn dm_bfs_switching_follows_the_expected_round_trace() {
        // §7.2: traversals get their best performance from push–pull
        // switching. Previously this was asserted on an RNG graph, where
        // the margin was a seed lottery (1.03×–1.43× of the better pure
        // policy depending on the seed). The fixed two-regime graph makes
        // the round trace itself provable: frontier arc counts along the
        // path (≤ 60) stay below Beamer's m/α = 3740/15 threshold, so every
        // path round pushes; the clique frontier (59 vertices × 59 arcs)
        // exceeds it, so exactly the last round pulls.
        let g = path_into_clique();
        let p = 16;
        let sw = dm_bfs(
            &g,
            0,
            DmBfsVariant::Switching { alpha: 15 },
            p,
            CostModel::xc40(),
        );
        // Levels: path vertex i at level i, bridge vertex 100 at 100, the
        // rest of the clique at 101 — so 102 rounds consume frontiers
        // {0}, {1}, …, {100}, {clique}.
        let mut expected_levels: Vec<u32> = (0..=100).collect();
        expected_levels.extend(std::iter::repeat_n(101, 59));
        assert_eq!(sw.levels, expected_levels);
        let mut expected_trace = vec![false; 101];
        expected_trace.push(true);
        assert_eq!(sw.rounds, expected_trace, "push × 101, then one pull");
    }

    #[test]
    fn dm_bfs_switching_beats_both_pure_policies_on_the_fixed_trace() {
        // On the two-regime graph the comparison is deterministic, not a
        // seed lottery: pure pull rescans every unvisited vertex for each
        // of the ~100 tiny path rounds; pure push sprays the dense clique
        // round as thousands of point-to-point puts. Switching shares the
        // push prefix and replaces only the dense round, so it must win
        // outright against both.
        let g = path_into_clique();
        let p = 16;
        let push = dm_bfs(&g, 0, DmBfsVariant::Push, p, CostModel::xc40());
        let pull = dm_bfs(&g, 0, DmBfsVariant::Pull, p, CostModel::xc40());
        let sw = dm_bfs(
            &g,
            0,
            DmBfsVariant::Switching { alpha: 15 },
            p,
            CostModel::xc40(),
        );
        assert_eq!(sw.levels, push.levels);
        assert_eq!(sw.levels, pull.levels);
        assert!(
            sw.modeled_seconds < push.modeled_seconds,
            "switch {} !< push {}",
            sw.modeled_seconds,
            push.modeled_seconds
        );
        assert!(
            sw.modeled_seconds < pull.modeled_seconds,
            "switch {} !< pull {}",
            sw.modeled_seconds,
            pull.modeled_seconds
        );
        // And it must actually use both directions.
        assert!(sw.rounds.iter().any(|&pull| pull));
        assert!(sw.rounds.iter().any(|&pull| !pull));
    }

    #[test]
    fn dm_sssp_is_exact_for_both_directions() {
        let g = gen::with_random_weights(&gen::rmat(7, 4, 3), 1, 50, 3);
        // Sequential Dijkstra reference.
        let expected = {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let n = g.num_vertices();
            let mut dist = vec![u64::MAX; n];
            dist[0] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0u64, 0u32)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                for (w, wt) in g.weighted_neighbors(v) {
                    let nd = d + wt as u64;
                    if nd < dist[w as usize] {
                        dist[w as usize] = nd;
                        heap.push(Reverse((nd, w)));
                    }
                }
            }
            dist
        };
        for push in [true, false] {
            for p in [1usize, 4, 16] {
                let r = dm_sssp(&g, 0, 32, push, p, CostModel::xc40());
                assert_eq!(r.dist, expected, "push={push} P={p}");
            }
        }
    }

    #[test]
    fn dm_sssp_pull_beats_push_across_the_network() {
        // §6.5: "SSSP-Δ on SM systems is surprisingly different from the
        // variant for DM machines presented in the literature, where pulling
        // is faster. This is because intra-node atomics are less costly
        // than messages." The shared-memory suite asserts push wins there;
        // here the inversion must hold.
        let g = gen::with_random_weights(&gen::rmat(8, 6, 9), 1, 100, 9);
        let p = 16;
        let push = dm_sssp(&g, 0, 64, true, p, CostModel::xc40());
        let pull = dm_sssp(&g, 0, 64, false, p, CostModel::xc40());
        assert!(
            pull.modeled_seconds < push.modeled_seconds,
            "pull {} !< push {}",
            pull.modeled_seconds,
            push.modeled_seconds
        );
    }

    #[test]
    fn dm_bfs_push_communication_tracks_cut_frontier_arcs() {
        let g = gen::rmat(7, 4, 2);
        let p = 8;
        let r = dm_bfs(&g, 0, DmBfsVariant::Push, p, CostModel::xc40());
        // Every remote put is an 8-byte visit request for a cut arc out of
        // some round's frontier; the total is bounded by all cut arcs.
        let part = pp_graph::BlockPartition::new(g.num_vertices(), p);
        assert!(r.stats.remote_puts <= part.cut_arcs(&g) as u64);
        assert!(r.stats.remote_puts > 0);
    }

    fn is_proper(g: &CsrGraph, colors: &[u32]) -> bool {
        colors.iter().all(|&c| c != u32::MAX)
            && g.edges()
                .all(|(u, v, _)| u == v || colors[u as usize] != colors[v as usize])
    }

    #[test]
    fn dm_coloring_is_proper_for_all_variants() {
        for seed in 0..3 {
            let g = gen::rmat(8, 5, seed);
            for push in [true, false] {
                for p in [1usize, 4, 16] {
                    let r = dm_coloring(&g, push, p, CostModel::xc40());
                    assert!(is_proper(&g, &r.colors), "push={push} P={p} seed={seed}");
                    assert!(r.iterations >= 1);
                }
            }
        }
    }

    #[test]
    fn dm_coloring_single_rank_needs_one_iteration() {
        // With P = 1 there are no borders, so greedy finishes in one pass.
        let g = gen::rmat(7, 4, 4);
        let r = dm_coloring(&g, true, 1, CostModel::xc40());
        assert_eq!(r.iterations, 1);
        assert_eq!(r.stats.remote_puts + r.stats.remote_gets, 0);
    }

    #[test]
    fn dm_coloring_multi_rank_generates_conflict_rounds() {
        // A dense community graph with many cut edges must conflict at
        // least once when ranks color concurrently against stale views.
        let g = gen::community(4, 64, 600, 300, 1);
        let r = dm_coloring(&g, true, 8, CostModel::xc40());
        assert!(r.iterations > 1, "expected stale-view conflicts");
    }

    #[test]
    fn dm_coloring_push_writes_pull_reads() {
        let g = gen::rmat(7, 4, 6);
        let push = dm_coloring(&g, true, 8, CostModel::xc40());
        let pull = dm_coloring(&g, false, 8, CostModel::xc40());
        assert!(push.stats.remote_puts > 0);
        assert_eq!(push.stats.remote_gets, 0);
        assert!(pull.stats.remote_gets > 0);
        assert_eq!(pull.stats.remote_puts, 0);
        // Pull's bulk gets are fewer ops than push's per-arc puts.
        assert!(pull.stats.remote_gets < push.stats.remote_puts);
    }
}
