//! The BSP rank machine: clocks, statistics, and communication accounting.
//!
//! Algorithms manipulate real Rust arrays for correctness and call the
//! machine's accounting hooks for every modeled communication event. Ranks
//! within a superstep are executed sequentially (the state updates commute —
//! the same property that makes them safe under real RMA), and a barrier
//! advances every clock to the straggler's time, which is exactly the BSP
//! semantics of the paper's `MPI_Win_flush_all`/`MPI_Barrier` epochs.

use pp_graph::BlockPartition;

use crate::cost::{CostModel, NetStats};

/// A simulated `P`-rank distributed machine.
#[derive(Clone, Debug)]
pub struct Machine {
    cost: CostModel,
    clocks: Vec<f64>,
    stats: Vec<NetStats>,
}

impl Machine {
    /// A machine with `p ≥ 1` ranks.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p >= 1);
        Self {
            cost,
            clocks: vec![0.0; p],
            stats: vec![NetStats::default(); p],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.clocks.len()
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The 1D block partition of `n` items over the ranks (§2.2).
    pub fn partition(&self, n: usize) -> BlockPartition {
        BlockPartition::new(n, self.num_ranks())
    }

    /// Charges `ops` local operations to rank `r`.
    #[inline]
    pub fn local_work(&mut self, r: usize, ops: u64) {
        self.clocks[r] += self.cost.local_op * ops as f64;
    }

    /// Rank `r` reads `bytes` from `owner`'s window. One-sided ops are
    /// serviced by the NIC (the foMPI premise): the issuing rank pays the
    /// op cost plus bandwidth, the owner's CPU pays nothing.
    pub fn rma_get(&mut self, r: usize, owner: usize, bytes: usize) {
        if r == owner {
            self.local_work(r, 1);
        } else {
            self.clocks[r] += self.cost.rma_get + self.cost.beta * bytes as f64;
            self.stats[r].remote_gets += 1;
            self.stats[r].bytes_sent += 8; // the request descriptor
        }
    }

    /// Rank `r` writes `bytes` into `owner`'s window (one-sided).
    pub fn rma_put(&mut self, r: usize, owner: usize, bytes: usize) {
        if r == owner {
            self.local_work(r, 1);
        } else {
            self.clocks[r] += self.cost.rma_put + self.cost.beta * bytes as f64;
            self.stats[r].remote_puts += 1;
            self.stats[r].bytes_sent += bytes as u64;
        }
    }

    /// Rank `r` issues an integer FAA on `owner`'s window (hardware fast
    /// path, §6.5).
    pub fn rma_faa_int(&mut self, r: usize, owner: usize) {
        if r == owner {
            self.local_work(r, 1);
        } else {
            self.clocks[r] += self.cost.rma_faa_int + self.cost.beta * 8.0;
            self.stats[r].remote_faas += 1;
            self.stats[r].bytes_sent += 8;
        }
    }

    /// Rank `r` issues a float accumulate on `owner`'s window (slow locking
    /// protocol, §6.3.1).
    pub fn rma_accumulate_float(&mut self, r: usize, owner: usize) {
        if r == owner {
            self.local_work(r, 1);
        } else {
            self.clocks[r] += self.cost.rma_accumulate_float + self.cost.beta * 8.0;
            self.stats[r].remote_accumulates += 1;
            self.stats[r].bytes_sent += 8;
        }
    }

    /// Rank `r` fetches `bytes` from `owner` through a two-sided
    /// request/response message pair — how a pure Message-Passing variant
    /// reads remote data (§6.3.2's MP triangle count). The requester pays
    /// two message startups; crucially the *owner's CPU* must service the
    /// request too, so owners of high-degree hubs become stragglers. This
    /// two-sided service cost is what makes MP lose to one-sided RMA on
    /// read-heavy algorithms.
    pub fn msg_fetch(&mut self, r: usize, owner: usize, bytes: usize) {
        if r == owner {
            self.local_work(r, 1);
        } else {
            self.clocks[r] +=
                2.0 * (self.cost.alpha + self.cost.msg_overhead) + self.cost.beta * bytes as f64;
            self.clocks[owner] += self.cost.alpha + self.cost.msg_overhead;
            self.stats[r].messages += 2;
            self.stats[r].bytes_sent += 8 + bytes as u64;
        }
    }

    /// Charges an `MPI_Alltoallv`-style exchange: `send_bytes[r][d]` is what
    /// rank `r` sends to rank `d`. Buffer preparation charges the per-
    /// message software overhead the paper attributes to MP (§6.3.1), and
    /// peak buffer sizes are recorded (MP's memory price).
    pub fn alltoallv(&mut self, send_bytes: &[Vec<usize>]) {
        let p = self.num_ranks();
        assert_eq!(send_bytes.len(), p);
        for r in 0..p {
            assert_eq!(send_bytes[r].len(), p);
            let total: usize = send_bytes[r].iter().sum();
            let nonzero = send_bytes[r].iter().filter(|&&b| b > 0).count();
            self.clocks[r] += self.cost.transfer(total)
                + nonzero as f64 * self.cost.msg_overhead
                + (p as f64).log2().max(1.0) * self.cost.alpha;
            self.stats[r].messages += nonzero as u64;
            self.stats[r].bytes_sent += total as u64;
            self.stats[r].collectives += 1;
            let recv: usize = (0..p).map(|s| send_bytes[s][r]).sum();
            self.stats[r].peak_buffer_bytes =
                self.stats[r].peak_buffer_bytes.max((total + recv) as u64);
        }
        self.barrier();
    }

    /// Synchronizes all clocks to the slowest rank plus the barrier cost.
    pub fn barrier(&mut self) {
        let p = self.num_ranks() as f64;
        let max = self.clocks.iter().cloned().fold(0.0f64, f64::max);
        let t = max + self.cost.barrier * p.log2().max(1.0);
        for c in &mut self.clocks {
            *c = t;
        }
    }

    /// Modeled elapsed seconds: the slowest rank's clock.
    pub fn elapsed_seconds(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0f64, f64::max) / 1e6
    }

    /// Per-rank statistics.
    pub fn stats(&self) -> &[NetStats] {
        &self.stats
    }

    /// Aggregated statistics over all ranks.
    pub fn total_stats(&self) -> NetStats {
        self.stats
            .iter()
            .fold(NetStats::default(), |acc, s| acc.merge(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_accesses_cost_less_than_remote() {
        let mut m = Machine::new(2, CostModel::xc40());
        m.rma_get(0, 0, 8);
        let local = m.elapsed_seconds();
        let mut m2 = Machine::new(2, CostModel::xc40());
        m2.rma_get(0, 1, 8);
        assert!(m2.elapsed_seconds() > 100.0 * local);
        assert_eq!(m2.stats()[0].remote_gets, 1);
        assert_eq!(m.stats()[0].remote_gets, 0);
    }

    #[test]
    fn barrier_synchronizes_to_straggler() {
        let mut m = Machine::new(4, CostModel::xc40());
        m.local_work(2, 1_000_000);
        let straggler = m.elapsed_seconds();
        m.barrier();
        // All ranks now share the straggler's time (plus barrier cost):
        // further work on rank 0 starts from there.
        m.local_work(0, 1);
        assert!(m.elapsed_seconds() >= straggler);
        let mut m2 = Machine::new(4, CostModel::xc40());
        m2.local_work(0, 1);
        assert!(m.elapsed_seconds() > 1000.0 * m2.elapsed_seconds());
    }

    #[test]
    fn alltoallv_records_buffers_and_messages() {
        let mut m = Machine::new(2, CostModel::xc40());
        m.alltoallv(&[vec![0, 1000], vec![500, 0]]);
        let s = m.total_stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes_sent, 1500);
        assert_eq!(s.collectives, 2);
        assert!(s.peak_buffer_bytes >= 1500);
    }

    #[test]
    fn accumulate_float_slower_than_faa() {
        let mut acc = Machine::new(2, CostModel::xc40());
        let mut faa = Machine::new(2, CostModel::xc40());
        for _ in 0..100 {
            acc.rma_accumulate_float(0, 1);
            faa.rma_faa_int(0, 1);
        }
        assert!(acc.elapsed_seconds() > 2.0 * faa.elapsed_seconds());
    }

    #[test]
    fn partition_matches_rank_count() {
        let m = Machine::new(8, CostModel::xc40());
        assert_eq!(m.partition(100).num_parts(), 8);
    }
}
