//! The linear-algebraic formulation of §7.1.
//!
//! Graph algorithms as `y = A ⊗ x` over a semiring. The storage dichotomy
//! mirrors push/pull exactly:
//!
//! * **CSR SpMV** — iterate rows, gather row entries against `x`, each
//!   output cell written by one task: *pulling*.
//! * **CSC SpMV** — iterate columns, scatter `x[j]` into the output through
//!   the column's entries: *pushing*, with synchronization on `y`.
//! * **SpMSpV** — with a sparse `x`, CSC simply skips columns matching zero
//!   entries (push exploits frontier sparsity); CSR has no comparable
//!   shortcut and scans every row (the §7.1 observation).
//!
//! Conventions: a `CsrGraph` plus a value array `vals` (parallel to its
//! target array) encodes a matrix. Read as CSR, entry `(i, targets[k])` of
//! row `i` has value `vals[k]`; the same storage read as CSC encodes the
//! *transpose* (each "row" becomes a column). [`spmv_csc`] therefore
//! computes `Aᵀ⊗x` of the matrix [`spmv_csr`] would compute — callers pass
//! transposed values to multiply by the same matrix both ways (see
//! [`pagerank_values_csr`]/[`pagerank_values_csc`]).

use pp_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

use crate::sync::{ShardedLocks, SyncSlice};
use crate::Direction;

/// A semiring `(⊕, ⊗, 0)`; `⊕` must be commutative and associative (the
/// same requirement Algorithm 3 places on its accumulation operator).
pub trait Semiring: Send + Sync {
    /// Element type.
    type Elem: Copy + Send + Sync + PartialEq + std::fmt::Debug;
    /// The additive identity (annihilator of `⊕`).
    fn zero() -> Self::Elem;
    /// The addition `⊕`.
    fn plus(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// The multiplication `⊗`.
    fn times(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// The arithmetic semiring `(+, ×, 0)` over `f64` — PageRank's home.
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type Elem = f64;
    fn zero() -> f64 {
        0.0
    }
    fn plus(a: f64, b: f64) -> f64 {
        a + b
    }
    fn times(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The tropical semiring `(min, +, ∞)` over `u64` — shortest paths.
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = u64;
    fn zero() -> u64 {
        u64::MAX
    }
    fn plus(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn times(a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
}

/// The boolean semiring `(∨, ∧, false)` — reachability / BFS.
pub struct BoolOr;

impl Semiring for BoolOr {
    type Elem = bool;
    fn zero() -> bool {
        false
    }
    fn plus(a: bool, b: bool) -> bool {
        a || b
    }
    fn times(a: bool, b: bool) -> bool {
        a && b
    }
}

/// CSR SpMV (*pulling*): `y[i] = ⊕_k vals[k] ⊗ x[targets[k]]` over row `i`.
/// Each output cell is computed by exactly one task — no synchronization.
pub fn spmv_csr<S: Semiring>(g: &CsrGraph, vals: &[S::Elem], x: &[S::Elem]) -> Vec<S::Elem> {
    assert_eq!(vals.len(), g.num_arcs());
    assert_eq!(x.len(), g.num_vertices());
    let offsets = g.offsets();
    (0..g.num_vertices())
        .into_par_iter()
        .map(|i| {
            let lo = offsets[i] as usize;
            let mut acc = S::zero();
            for (k, &j) in g.neighbors(i as VertexId).iter().enumerate() {
                acc = S::plus(acc, S::times(vals[lo + k], x[j as usize]));
            }
            acc
        })
        .collect()
}

/// CSC SpMV (*pushing*): iterating the storage as columns, scatter
/// `vals[k] ⊗ x[j]` into `y[targets[k]]`. Concurrent column tasks write the
/// same output cells, so each scatter takes a sharded lock (§7.1: "atomics
/// or a reduction tree are necessary").
pub fn spmv_csc<S: Semiring>(g: &CsrGraph, vals: &[S::Elem], x: &[S::Elem]) -> Vec<S::Elem> {
    assert_eq!(vals.len(), g.num_arcs());
    assert_eq!(x.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut y = vec![S::zero(); n];
    let locks = ShardedLocks::new(1024);
    {
        let ys = SyncSlice::new(&mut y);
        let offsets = g.offsets();
        (0..n).into_par_iter().for_each(|j| {
            let xj = x[j];
            if xj == S::zero() {
                // ⊗ by zero annihilates; skipping is what makes SpMSpV
                // cheap in CSC.
                return;
            }
            let lo = offsets[j] as usize;
            for (k, &i) in g.neighbors(j as VertexId).iter().enumerate() {
                let contrib = S::times(vals[lo + k], xj);
                locks.with(i as usize, || {
                    // SAFETY: the shard lock serializes writers of y[i].
                    unsafe { ys.write(i as usize, S::plus(ys.read(i as usize), contrib)) };
                });
            }
        });
    }
    y
}

/// Sparse-vector SpMSpV in CSC form (*pushing*): only the columns matching
/// nonzeros of `x` are touched — work proportional to the frontier's edges.
pub fn spmspv_csc<S: Semiring>(
    g: &CsrGraph,
    vals: &[S::Elem],
    x: &[(VertexId, S::Elem)],
) -> Vec<(VertexId, S::Elem)> {
    assert_eq!(vals.len(), g.num_arcs());
    let n = g.num_vertices();
    let mut y = vec![S::zero(); n];
    let offsets = g.offsets();
    // Sequentially scatter per nonzero column: the sparse frontier is small
    // by assumption; parallelism across columns would need the same locks
    // as spmv_csc.
    for &(j, xj) in x {
        let lo = offsets[j as usize] as usize;
        for (k, &i) in g.neighbors(j).iter().enumerate() {
            y[i as usize] = S::plus(y[i as usize], S::times(vals[lo + k], xj));
        }
    }
    y.into_iter()
        .enumerate()
        .filter(|&(_, v)| v != S::zero())
        .map(|(i, v)| (i as VertexId, v))
        .collect()
}

/// All-ones value array (the adjacency pattern itself).
pub fn pattern_values<S: Semiring>(g: &CsrGraph, one: S::Elem) -> Vec<S::Elem> {
    vec![one; g.num_arcs()]
}

/// Values for the PageRank matrix `A[i][j] = 1/d(j)` in CSR storage:
/// slot `k` of row `i` holds `1/d(targets[k])`.
pub fn pagerank_values_csr(g: &CsrGraph) -> Vec<f64> {
    let mut vals = Vec::with_capacity(g.num_arcs());
    for i in g.vertices() {
        for &j in g.neighbors(i) {
            vals.push(1.0 / g.degree(j) as f64);
        }
    }
    vals
}

/// Values for the same PageRank matrix in CSC storage (so that
/// `spmv_csc` computes `A⊗x`, not `Aᵀ⊗x`): column `j`'s slots all hold
/// `1/d(j)`.
pub fn pagerank_values_csc(g: &CsrGraph) -> Vec<f64> {
    let mut vals = Vec::with_capacity(g.num_arcs());
    for j in g.vertices() {
        let v = 1.0 / g.degree(j).max(1) as f64;
        vals.extend(std::iter::repeat_n(v, g.degree(j)));
    }
    vals
}

/// Algebraic PageRank: `x ← f·(A⊗x) + (1-f)/n` per iteration, with the
/// SpMV direction chosen by `dir` (CSR = pull, CSC = push).
pub fn pagerank_algebraic(g: &CsrGraph, dir: Direction, iters: usize, damping: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let vals = match dir {
        Direction::Pull => pagerank_values_csr(g),
        Direction::Push => pagerank_values_csc(g),
    };
    let base = (1.0 - damping) / n as f64;
    let mut x = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let ax = match dir {
            Direction::Pull => spmv_csr::<PlusTimes>(g, &vals, &x),
            Direction::Push => spmv_csc::<PlusTimes>(g, &vals, &x),
        };
        for (xi, axi) in x.iter_mut().zip(ax) {
            *xi = base + damping * axi;
        }
    }
    x
}

/// Algebraic BFS over the boolean semiring: levels by repeated
/// `frontier' = (A ⊗ frontier) ∧ ¬visited`. Pull does dense SpMV every
/// round; push does SpMSpV over the sparse frontier (§7.1).
pub fn bfs_algebraic(g: &CsrGraph, root: VertexId, dir: Direction) -> Vec<u32> {
    let n = g.num_vertices();
    let vals = pattern_values::<BoolOr>(g, true);
    let mut level = vec![u32::MAX; n];
    level[root as usize] = 0;
    let mut frontier: Vec<VertexId> = vec![root];
    let mut cur = 0u32;
    while !frontier.is_empty() {
        let next: Vec<VertexId> = match dir {
            Direction::Push => {
                let x: Vec<(VertexId, bool)> = frontier.iter().map(|&v| (v, true)).collect();
                spmspv_csc::<BoolOr>(g, &vals, &x)
                    .into_iter()
                    .map(|(v, _)| v)
                    .filter(|&v| level[v as usize] == u32::MAX)
                    .collect()
            }
            Direction::Pull => {
                let mut x = vec![false; n];
                for &v in &frontier {
                    x[v as usize] = true;
                }
                let y = spmv_csr::<BoolOr>(g, &vals, &x);
                (0..n as VertexId)
                    .filter(|&v| y[v as usize] && level[v as usize] == u32::MAX)
                    .collect()
            }
        };
        cur += 1;
        for &v in &next {
            level[v as usize] = cur;
        }
        frontier = next;
    }
    level
}

/// Arc weights as tropical-semiring values: slot `k` holds the weight of
/// arc `k` as a `u64` (the `A[i][j] = w(i,j)` matrix of min-plus shortest
/// paths).
pub fn weight_values(g: &CsrGraph) -> Vec<u64> {
    let mut vals = Vec::with_capacity(g.num_arcs());
    for i in g.vertices() {
        vals.extend(g.neighbor_weights(i).iter().map(|&w| w as u64));
    }
    vals
}

/// Algebraic SSSP over the tropical semiring: Bellman–Ford as the fixpoint
/// of `x ← x ⊕ (A ⊗ x)` with `⊕ = min`, `⊗ = +` (§7.1 applied to §3.4's
/// baseline). Pull runs CSR SpMV (dense rescans, no synchronization); push
/// runs SpMSpV over the improved frontier (sparse scatters). Converges to
/// the Dijkstra metric in at most `n - 1` products.
pub fn sssp_algebraic(g: &CsrGraph, root: VertexId, dir: Direction) -> Vec<u64> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    assert!(g.is_weighted(), "algebraic SSSP requires weights");
    let vals = weight_values(g);
    let mut x = vec![MinPlus::zero(); n];
    x[root as usize] = 0;
    match dir {
        Direction::Pull => loop {
            let ax = spmv_csr::<MinPlus>(g, &vals, &x);
            let mut changed = false;
            for (xi, axi) in x.iter_mut().zip(ax) {
                if axi < *xi {
                    *xi = axi;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        },
        Direction::Push => {
            // The sparse frontier: entries of x that improved last round.
            let mut frontier: Vec<(VertexId, u64)> = vec![(root, 0)];
            while !frontier.is_empty() {
                let products = spmspv_csc::<MinPlus>(g, &vals, &frontier);
                frontier = products
                    .into_iter()
                    .filter(|&(v, d)| d < x[v as usize])
                    .collect();
                for &(v, d) in &frontier {
                    x[v as usize] = d;
                }
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, stats};

    #[test]
    fn csr_and_csc_agree_on_symmetric_values() {
        // With symmetric values (pattern matrix), A = Aᵀ and both layouts
        // compute the same product.
        let g = gen::rmat(7, 4, 2);
        let vals = pattern_values::<PlusTimes>(&g, 1.0);
        let x: Vec<f64> = (0..g.num_vertices()).map(|i| (i % 7) as f64).collect();
        let a = spmv_csr::<PlusTimes>(&g, &vals, &x);
        let b = spmv_csc::<PlusTimes>(&g, &vals, &x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn csc_with_transposed_values_matches_csr() {
        let g = gen::rmat(6, 4, 5);
        let x: Vec<f64> = (0..g.num_vertices())
            .map(|i| 1.0 + (i % 3) as f64)
            .collect();
        let a = spmv_csr::<PlusTimes>(&g, &pagerank_values_csr(&g), &x);
        let b = spmv_csc::<PlusTimes>(&g, &pagerank_values_csc(&g), &x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn algebraic_pagerank_matches_direct_implementation() {
        let g = gen::rmat(6, 5, 8);
        let opts = crate::pagerank::PrOptions {
            iters: 10,
            damping: 0.85,
        };
        let direct = crate::pagerank::pagerank(&g, Direction::Pull, &opts);
        for dir in Direction::BOTH {
            let algebraic = pagerank_algebraic(&g, dir, 10, 0.85);
            let diff = crate::pagerank::l1_distance(&direct, &algebraic);
            assert!(diff < 1e-9, "{dir:?}: L1 diff {diff}");
        }
    }

    #[test]
    fn algebraic_bfs_matches_traversal() {
        for g in [gen::path(30), gen::rmat(6, 4, 3), gen::star(20)] {
            let (expected, _, _) = stats::bfs_levels(&g, 0);
            for dir in Direction::BOTH {
                assert_eq!(bfs_algebraic(&g, 0, dir), expected, "{dir:?}");
            }
        }
    }

    #[test]
    fn spmspv_only_visits_frontier_columns() {
        let g = gen::star(10);
        let vals = pattern_values::<BoolOr>(&g, true);
        // Frontier = {3}: the only reachable output is the hub 0.
        let y = spmspv_csc::<BoolOr>(&g, &vals, &[(3, true)]);
        assert_eq!(y, vec![(0, true)]);
    }

    #[test]
    fn min_plus_relaxation_converges_to_shortest_paths() {
        // Iterating x ← min(x, A ⊗ x) over MinPlus is Bellman-Ford.
        let g = gen::with_random_weights(&gen::cycle(12), 1, 9, 4);
        let mut vals = Vec::with_capacity(g.num_arcs());
        for v in g.vertices() {
            for w in g.neighbor_weights(v) {
                vals.push(*w as u64);
            }
        }
        let mut x = vec![u64::MAX; 12];
        x[0] = 0;
        for _ in 0..12 {
            let ax = spmv_csr::<MinPlus>(&g, &vals, &x);
            for (xi, a) in x.iter_mut().zip(ax) {
                *xi = (*xi).min(a);
            }
        }
        let expected = crate::sssp::dijkstra(&g, 0);
        assert_eq!(x, expected);
    }

    #[test]
    fn algebraic_sssp_matches_dijkstra_both_directions() {
        for seed in 0..4 {
            let g = gen::with_random_weights(&gen::erdos_renyi(120, 360, seed), 1, 20, seed);
            let expected = crate::sssp::dijkstra(&g, 0);
            for dir in Direction::BOTH {
                assert_eq!(sssp_algebraic(&g, 0, dir), expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn algebraic_sssp_on_disconnected_graph() {
        let g = gen::with_random_weights(
            &pp_graph::GraphBuilder::undirected(5)
                .edge(0, 1)
                .edge(2, 3)
                .build(),
            2,
            2,
            0,
        );
        for dir in Direction::BOTH {
            let d = sssp_algebraic(&g, 0, dir);
            assert_eq!(d, vec![0, 2, u64::MAX, u64::MAX, u64::MAX], "{dir:?}");
        }
    }

    #[test]
    fn weight_values_align_with_arcs() {
        let g = gen::with_random_weights(&gen::cycle(6), 1, 9, 3);
        let vals = weight_values(&g);
        assert_eq!(vals.len(), g.num_arcs());
        let mut k = 0;
        for i in g.vertices() {
            for (j, w) in g.weighted_neighbors(i) {
                assert_eq!(vals[k], w as u64, "arc ({i},{j})");
                k += 1;
            }
        }
    }

    #[test]
    fn semiring_laws_hold_for_samples() {
        // ⊕ commutative/associative, 0 annihilates ⊗ — spot checks.
        assert_eq!(PlusTimes::plus(2.0, 3.0), PlusTimes::plus(3.0, 2.0));
        assert_eq!(MinPlus::plus(5, 9), 5);
        assert_eq!(MinPlus::times(MinPlus::zero(), 3), u64::MAX, "∞ + w = ∞");
        assert!(!BoolOr::times(BoolOr::zero(), true));
    }
}
