//! Breadth-first search: top-down (push), bottom-up (pull), the
//! direction-optimizing switch, and the *generalized* BFS of Algorithm 3
//! with ready counters and a user accumulation operator (the engine behind
//! betweenness centrality, §4.5).

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::{ShardedLocks, SyncSlice};
use crate::Direction;

/// Marker for an unvisited vertex in `parent`.
pub const NO_PARENT: VertexId = VertexId::MAX;
/// Marker for an unvisited vertex in `level`.
pub const UNVISITED: u32 = u32::MAX;

/// How a BFS chooses its direction each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsMode {
    /// Top-down every round (the paper's pushing).
    Push,
    /// Bottom-up every round (the paper's pulling).
    Pull,
    /// Beamer-style direction optimization \[4\]: go bottom-up when the
    /// frontier's out-edges exceed `m/alpha`, return top-down when the
    /// frontier shrinks below `n/beta`. An instance of Generic-Switch (§5).
    DirectionOptimizing {
        /// Push→pull threshold divisor (Beamer's α, typically 15).
        alpha: usize,
        /// Pull→push threshold divisor (Beamer's β, typically 18).
        beta: usize,
    },
}

impl BfsMode {
    /// The standard direction-optimizing parameters.
    pub fn direction_optimizing() -> Self {
        BfsMode::DirectionOptimizing {
            alpha: 15,
            beta: 18,
        }
    }
}

/// Statistics for one BFS round.
#[derive(Clone, Copy, Debug)]
pub struct RoundInfo {
    /// Round index (distance of the vertices discovered in it).
    pub round: u32,
    /// Size of the input frontier.
    pub frontier: usize,
    /// Direction executed.
    pub dir: Direction,
    /// Wall-clock time of the round.
    pub time: Duration,
}

/// Result of a BFS traversal.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Parent of each vertex in the BFS tree ([`NO_PARENT`] if unreached;
    /// the root is its own parent).
    pub parent: Vec<VertexId>,
    /// Distance from the root ([`UNVISITED`] if unreached).
    pub level: Vec<u32>,
    /// Per-round statistics.
    pub rounds: Vec<RoundInfo>,
}

impl BfsResult {
    /// Number of vertices reached (including the root).
    pub fn reached(&self) -> usize {
        self.level.iter().filter(|&&l| l != UNVISITED).count()
    }
}

/// BFS from `root` with the default probe.
pub fn bfs(g: &CsrGraph, root: VertexId, mode: BfsMode) -> BfsResult {
    bfs_probed(g, root, mode, &NullProbe)
}

/// Instrumented BFS from `root`.
pub fn bfs_probed<P: Probe>(g: &CsrGraph, root: VertexId, mode: BfsMode, probe: &P) -> BfsResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    // Levels are atomics because pulling reads arbitrary vertices' levels
    // while their owners write them (a benign same-round race the PRAM
    // model calls a read conflict; Rust still demands atomic access).
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    level[root as usize].store(0, Ordering::Relaxed);

    let mut frontier = vec![root];
    let mut rounds = Vec::new();
    let mut cur = 0u32;
    let m = g.num_arcs().max(1);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    while !frontier.is_empty() {
        let dir = match mode {
            BfsMode::Push => Direction::Push,
            BfsMode::Pull => Direction::Pull,
            BfsMode::DirectionOptimizing { alpha, beta } => {
                let frontier_arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
                if frontier_arcs > m / alpha && frontier.len() > n / beta {
                    Direction::Pull
                } else {
                    Direction::Push
                }
            }
        };
        let started = Instant::now();
        let next = match dir {
            Direction::Push => push_round(g, &frontier, &parent, &level, cur, probe),
            Direction::Pull => pull_round(g, &part, &parent, &level, cur, probe),
        };
        rounds.push(RoundInfo {
            round: cur,
            frontier: frontier.len(),
            dir,
            time: started.elapsed(),
        });
        frontier = next;
        cur += 1;
    }

    BfsResult {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

/// Top-down round (Algorithm 3, pushing): frontier vertices claim their
/// unvisited neighbors with a CAS each; per-thread `my_F` buffers merge into
/// the next frontier (line 8).
fn push_round<P: Probe>(
    g: &CsrGraph,
    frontier: &[VertexId],
    parent: &[AtomicU32],
    level: &[AtomicU32],
    cur: u32,
    probe: &P,
) -> Vec<VertexId> {
    frontier
        .par_iter()
        .fold(Vec::new, |mut my_f, &v| {
            for &w in g.neighbors(v) {
                probe.branch_cond();
                probe.read(addr_of_index(parent, w as usize), 4);
                if parent[w as usize].load(Ordering::Relaxed) == NO_PARENT {
                    // W: write conflict — many frontier vertices may race on
                    // w; one CAS decides (§4.3: O(m) CAS atomics).
                    probe.atomic_rmw(addr_of_index(parent, w as usize), 4);
                    if parent[w as usize]
                        .compare_exchange(NO_PARENT, v, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        probe.write(addr_of_index(level, w as usize), 4);
                        level[w as usize].store(cur + 1, Ordering::Relaxed);
                        my_f.push(w);
                    }
                }
            }
            my_f
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Bottom-up round (Algorithm 3, pulling): every unvisited vertex scans its
/// neighbors for a parent in the frontier. Writes touch only the scanned
/// vertex's own cells — no synchronization (§4.3), at the cost of reading
/// up to all `m` edges per round.
fn pull_round<P: Probe>(
    g: &CsrGraph,
    part: &BlockPartition,
    parent: &[AtomicU32],
    level: &[AtomicU32],
    cur: u32,
    probe: &P,
) -> Vec<VertexId> {
    // Dense frontier membership: `level[u] == cur`.
    (0..part.num_parts())
        .into_par_iter()
        .fold(Vec::new, |mut my_f, t| {
            for v in part.range(t) {
                probe.branch_cond();
                if level[v as usize].load(Ordering::Relaxed) != UNVISITED {
                    continue;
                }
                for &u in g.neighbors(v) {
                    // R: read conflict — many pullers may read level[u]
                    // concurrently (§4.3: O(Dm) read conflicts). A vertex
                    // discovered *this* round reads as cur+1, never cur, so
                    // the frontier test is stable under the race.
                    probe.read(addr_of_index(level, u as usize), 4);
                    probe.branch_cond();
                    if level[u as usize].load(Ordering::Relaxed) == cur {
                        parent[v as usize].store(u, Ordering::Relaxed);
                        probe.write(addr_of_index(level, v as usize), 4);
                        level[v as usize].store(cur + 1, Ordering::Relaxed);
                        my_f.push(v);
                        break;
                    }
                }
            }
            my_f
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

// ---------------------------------------------------------------------------
// Generalized BFS (Algorithm 3 in full).
// ---------------------------------------------------------------------------

/// Result of a [`generalized_bfs`] run.
#[derive(Clone, Debug)]
pub struct GenBfsResult<T> {
    /// Final per-vertex values (`R` in Algorithm 3).
    pub values: Vec<T>,
    /// The frontier of every round, in discovery order.
    pub frontiers: Vec<Vec<VertexId>>,
}

/// The generalized BFS of Algorithm 3: vertices carry `ready` counters and
/// enter the frontier once the counter reaches zero; an accumulation
/// operator `⇐` (commutative and associative, §4.3) folds predecessor
/// values into each vertex.
///
/// * `out_g` supplies the edges a pushing frontier vertex follows;
/// * `in_g` supplies the edges a pulling vertex scans (pass the same graph
///   for undirected traversals, the transpose for directed ones);
/// * `ready`: vertices with `ready[v] == 0` form the initial frontier.
///
/// Each round has the two PRAM sub-steps of Algorithm 3: all accumulations
/// (guarded by `ready > 0` at round start), then all counter decrements. In
/// push mode accumulation into a shared cell is a write conflict resolved
/// with a lock (the operator may be floating-point, §4.5); in pull mode each
/// vertex folds into its own cell with no synchronization.
pub fn generalized_bfs<T, F, P>(
    out_g: &CsrGraph,
    in_g: &CsrGraph,
    ready: &[i64],
    mut values: Vec<T>,
    op: F,
    dir: Direction,
    probe: &P,
) -> GenBfsResult<T>
where
    T: Clone + Send + Sync,
    F: Fn(&mut T, &T) + Sync,
    P: Probe,
{
    let n = out_g.num_vertices();
    assert_eq!(in_g.num_vertices(), n);
    assert_eq!(ready.len(), n);
    assert_eq!(values.len(), n);
    let ready: Vec<AtomicI64> = ready.iter().map(|&r| AtomicI64::new(r)).collect();
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let locks = ShardedLocks::new(1024);

    let mut frontier: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| ready[v as usize].load(Ordering::Relaxed) == 0)
        .collect();
    // Mark initial frontier as consumed so it never re-enters.
    for &v in &frontier {
        ready[v as usize].store(-1, Ordering::Relaxed);
    }
    let mut frontiers = Vec::new();
    let mut in_frontier = vec![false; n];

    while !frontier.is_empty() {
        let next = match dir {
            Direction::Push => {
                let vals = SyncSlice::new(&mut values);
                // Sub-step 1: accumulate R[w] ⇐ R[v] for every frontier edge
                // with ready[w] > 0 (value at round start — no decrements
                // have happened yet).
                frontier.par_iter().for_each(|&v| {
                    for &w in out_g.neighbors(v) {
                        probe.branch_cond();
                        probe.read(addr_of_index(&ready, w as usize), 8);
                        if ready[w as usize].load(Ordering::Relaxed) > 0 {
                            // W: concurrent pushes into R[w]; serialize with
                            // a lock (float-capable operator, §4.5).
                            probe.lock();
                            locks.with(w as usize, || {
                                // SAFETY: lock serializes writers of w;
                                // sources (frontier) have ready ≤ 0 and are
                                // never written here.
                                unsafe {
                                    let target = &mut *(vals.addr(w as usize) as *mut T);
                                    let source = &*(vals.addr(v as usize) as *const T);
                                    op(target, source);
                                }
                            });
                        }
                    }
                });
                probe.barrier();
                // Sub-step 2: decrement counters; exactly the decrement that
                // reaches zero enlists w.
                frontier
                    .par_iter()
                    .fold(Vec::new, |mut my_f, &v| {
                        for &w in out_g.neighbors(v) {
                            probe.atomic_rmw(addr_of_index(&ready, w as usize), 8);
                            let prev = ready[w as usize].fetch_sub(1, Ordering::AcqRel);
                            probe.branch_cond();
                            if prev == 1 {
                                my_f.push(w);
                            }
                        }
                        my_f
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    })
            }
            Direction::Pull => {
                for &v in &frontier {
                    in_frontier[v as usize] = true;
                }
                let vals = SyncSlice::new(&mut values);
                let in_f = &in_frontier;
                let next = (0..part.num_parts())
                    .into_par_iter()
                    .fold(Vec::new, |mut my_f, t| {
                        for v in part.range(t) {
                            probe.read(addr_of_index(&ready, v as usize), 8);
                            probe.branch_cond();
                            if ready[v as usize].load(Ordering::Relaxed) <= 0 {
                                continue;
                            }
                            let mut remaining = ready[v as usize].load(Ordering::Relaxed);
                            for &w in in_g.neighbors(v) {
                                // R: read conflict on the frontier flag and
                                // the neighbor's value (§4.3).
                                probe.read(addr_of_index(in_f, w as usize), 1);
                                probe.branch_cond();
                                if in_f[w as usize] {
                                    // Own-cell fold: t == t[v], no sync.
                                    // SAFETY: v is owned by this task; w is
                                    // in the frontier (ready ≤ 0), stable.
                                    unsafe {
                                        let target = &mut *(vals.addr(v as usize) as *mut T);
                                        let source = &*(vals.addr(w as usize) as *const T);
                                        op(target, source);
                                    }
                                    remaining -= 1;
                                }
                            }
                            ready[v as usize].store(remaining, Ordering::Relaxed);
                            probe.write(addr_of_index(&ready, v as usize), 8);
                            // The counter was positive at round start, so
                            // crossing into ≤ 0 happens at most once —
                            // mirroring push's unique `prev == 1` decrement.
                            if remaining <= 0 {
                                my_f.push(v);
                            }
                        }
                        my_f
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                for &v in &frontier {
                    in_frontier[v as usize] = false;
                }
                next
            }
        };
        // Newly enlisted vertices leave the countdown state.
        for &v in &next {
            ready[v as usize].store(-1, Ordering::Relaxed);
        }
        frontiers.push(std::mem::replace(&mut frontier, next));
    }

    GenBfsResult { values, frontiers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, stats};
    use pp_telemetry::CountingProbe;

    fn assert_valid_bfs(g: &CsrGraph, root: VertexId, r: &BfsResult) {
        let (expected_levels, _, _) = stats::bfs_levels(g, root);
        assert_eq!(r.level, expected_levels, "levels must match sequential BFS");
        for v in g.vertices() {
            if v == root {
                assert_eq!(r.parent[v as usize], root);
            } else if r.level[v as usize] != UNVISITED {
                let p = r.parent[v as usize];
                assert!(g.has_edge(p, v), "parent edge must exist");
                assert_eq!(r.level[p as usize] + 1, r.level[v as usize]);
            } else {
                assert_eq!(r.parent[v as usize], NO_PARENT);
            }
        }
    }

    #[test]
    fn all_modes_agree_with_sequential_levels() {
        for g in [
            gen::path(50),
            gen::rmat(8, 4, 7),
            gen::road_grid(10, 12, 0.6, 3),
        ] {
            for mode in [
                BfsMode::Push,
                BfsMode::Pull,
                BfsMode::direction_optimizing(),
            ] {
                let r = bfs(&g, 0, mode);
                assert_valid_bfs(&g, 0, &r);
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unvisited() {
        let g = pp_graph::GraphBuilder::undirected(4).edge(0, 1).build();
        for mode in [BfsMode::Push, BfsMode::Pull] {
            let r = bfs(&g, 0, mode);
            assert_eq!(r.reached(), 2);
            assert_eq!(r.level[2], UNVISITED);
            assert_eq!(r.parent[3], NO_PARENT);
        }
    }

    #[test]
    fn rounds_record_frontier_progression() {
        let g = gen::path(6);
        let r = bfs(&g, 0, BfsMode::Push);
        // Frontiers on a path are all singletons; 5 productive rounds + none.
        assert_eq!(r.rounds.len(), 6);
        assert!(r.rounds.iter().all(|ri| ri.frontier == 1));
        assert!(r.rounds.iter().all(|ri| ri.dir == Direction::Push));
    }

    #[test]
    fn direction_optimizing_switches_on_dense_graphs() {
        // On a star from a leaf, round 2 has a huge frontier: DO must pull.
        let g = gen::complete(64);
        let r = bfs(&g, 0, BfsMode::direction_optimizing());
        assert!(
            r.rounds.iter().any(|ri| ri.dir == Direction::Pull),
            "expected at least one bottom-up round"
        );
        assert_valid_bfs(&g, 0, &r);
    }

    #[test]
    fn push_uses_cas_pull_uses_none() {
        let g = gen::rmat(7, 4, 1);
        let probe = CountingProbe::new();
        bfs_probed(&g, 0, BfsMode::Push, &probe);
        assert!(probe.counts().atomics > 0, "push BFS must CAS");
        assert_eq!(probe.counts().locks, 0);

        let probe = CountingProbe::new();
        bfs_probed(&g, 0, BfsMode::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0, "pull BFS is sync-free");
        assert_eq!(probe.counts().locks, 0);
        assert!(probe.counts().reads > 0);
    }

    #[test]
    fn pull_reads_dominate_push_reads_on_high_diameter() {
        // §4.3: pull does O(Dm) reads vs push O(m).
        let g = gen::path(200);
        let push = CountingProbe::new();
        bfs_probed(&g, 0, BfsMode::Push, &push);
        let pull = CountingProbe::new();
        bfs_probed(&g, 0, BfsMode::Pull, &pull);
        assert!(
            pull.counts().reads > 10 * push.counts().reads,
            "pull reads {} vs push reads {}",
            pull.counts().reads,
            push.counts().reads
        );
    }

    // --- generalized BFS ---

    #[test]
    fn generalized_bfs_with_max_op_computes_levels() {
        // ready=1 everywhere except root; op = max(level)+1 encoded by
        // accumulating predecessor level and adding 1 on entry is awkward;
        // instead accumulate "max distance + 1" directly: R starts at 0,
        // target takes max(target, source+1).
        let g = gen::binary_tree(31);
        let mut ready = vec![1i64; 31];
        ready[0] = 0;
        for dir in Direction::BOTH {
            let r = generalized_bfs(
                &g,
                &g,
                &ready,
                vec![0u32; 31],
                |t, s| *t = (*t).max(s + 1),
                dir,
                &NullProbe,
            );
            let (expected, _, _) = stats::bfs_levels(&g, 0);
            assert_eq!(
                r.values, expected,
                "{dir:?} generalized BFS must reproduce levels"
            );
        }
    }

    #[test]
    fn generalized_bfs_counts_shortest_paths() {
        // σ-counting (BC phase 1): accumulate path multiplicities. On a
        // 4-cycle plus diagonal-free square, vertex opposite the root has 2
        // shortest paths.
        let g = gen::cycle(4);
        let mut ready = vec![1i64; 4];
        ready[0] = 0;
        for dir in Direction::BOTH {
            let r = generalized_bfs(
                &g,
                &g,
                &ready,
                vec![1u64, 0, 0, 0],
                |t, s| *t += s,
                dir,
                &NullProbe,
            );
            assert_eq!(r.values, vec![1, 1, 2, 1], "{dir:?}");
        }
    }

    #[test]
    fn generalized_bfs_ready_counters_gate_entry() {
        // A vertex with ready=2 enters the frontier only after two distinct
        // frontier neighbors have decremented it (the BC phase-2 mechanism).
        // Diamond: 0-1, 0-2, 1-3, 2-3; ready[3]=2.
        let g = pp_graph::GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let ready = vec![0i64, 1, 1, 2];
        for dir in Direction::BOTH {
            let r = generalized_bfs(
                &g,
                &g,
                &ready,
                vec![1u64, 0, 0, 0],
                |t, s| *t += s,
                dir,
                &NullProbe,
            );
            assert_eq!(r.frontiers.len(), 3, "{dir:?}");
            assert_eq!(r.frontiers[2], vec![3], "3 enters last, {dir:?}");
            assert_eq!(r.values[3], 2, "both paths accumulate, {dir:?}");
        }
    }

    #[test]
    fn generalized_bfs_push_locks_pull_does_not() {
        let g = gen::rmat(6, 4, 5);
        let n = g.num_vertices();
        let mut ready = vec![1i64; n];
        ready[0] = 0;
        let probe = CountingProbe::new();
        generalized_bfs(
            &g,
            &g,
            &ready,
            vec![0u64; n],
            |t, s| *t += s,
            Direction::Push,
            &probe,
        );
        assert!(probe.counts().locks > 0);

        let probe = CountingProbe::new();
        generalized_bfs(
            &g,
            &g,
            &ready,
            vec![0u64; n],
            |t, s| *t += s,
            Direction::Pull,
            &probe,
        );
        assert_eq!(probe.counts().locks, 0);
    }
}
