//! Triangle counting in push and pull form (§3.2, §4.2).
//!
//! The NodeIterator scheme: thread `t[v]` scans all ordered neighbor pairs
//! `(w1, w2)` of `v` and tests `adj(w1, w2)`. On a hit, the pull variant
//! increments the *own* counter `tc[v]`; the push variant increments the
//! *remote* counter `tc[w1]` with an FAA (Algorithm 2). Every triangle is
//! detected twice per corner, so final sums are halved. Work is `O(m·d̂)`
//! either way; only the push direction pays `O(m·d̂)` atomics.

use std::sync::atomic::{AtomicU64, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::SyncSlice;
use crate::Direction;

/// Per-vertex triangle counts: `tc[v]` = number of triangles containing `v`.
pub fn triangle_counts(g: &CsrGraph, dir: Direction) -> Vec<u64> {
    triangle_counts_probed(g, dir, &NullProbe)
}

/// Instrumented variant of [`triangle_counts`].
pub fn triangle_counts_probed<P: Probe>(g: &CsrGraph, dir: Direction, probe: &P) -> Vec<u64> {
    match dir {
        Direction::Push => tc_push(g, probe),
        Direction::Pull => tc_pull(g, probe),
    }
}

/// Total number of triangles in the graph (each counted once).
pub fn total_triangles(g: &CsrGraph, dir: Direction) -> u64 {
    let per_vertex: u64 = triangle_counts(g, dir).iter().sum();
    // Each triangle contributes 1 to each of its three corners.
    per_vertex / 3
}

/// `adj(w1, w2)` with probe accounting: a binary search over `N(w1)`.
#[inline]
fn adj_probed<P: Probe>(g: &CsrGraph, w1: VertexId, w2: VertexId, probe: &P) -> bool {
    let nbrs = g.neighbors(w1);
    // One semantic read of the adjacency structure plus the comparison
    // branches of the binary search.
    probe.read(nbrs.as_ptr() as usize, nbrs.len().min(8) * 4);
    let mut lo = 0usize;
    let mut hi = nbrs.len();
    while lo < hi {
        probe.branch_cond();
        let mid = (lo + hi) / 2;
        if nbrs[mid] < w2 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo < nbrs.len() && nbrs[lo] == w2
}

fn tc_pull<P: Probe>(g: &CsrGraph, probe: &P) -> Vec<u64> {
    let n = g.num_vertices();
    let mut tc = vec![0u64; n];
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    {
        let out = SyncSlice::new(&mut tc);
        (0..part.num_parts()).into_par_iter().for_each(|t| {
            for v in part.range(t) {
                let nbrs = g.neighbors(v);
                let mut local = 0u64;
                for (i, &w1) in nbrs.iter().enumerate() {
                    for (j, &w2) in nbrs.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        probe.branch_cond();
                        if adj_probed(g, w1, w2, probe) {
                            // Pull: increment own counter — no conflict.
                            local += 1;
                        }
                    }
                }
                probe.write(out.addr(v as usize), 8);
                // SAFETY: v is in this task's owned range.
                unsafe { out.write(v as usize, local) };
            }
        });
    }
    for c in &mut tc {
        *c /= 2;
    }
    tc
}

fn tc_push<P: Probe>(g: &CsrGraph, probe: &P) -> Vec<u64> {
    let n = g.num_vertices();
    let tc: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    (0..part.num_parts()).into_par_iter().for_each(|t| {
        for v in part.range(t) {
            let nbrs = g.neighbors(v);
            for (i, &w1) in nbrs.iter().enumerate() {
                for (j, &w2) in nbrs.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    probe.branch_cond();
                    if adj_probed(g, w1, w2, probe) {
                        // Push: W(i) conflict on tc[w1], resolved by FAA
                        // (§4.2 "We use FAA atomics").
                        probe.atomic_rmw(addr_of_index(&tc, w1 as usize), 8);
                        probe.branch_uncond();
                        tc[w1 as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    });
    tc.into_iter().map(|c| c.into_inner() / 2).collect()
}

/// Sequential reference (forward-edge enumeration, counts each triangle
/// once per corner) for validation.
pub fn triangle_counts_seq(g: &CsrGraph) -> Vec<u64> {
    let mut tc = vec![0u64; g.num_vertices()];
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        for (i, &w1) in nbrs.iter().enumerate() {
            for &w2 in &nbrs[i + 1..] {
                if g.has_edge(w1, w2) {
                    tc[v as usize] += 1;
                    tc[w1 as usize] += 1;
                    tc[w2 as usize] += 1;
                }
            }
        }
    }
    // The above counts each triangle three times per corner-triple but each
    // corner exactly... enumerate pairs at the smallest corner only? No:
    // every unordered pair at every corner, so each triangle is seen from
    // all three corners; at corner v it is seen once, contributing +1 to all
    // three corners => every vertex's count is 3× its triangle count.
    for c in &mut tc {
        *c /= 3;
    }
    tc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    #[test]
    fn single_triangle() {
        let g = gen::complete(3);
        for dir in Direction::BOTH {
            assert_eq!(triangle_counts(&g, dir), vec![1, 1, 1], "{dir:?}");
            assert_eq!(total_triangles(&g, dir), 1);
        }
    }

    #[test]
    fn complete_graph_counts() {
        // K5: each vertex is in C(4,2) = 6 triangles; total C(5,3) = 10.
        let g = gen::complete(5);
        for dir in Direction::BOTH {
            assert_eq!(triangle_counts(&g, dir), vec![6; 5], "{dir:?}");
            assert_eq!(total_triangles(&g, dir), 10);
        }
    }

    #[test]
    fn triangle_free_graphs() {
        for g in [gen::path(10), gen::star(10), gen::cycle(8)] {
            for dir in Direction::BOTH {
                assert_eq!(total_triangles(&g, dir), 0);
            }
        }
    }

    #[test]
    fn push_pull_and_seq_agree_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::rmat(8, 6, seed);
            let reference = triangle_counts_seq(&g);
            assert_eq!(triangle_counts(&g, Direction::Push), reference, "push");
            assert_eq!(triangle_counts(&g, Direction::Pull), reference, "pull");
        }
    }

    #[test]
    fn bowtie_counts_shared_vertex_twice() {
        // Two triangles sharing vertex 2.
        let g = GraphBuilder::undirected(5)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .build();
        for dir in Direction::BOTH {
            assert_eq!(triangle_counts(&g, dir), vec![1, 1, 2, 1, 1]);
            assert_eq!(total_triangles(&g, dir), 2);
        }
    }

    #[test]
    fn push_uses_faa_pull_uses_none() {
        // §4.2: push resolves write conflicts with FAA; pull needs nothing.
        let g = gen::complete(8);
        let probe = CountingProbe::new();
        triangle_counts_probed(&g, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert_eq!(probe.counts().locks, 0);

        let probe = CountingProbe::new();
        triangle_counts_probed(&g, Direction::Push, &probe);
        let c = probe.counts();
        // K8: each vertex sees C(7,2)=21 pairs ×2 orders, all adjacent:
        // 8 × 42 = 336 FAAs.
        assert_eq!(c.atomics, 336);
        assert_eq!(c.locks, 0);
    }

    #[test]
    fn empty_and_single_vertex() {
        let empty = GraphBuilder::undirected(0).build();
        let one = GraphBuilder::undirected(1).build();
        for dir in Direction::BOTH {
            assert!(triangle_counts(&empty, dir).is_empty());
            assert_eq!(triangle_counts(&one, dir), vec![0]);
        }
    }
}
