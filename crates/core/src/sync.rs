//! Synchronization building blocks for the push variants.
//!
//! The paper's push algorithms resolve write conflicts with CPU atomics
//! (FAA/CAS on integers, §2.3) or — where the payload is floating point and
//! no CPU atomic exists (§4.1) — with locks. This module provides both:
//! a CAS-loop [`AtomicF64`], a sharded lock table ([`ShardedLocks`]), an
//! atomic-min helper, and [`SyncSlice`], the unsafe-but-audited shared slice
//! used where a partition proof guarantees disjoint writes (the
//! partition-aware local phase of §5).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// An `f64` updatable with atomic read-modify-write built from a CAS loop on
/// the bit representation. The paper notes no CPU offers float atomics; this
/// is the software emulation, and instrumented kernels count each
/// `fetch_add` as one atomic per CAS attempt.
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// A new atomic with the given value.
    pub fn new(v: f64) -> Self {
        Self {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic `+= delta` via a CAS loop; returns the number of CAS attempts
    /// (≥ 1), which instrumented callers report as atomics.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> u32 {
        let mut attempts = 1;
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return attempts,
                Err(actual) => {
                    cur = actual;
                    attempts += 1;
                }
            }
        }
    }

    /// Reinterprets a `&mut [f64]` as atomics. Safe: `AtomicF64` is
    /// `repr(transparent)`-compatible in layout with `u64`/`f64` and the
    /// exclusive borrow guarantees no other access during the reborrow.
    pub fn from_mut_slice(s: &mut [f64]) -> &[AtomicF64] {
        // SAFETY: AtomicF64 wraps AtomicU64 which has the same size and
        // alignment as u64/f64; the lifetime ties the cast to the unique
        // borrow.
        unsafe { &*(s as *mut [f64] as *const [AtomicF64]) }
    }
}

/// Atomic `min` on an `AtomicU64` via CAS; returns `(updated, attempts)`.
/// Used by Δ-stepping's push relaxation and Boruvka's minimum-edge election.
#[inline]
pub fn atomic_min_u64(cell: &AtomicU64, value: u64) -> (bool, u32) {
    let mut attempts = 0;
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if value >= cur {
            return (false, attempts.max(1));
        }
        attempts += 1;
        match cell.compare_exchange_weak(cur, value, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return (true, attempts),
            Err(actual) => cur = actual,
        }
    }
}

/// A table of locks sharded by index: the lock-based alternative for float
/// accumulation (push PageRank, push BC phase 2). Sharding bounds memory at
/// a fixed lock count while keeping contention low.
pub struct ShardedLocks {
    shards: Vec<Mutex<()>>,
    mask: usize,
}

impl ShardedLocks {
    /// Creates a table with `shards` locks, rounded up to a power of two.
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(())).collect(),
            mask: n - 1,
        }
    }

    /// Runs `f` while holding the lock guarding index `i`.
    #[inline]
    pub fn with<R>(&self, i: usize, f: impl FnOnce() -> R) -> R {
        // Fibonacci hash spreads consecutive indices across shards.
        let shard = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15_usize) >> 7) & self.mask;
        let _guard = self.shards[shard].lock();
        f()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false (the table has ≥ 1 shard).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A shared mutable slice for phases where disjointness of writes is
/// guaranteed *structurally* (each thread writes only vertices it owns —
/// the defining property of pulling and of the PA local phase, §3.8/§5)
/// rather than through the type system.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: Sync requires callers to uphold the disjoint-write contract of
// `write`; reads of cells concurrently written are excluded by the same
// contract.
unsafe impl<T: Send + Sync> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps an exclusive slice.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: &mut [T] -> &[UnsafeCell<T>] is sound; UnsafeCell<T> has
        // the same layout as T, and the unique borrow is surrendered to the
        // wrapper for its lifetime.
        let data = unsafe { &*(data as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write index `i` concurrently. In this
    /// crate every call site is inside a loop over vertices owned by the
    /// calling thread under a [`pp_graph::BlockPartition`], which makes the
    /// index sets disjoint.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Reads the value at `i`.
    ///
    /// # Safety
    /// No other thread may write index `i` concurrently.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.data[i].get()
    }

    /// The address of element `i`, for probe accounting.
    #[inline]
    pub fn addr(&self, i: usize) -> usize {
        self.data[i].get() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn atomic_f64_add_is_exact_under_contention() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        a.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(a.load(), 80_000.0);
    }

    #[test]
    fn atomic_f64_load_store() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn from_mut_slice_views_in_place() {
        let mut v = vec![1.0f64, 2.0];
        {
            let atomics = AtomicF64::from_mut_slice(&mut v);
            atomics[0].fetch_add(0.5);
            atomics[1].store(7.0);
        }
        assert_eq!(v, vec![1.5, 7.0]);
    }

    #[test]
    fn atomic_min_keeps_minimum() {
        let c = AtomicU64::new(100);
        let (updated, _) = atomic_min_u64(&c, 50);
        assert!(updated);
        let (updated, _) = atomic_min_u64(&c, 75);
        assert!(!updated);
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn atomic_min_under_contention_finds_global_min() {
        let c = AtomicU64::new(u64::MAX);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1000 {
                        atomic_min_u64(c, (t * 1000 + i) ^ 0x5a5a);
                    }
                });
            }
        });
        let expected = (0..8u64)
            .flat_map(|t| (0..1000).map(move |i| (t * 1000 + i) ^ 0x5a5a))
            .min()
            .unwrap();
        assert_eq!(c.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn sharded_locks_serialize_same_index() {
        let locks = ShardedLocks::new(16);
        assert_eq!(locks.len(), 16);
        let mut total = 0u64;
        let cell = SyncSlice::new(std::slice::from_mut(&mut total));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let locks = &locks;
                let cell = &cell;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        locks.with(3, || {
                            // SAFETY: the shard lock for index 3 serializes
                            // all accesses to this cell.
                            unsafe { cell.write(0, cell.read(0) + 1) };
                        });
                    }
                });
            }
        });
        assert_eq!(total, 40_000);
    }

    #[test]
    fn sync_slice_disjoint_parallel_writes() {
        let mut v = vec![0usize; 64];
        {
            let s = SyncSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 16)..((t + 1) * 16) {
                            // SAFETY: each thread owns a disjoint range.
                            unsafe { s.write(i, i * 10) };
                        }
                    });
                }
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 10);
        }
    }

    #[test]
    fn sharded_lock_rounds_to_power_of_two() {
        assert_eq!(ShardedLocks::new(10).len(), 16);
        assert_eq!(ShardedLocks::new(1).len(), 1);
    }
}
