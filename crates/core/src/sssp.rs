//! Δ-stepping single-source shortest paths in push and pull form
//! (§3.4, §4.4, Algorithm 4).
//!
//! The algorithm proceeds in *epochs*, one per distance bucket of width Δ;
//! within an epoch, *phases* repeat until the bucket stops changing. The
//! push variant relaxes outgoing edges of bucket members with CAS-min
//! atomics on the shared distance array; the pull variant has every
//! unsettled vertex scan its neighbors for active bucket members and relax
//! its own distance — no synchronization, more reads. Per-epoch timings are
//! recorded to regenerate Figure 2.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::atomic_min_u64;
use crate::Direction;

/// Distance of an unreached vertex.
pub const INF: u64 = u64::MAX;

/// Δ-stepping parameters.
#[derive(Clone, Copy, Debug)]
pub struct SsspOptions {
    /// Bucket width Δ. Δ = 1 degenerates to Dijkstra-like behaviour, large Δ
    /// to Bellman-Ford (§3.4); Figure 2c sweeps this.
    pub delta: u64,
}

impl Default for SsspOptions {
    fn default() -> Self {
        Self { delta: 16 }
    }
}

/// Statistics for one epoch (one bucket).
#[derive(Clone, Copy, Debug)]
pub struct EpochInfo {
    /// Bucket index `b` (distances in `[bΔ, (b+1)Δ)`).
    pub bucket: u64,
    /// Inner phases until the bucket settled.
    pub phases: usize,
    /// Edge relaxations attempted in the epoch.
    pub relaxations: u64,
    /// Wall-clock time of the epoch.
    pub time: Duration,
}

/// Result of a Δ-stepping run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Shortest distance from the root ([`INF`] if unreachable).
    pub dist: Vec<u64>,
    /// Per-epoch statistics (Figure 2 plots epoch times).
    pub epochs: Vec<EpochInfo>,
}

/// Δ-stepping from `root` with the default probe.
pub fn sssp_delta(g: &CsrGraph, root: VertexId, dir: Direction, opts: &SsspOptions) -> SsspResult {
    sssp_delta_probed(g, root, dir, opts, &NullProbe)
}

/// Instrumented Δ-stepping.
pub fn sssp_delta_probed<P: Probe>(
    g: &CsrGraph,
    root: VertexId,
    dir: Direction,
    opts: &SsspOptions,
    probe: &P,
) -> SsspResult {
    assert!(g.is_weighted(), "Δ-stepping requires edge weights");
    assert!(opts.delta >= 1, "Δ must be at least 1");
    assert!((root as usize) < g.num_vertices(), "root out of range");
    match dir {
        Direction::Push => sssp_push(g, root, opts, probe),
        Direction::Pull => sssp_pull(g, root, opts, probe),
    }
}

/// Sequential Dijkstra reference for validation.
pub fn dijkstra(g: &CsrGraph, root: VertexId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, root)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (w, wt) in g.weighted_neighbors(v) {
            let nd = d + wt as u64;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Next bucket containing a finite unsettled distance strictly above `b`,
/// or `None` when every finite distance is settled.
fn next_bucket(dist: &[AtomicU64], delta: u64, b: u64) -> Option<u64> {
    dist.par_iter()
        .filter_map(|d| {
            let d = d.load(Ordering::Relaxed);
            (d != INF && d / delta > b).then_some(d / delta)
        })
        .min()
}

fn sssp_push<P: Probe>(g: &CsrGraph, root: VertexId, opts: &SsspOptions, probe: &P) -> SsspResult {
    let n = g.num_vertices();
    let delta = opts.delta;
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);

    // Bucket work-lists; lazily validated on drain (a vertex whose distance
    // improved out of the bucket is skipped).
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![root]];
    let mut epochs = Vec::new();
    let mut b = 0u64;

    loop {
        let started = Instant::now();
        let mut phases = 0usize;
        let relaxations = AtomicU64::new(0);
        while (b as usize) < buckets.len() && !buckets[b as usize].is_empty() {
            phases += 1;
            let mut frontier = std::mem::take(&mut buckets[b as usize]);
            frontier.sort_unstable();
            frontier.dedup();
            // Lazy validation: only vertices still in this bucket count.
            frontier.retain(|&v| dist[v as usize].load(Ordering::Relaxed) / delta == b);
            if frontier.is_empty() {
                break;
            }
            // Relax all outgoing edges of the bucket members; collect
            // re-insertions per thread (the my_F pattern of Algorithm 3).
            let inserts: Vec<(u64, VertexId)> = frontier
                .par_iter()
                .fold(Vec::new, |mut acc, &v| {
                    let dv = dist[v as usize].load(Ordering::Relaxed);
                    for (w, wt) in g.weighted_neighbors(v) {
                        relaxations.fetch_add(1, Ordering::Relaxed);
                        probe.branch_cond();
                        let cand = dv.saturating_add(wt as u64);
                        probe.read(addr_of_index(&dist, w as usize), 8);
                        // W(i): write conflict on d[w]; CAS-min (§4.4).
                        let (updated, attempts) = atomic_min_u64(&dist[w as usize], cand);
                        for _ in 0..attempts {
                            probe.atomic_rmw(addr_of_index(&dist, w as usize), 8);
                        }
                        if updated {
                            acc.push((cand / delta, w));
                        }
                    }
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            for (bk, w) in inserts {
                let bk = bk as usize;
                if bk >= buckets.len() {
                    buckets.resize_with(bk + 1, Vec::new);
                }
                buckets[bk].push(w);
            }
        }
        epochs.push(EpochInfo {
            bucket: b,
            phases,
            relaxations: relaxations.into_inner(),
            time: started.elapsed(),
        });
        match next_bucket(&dist, delta, b) {
            Some(nb) => b = nb,
            None => break,
        }
    }

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        epochs,
    }
}

fn sssp_pull<P: Probe>(g: &CsrGraph, root: VertexId, opts: &SsspOptions, probe: &P) -> SsspResult {
    let n = g.num_vertices();
    let delta = opts.delta;
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    let mut epochs = Vec::new();
    let mut b = 0u64;

    loop {
        let started = Instant::now();
        let mut phases = 0usize;
        let relaxations = AtomicU64::new(0);
        // itr == 0: every bucket member is an implicit source (Algorithm 4
        // line 24's `active[w] or itr == 0`).
        let mut active: Vec<AtomicBool> = (0..n)
            .map(|v| {
                let d = dist[v].load(Ordering::Relaxed);
                AtomicBool::new(d != INF && d / delta == b)
            })
            .collect();
        loop {
            phases += 1;
            let next_active: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let changed = AtomicBool::new(false);
            (0..part.num_parts()).into_par_iter().for_each(|t| {
                for v in part.range(t) {
                    let dv = dist[v as usize].load(Ordering::Relaxed);
                    probe.branch_cond();
                    // Only vertices that can still improve relative to this
                    // bucket participate as targets (line 23: d[v] > b).
                    if dv <= b * delta {
                        continue;
                    }
                    let mut best = dv;
                    for (w, wt) in g.weighted_neighbors(v) {
                        relaxations.fetch_add(1, Ordering::Relaxed);
                        // R: read conflicts on d[w] and active[w] (§4.4).
                        probe.read(addr_of_index(&dist, w as usize), 8);
                        probe.read(addr_of_index(&active, w as usize), 1);
                        probe.branch_cond();
                        let dw = dist[w as usize].load(Ordering::Relaxed);
                        if dw != INF
                            && dw / delta == b
                            && active[w as usize].load(Ordering::Relaxed)
                        {
                            best = best.min(dw.saturating_add(wt as u64));
                        }
                    }
                    if best < dv {
                        // Own-cell write: t[v] == t, no conflict (§3.8).
                        probe.write(addr_of_index(&dist, v as usize), 8);
                        dist[v as usize].store(best, Ordering::Relaxed);
                        if best / delta == b {
                            next_active[v as usize].store(true, Ordering::Relaxed);
                            changed.store(true, Ordering::Relaxed);
                        }
                    }
                }
            });
            if !changed.into_inner() {
                break;
            }
            active = next_active;
        }
        epochs.push(EpochInfo {
            bucket: b,
            phases,
            relaxations: relaxations.into_inner(),
            time: started.elapsed(),
        });
        match next_bucket(&dist, delta, b) {
            Some(nb) => b = nb,
            None => break,
        }
    }

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    fn weighted_test_graphs() -> Vec<CsrGraph> {
        vec![
            gen::with_random_weights(&gen::path(40), 1, 20, 1),
            gen::with_random_weights(&gen::rmat(7, 4, 5), 1, 50, 2),
            gen::with_random_weights(&gen::road_grid(8, 9, 0.7, 4), 1, 9, 3),
            gen::with_random_weights(&gen::complete(20), 1, 100, 4),
        ]
    }

    #[test]
    fn matches_dijkstra_for_both_directions_and_various_delta() {
        for g in weighted_test_graphs() {
            let reference = dijkstra(&g, 0);
            for dir in Direction::BOTH {
                for delta in [1, 4, 64, 1 << 20] {
                    let r = sssp_delta(&g, 0, dir, &SsspOptions { delta });
                    assert_eq!(r.dist, reference, "{dir:?} Δ={delta}");
                }
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = GraphBuilder::undirected(4)
            .weighted_edges([(0, 1, 5)])
            .build();
        for dir in Direction::BOTH {
            let r = sssp_delta(&g, 0, dir, &SsspOptions::default());
            assert_eq!(r.dist, vec![0, 5, INF, INF]);
        }
    }

    #[test]
    fn trivial_single_vertex() {
        let g = GraphBuilder::undirected(1)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        for dir in Direction::BOTH {
            let r = sssp_delta(&g, 0, dir, &SsspOptions::default());
            assert_eq!(r.dist, vec![0]);
            assert_eq!(r.epochs.len(), 1);
        }
    }

    #[test]
    fn epoch_count_shrinks_with_larger_delta() {
        // Figure 2c's mechanism: larger Δ ⇒ fewer buckets ⇒ fewer epochs.
        let g = gen::with_random_weights(&gen::rmat(8, 4, 9), 1, 100, 7);
        let small = sssp_delta(&g, 0, Direction::Push, &SsspOptions { delta: 2 });
        let large = sssp_delta(&g, 0, Direction::Push, &SsspOptions { delta: 1 << 12 });
        assert!(small.epochs.len() > large.epochs.len());
        assert_eq!(large.epochs.len(), 1, "huge Δ is Bellman-Ford: one epoch");
    }

    #[test]
    fn push_uses_cas_pull_uses_none() {
        // §4.4: push resolves each relaxation with a CAS; pull needs none.
        let g = gen::with_random_weights(&gen::rmat(7, 4, 3), 1, 30, 5);
        let probe = CountingProbe::new();
        sssp_delta_probed(&g, 0, Direction::Push, &SsspOptions::default(), &probe);
        assert!(probe.counts().atomics > 0);
        assert_eq!(probe.counts().locks, 0);

        let probe = CountingProbe::new();
        sssp_delta_probed(&g, 0, Direction::Pull, &SsspOptions::default(), &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert_eq!(probe.counts().locks, 0);
    }

    #[test]
    fn pull_relaxes_more_edges_than_push() {
        // §4.4 cost asymmetry: pull scans all unsettled vertices' edges each
        // phase; push touches only the current bucket's edges.
        let g = gen::with_random_weights(&gen::road_grid(10, 10, 0.7, 2), 1, 9, 6);
        let push = sssp_delta(&g, 0, Direction::Push, &SsspOptions { delta: 4 });
        let pull = sssp_delta(&g, 0, Direction::Pull, &SsspOptions { delta: 4 });
        let push_total: u64 = push.epochs.iter().map(|e| e.relaxations).sum();
        let pull_total: u64 = pull.epochs.iter().map(|e| e.relaxations).sum();
        assert!(
            pull_total > 2 * push_total,
            "pull {pull_total} vs push {push_total}"
        );
    }

    #[test]
    #[should_panic(expected = "requires edge weights")]
    fn rejects_unweighted_graphs() {
        let g = gen::path(4);
        sssp_delta(&g, 0, Direction::Push, &SsspOptions::default());
    }
}
