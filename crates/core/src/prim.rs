//! Prim's MST with push/pull key maintenance (§3.7 notes that pushing and
//! pulling in Prim are covered in the paper's technical report).
//!
//! Prim grows one tree; each round adds the non-tree vertex with the
//! cheapest edge into the tree. The dichotomy lives in the *key update*
//! after a vertex joins:
//!
//! * **push**: the newly added vertex scatters improved keys into its
//!   non-tree neighbors (writes to vertices it does not own);
//! * **pull**: every non-tree vertex checks its own adjacency against the
//!   newcomer and updates its own key (owner-only writes, one adjacency
//!   probe per vertex per round).

use std::sync::atomic::{AtomicU64, Ordering};

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::atomic_min_u64;
use crate::Direction;

/// Result of a Prim run: tree edges and their total weight. On a
/// disconnected graph only the root's component is spanned.
#[derive(Clone, Debug)]
pub struct PrimResult {
    /// Chosen tree edges `(tree_vertex, added_vertex, weight)`.
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Total weight of the tree.
    pub total_weight: u64,
}

/// Prim from `root` with the default probe.
pub fn prim(g: &CsrGraph, root: VertexId, dir: Direction) -> PrimResult {
    prim_probed(g, root, dir, &NullProbe)
}

/// Instrumented Prim.
pub fn prim_probed<P: Probe>(
    g: &CsrGraph,
    root: VertexId,
    dir: Direction,
    probe: &P,
) -> PrimResult {
    assert!(g.is_weighted(), "Prim requires edge weights");
    let n = g.num_vertices();
    assert!((root as usize) < n);

    const NO_KEY: u64 = u64::MAX;
    // key[w] packs (weight << 32 | tree-parent) so a CAS-min keeps both.
    let key: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_KEY)).collect();
    let mut in_tree = vec![false; n];
    in_tree[root as usize] = true;
    let mut edges = Vec::new();
    let mut total = 0u64;

    let mut newcomer = root;
    loop {
        // --- Key update for the newcomer's neighborhood. ---
        match dir {
            Direction::Push => {
                // Scatter: the newcomer updates its neighbors' keys. A CAS
                // keeps the code shape identical to the concurrent multi-
                // source variants even though rounds add one vertex.
                let in_tree_ref = &in_tree;
                g.weighted_neighbors(newcomer)
                    .collect::<Vec<_>>()
                    .par_iter()
                    .for_each(|&(w, wt)| {
                        probe.branch_cond();
                        if !in_tree_ref[w as usize] {
                            let packed = ((wt as u64) << 32) | newcomer as u64;
                            let (updated, attempts) = atomic_min_u64(&key[w as usize], packed);
                            if updated {
                                for _ in 0..attempts {
                                    probe.atomic_rmw(addr_of_index(&key, w as usize), 8);
                                }
                            }
                        }
                    });
            }
            Direction::Pull => {
                // Gather: every non-tree vertex probes its own adjacency
                // against the newcomer and improves its own key.
                let in_tree_ref = &in_tree;
                (0..n as VertexId).into_par_iter().for_each(|w| {
                    probe.branch_cond();
                    if in_tree_ref[w as usize] {
                        return;
                    }
                    probe.read(addr_of_index(in_tree_ref, newcomer as usize), 1);
                    if let Some(wt) = g.edge_weight(w, newcomer) {
                        let packed = ((wt as u64) << 32) | newcomer as u64;
                        let cur = key[w as usize].load(Ordering::Relaxed);
                        if packed < cur {
                            probe.write(addr_of_index(&key, w as usize), 8);
                            // Owner-only write: w is processed by exactly
                            // one task.
                            key[w as usize].store(packed, Ordering::Relaxed);
                        }
                    }
                });
            }
        }

        // --- Select the cheapest fringe vertex. ---
        let best = (0..n as VertexId)
            .into_par_iter()
            .filter(|&w| !in_tree[w as usize])
            .map(|w| (key[w as usize].load(Ordering::Relaxed), w))
            .min();
        match best {
            Some((packed, w)) if packed != NO_KEY => {
                let parent = (packed & 0xFFFF_FFFF) as VertexId;
                let wt = (packed >> 32) as Weight;
                in_tree[w as usize] = true;
                edges.push((parent, w, wt));
                total += wt as u64;
                newcomer = w;
            }
            _ => break, // component exhausted (or no vertices left)
        }
    }

    PrimResult {
        edges,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::kruskal_seq;
    use pp_graph::{gen, stats, GraphBuilder};
    use pp_telemetry::CountingProbe;

    #[test]
    fn matches_kruskal_on_connected_graphs() {
        for seed in 0..3 {
            let g = gen::with_random_weights(&gen::road_grid(6, 7, 0.7, seed), 1, 99, seed);
            assert!(stats::is_connected(&g));
            let (_, expected) = kruskal_seq(&g);
            for dir in Direction::BOTH {
                let r = prim(&g, 0, dir);
                assert_eq!(r.total_weight, expected, "{dir:?} seed {seed}");
                assert_eq!(r.edges.len(), g.num_vertices() - 1);
            }
        }
    }

    #[test]
    fn matches_boruvka_weight() {
        let g = gen::with_random_weights(&gen::rmat(6, 6, 5), 1, 500, 5);
        // Boruvka spans all components; compare on the root component by
        // using a connected graph.
        if stats::is_connected(&g) {
            let b = crate::mst::boruvka(&g, Direction::Pull);
            let p = prim(&g, 0, Direction::Push);
            assert_eq!(p.total_weight, b.total_weight);
        }
    }

    #[test]
    fn spans_only_the_roots_component() {
        let g = GraphBuilder::undirected(5)
            .weighted_edges([(0, 1, 2), (1, 2, 3), (3, 4, 7)])
            .build();
        for dir in Direction::BOTH {
            let r = prim(&g, 0, dir);
            assert_eq!(r.total_weight, 5, "{dir:?}");
            assert_eq!(r.edges.len(), 2);
            let r = prim(&g, 3, dir);
            assert_eq!(r.total_weight, 7, "{dir:?}");
        }
    }

    #[test]
    fn tree_edges_are_real_edges() {
        let g = gen::with_random_weights(&gen::rmat(5, 4, 8), 1, 50, 8);
        let r = prim(&g, 0, Direction::Pull);
        for (u, v, w) in r.edges {
            assert_eq!(g.edge_weight(u, v), Some(w));
        }
    }

    #[test]
    fn push_synchronizes_pull_does_not() {
        let g = gen::with_random_weights(&gen::complete(24), 1, 9999, 3);
        let probe = CountingProbe::new();
        prim_probed(&g, 0, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);
        let probe = CountingProbe::new();
        prim_probed(&g, 0, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::undirected(1)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        let r = prim(&g, 0, Direction::Push);
        assert_eq!(r.total_weight, 0);
        assert!(r.edges.is_empty());
    }
}
