//! k-core decomposition in push and pull form.
//!
//! The coreness of a vertex `v` is the largest `k` such that `v` survives in
//! the maximal subgraph where every vertex has degree ≥ `k`. The parallel
//! peeling algorithm removes vertices level by level (all vertices of
//! induced degree ≤ k receive coreness k), which makes it a member of the
//! paper's "iterative schemes" class (§3.8) with a textbook push–pull
//! choice inside each peel sub-round:
//!
//! * **push**: every vertex peeled this sub-round *scatters* a decrement to
//!   the shared induced-degree counter of each live neighbor (`FAA`, §2.3) —
//!   write conflicts on integers, `O(m)` total decrements, work proportional
//!   to the peeled frontier;
//! * **pull**: every live vertex *recounts* its live neighbors from scratch
//!   each sub-round — no synchronization at all, but `O(m)` reads per
//!   sub-round, the §4.9 communication-for-synchronization trade.
//!
//! Both produce the same coreness array as the sequential
//! Batagelj–Zaveršnik bucket peeling ([`coreness_seq`]), which tests use as
//! the reference.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::Direction;

/// Result of a k-core decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KCoreResult {
    /// Per-vertex coreness (core number).
    pub coreness: Vec<u32>,
    /// The degeneracy of the graph: the maximum coreness.
    pub degeneracy: u32,
    /// Total peel sub-rounds executed (one per frontier wave; Fig.-1-style
    /// iteration counts for the strategy analysis).
    pub rounds: usize,
}

impl KCoreResult {
    /// Vertices belonging to the `k`-core (coreness ≥ k).
    pub fn core_members(&self, k: u32) -> Vec<VertexId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// k-core decomposition with the default probe.
pub fn kcore(g: &CsrGraph, dir: Direction) -> KCoreResult {
    kcore_probed(g, dir, &NullProbe)
}

/// Instrumented parallel peeling.
pub fn kcore_probed<P: Probe>(g: &CsrGraph, dir: Direction, probe: &P) -> KCoreResult {
    let n = g.num_vertices();
    if n == 0 {
        return KCoreResult {
            coreness: Vec::new(),
            degeneracy: 0,
            rounds: 0,
        };
    }
    // deg[v]: induced degree among still-live vertices. alive[v]: u32 flag so
    // both directions share one layout (coreness doubles as the tombstone —
    // u32::MAX means live).
    let deg: Vec<AtomicU32> = g
        .vertices()
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let remaining = AtomicUsize::new(n);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut rounds = 0usize;
    let mut k = 0u32;

    while remaining.load(Ordering::Relaxed) > 0 {
        // Seed frontier for level k: live vertices whose induced degree
        // already dropped to ≤ k.
        let mut frontier: Vec<VertexId> = (0..part.num_parts())
            .into_par_iter()
            .flat_map_iter(|t| {
                part.range(t).filter(|&v| {
                    coreness[v as usize].load(Ordering::Relaxed) == u32::MAX
                        && deg[v as usize].load(Ordering::Relaxed) <= k
                })
            })
            .collect();

        while !frontier.is_empty() {
            rounds += 1;
            // Peel the whole frontier at coreness k.
            frontier.par_iter().for_each(|&v| {
                coreness[v as usize].store(k, Ordering::Relaxed);
            });
            remaining.fetch_sub(frontier.len(), Ordering::Relaxed);

            match dir {
                Direction::Push => {
                    // Scatter decrements to live neighbors; a neighbor whose
                    // counter crosses the k threshold under *this* FAA joins
                    // the next wave (exactly-once because FAA returns the
                    // previous value).
                    let next: Vec<VertexId> = frontier
                        .par_iter()
                        .fold(Vec::new, |mut my_f, &v| {
                            for &u in g.neighbors(v) {
                                probe.branch_cond();
                                if coreness[u as usize].load(Ordering::Relaxed) != u32::MAX {
                                    continue;
                                }
                                // W(i): FAA on the shared degree counter.
                                probe.atomic_rmw(addr_of_index(&deg, u as usize), 4);
                                let prev = deg[u as usize].fetch_sub(1, Ordering::AcqRel);
                                if prev == k + 1 {
                                    my_f.push(u);
                                }
                            }
                            my_f
                        })
                        .reduce(Vec::new, |mut a, mut b| {
                            a.append(&mut b);
                            a
                        });
                    // A vertex can be pushed into `next` and then peeled by a
                    // racing decrement path only through the prev==k+1 gate,
                    // which fires once; dedup is still cheap insurance against
                    // multi-edge builders.
                    frontier = next;
                    frontier.sort_unstable();
                    frontier.dedup();
                    frontier.retain(|&v| coreness[v as usize].load(Ordering::Relaxed) == u32::MAX);
                }
                Direction::Pull => {
                    // Every live vertex recounts its live neighbors. No
                    // writes to remote state; each thread refreshes only the
                    // counters of vertices it owns.
                    let next: Vec<VertexId> = (0..part.num_parts())
                        .into_par_iter()
                        .fold(Vec::new, |mut my_f, t| {
                            for v in part.range(t) {
                                if coreness[v as usize].load(Ordering::Relaxed) != u32::MAX {
                                    continue;
                                }
                                let mut live = 0u32;
                                for &u in g.neighbors(v) {
                                    // R: read-only conflict on the tombstone.
                                    probe.read(addr_of_index(&coreness, u as usize), 4);
                                    probe.branch_cond();
                                    if coreness[u as usize].load(Ordering::Relaxed) == u32::MAX {
                                        live += 1;
                                    }
                                }
                                probe.write(addr_of_index(&deg, v as usize), 4);
                                deg[v as usize].store(live, Ordering::Relaxed);
                                if live <= k {
                                    my_f.push(v);
                                }
                            }
                            my_f
                        })
                        .reduce(Vec::new, |mut a, mut b| {
                            a.append(&mut b);
                            a
                        });
                    frontier = next;
                }
            }
        }
        k += 1;
    }

    let coreness: Vec<u32> = coreness.into_iter().map(AtomicU32::into_inner).collect();
    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    KCoreResult {
        coreness,
        degeneracy,
        rounds,
    }
}

/// Partition-aware push k-core (the §5 PA strategy applied to peeling,
/// exactly as Algorithm 8 applies it to PageRank).
///
/// Each peel wave splits into two phases separated by a barrier: frontier
/// vertices first decrement their *local* neighbors' counters with plain
/// stores (the owning thread is the only writer of its partition's cells),
/// then decrement *remote* neighbors with FAAs. The atomic count drops from
/// every decrement to only the cut-crossing ones — between 0 (each thread
/// owns whole components) and all of them (bipartite graph with ownership
/// split along the sides, the §5 worst case).
pub fn kcore_push_pa<P: Probe>(
    g: &CsrGraph,
    pa: &pp_graph::PartitionAwareGraph,
    probe: &P,
) -> KCoreResult {
    let n = g.num_vertices();
    assert_eq!(pa.num_vertices(), n, "PA representation mismatch");
    if n == 0 {
        return KCoreResult {
            coreness: Vec::new(),
            degeneracy: 0,
            rounds: 0,
        };
    }
    let part = pa.partition();
    let deg: Vec<AtomicU32> = g
        .vertices()
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut remaining = n;
    let mut rounds = 0usize;
    let mut k = 0u32;

    while remaining > 0 {
        let mut frontier: Vec<VertexId> = (0..part.num_parts())
            .into_par_iter()
            .flat_map_iter(|t| {
                part.range(t).filter(|&v| {
                    coreness[v as usize].load(Ordering::Relaxed) == u32::MAX
                        && deg[v as usize].load(Ordering::Relaxed) <= k
                })
            })
            .collect();

        while !frontier.is_empty() {
            rounds += 1;
            frontier.par_iter().for_each(|&v| {
                coreness[v as usize].store(k, Ordering::Relaxed);
            });
            remaining -= frontier.len();

            // Phase 1: local decrements. Frontier vertices grouped by owner;
            // every touched counter belongs to the executing thread's
            // partition, so a load/store pair suffices (counted as a plain
            // write, not an atomic).
            let frontier_ref = &frontier;
            let local_next: Vec<VertexId> = (0..part.num_parts())
                .into_par_iter()
                .fold(Vec::new, |mut my_f, t| {
                    for &v in frontier_ref.iter().filter(|&&v| part.owner(v) == t) {
                        for &u in pa.local_neighbors(v) {
                            probe.branch_cond();
                            if coreness[u as usize].load(Ordering::Relaxed) != u32::MAX {
                                continue;
                            }
                            probe.write(addr_of_index(&deg, u as usize), 4);
                            let prev = deg[u as usize].load(Ordering::Relaxed);
                            deg[u as usize].store(prev - 1, Ordering::Relaxed);
                            if prev == k + 1 {
                                my_f.push(u);
                            }
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            probe.barrier();

            // Phase 2: remote decrements with FAA.
            let remote_next: Vec<VertexId> = (0..part.num_parts())
                .into_par_iter()
                .fold(Vec::new, |mut my_f, t| {
                    for &v in frontier_ref.iter().filter(|&&v| part.owner(v) == t) {
                        for &u in pa.remote_neighbors(v) {
                            probe.branch_cond();
                            if coreness[u as usize].load(Ordering::Relaxed) != u32::MAX {
                                continue;
                            }
                            probe.atomic_rmw(addr_of_index(&deg, u as usize), 4);
                            let prev = deg[u as usize].fetch_sub(1, Ordering::AcqRel);
                            if prev == k + 1 {
                                my_f.push(u);
                            }
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });

            frontier = local_next;
            frontier.extend(remote_next);
            frontier.sort_unstable();
            frontier.dedup();
            frontier.retain(|&v| coreness[v as usize].load(Ordering::Relaxed) == u32::MAX);
        }
        k += 1;
    }

    let coreness: Vec<u32> = coreness.into_iter().map(AtomicU32::into_inner).collect();
    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    KCoreResult {
        coreness,
        degeneracy,
        rounds,
    }
}

/// Sequential Batagelj–Zaveršnik bucket peeling: `O(n + m)` reference used
/// by tests and as the Greedy-Switch endpoint for peeling-style schemes.
pub fn coreness_seq(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..max_deg + 1 {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as VertexId; n];
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            order[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i] as usize;
        core[v] = deg[v];
        for &u in g.neighbors(v as VertexId) {
            let u = u as usize;
            if deg[u] > deg[v] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket.
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bucket_start[du];
                let w = order[pw] as usize;
                if u != w {
                    order.swap(pu, pw);
                    pos.swap(u, w);
                }
                bucket_start[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    #[test]
    fn clique_coreness_is_n_minus_one() {
        let g = gen::complete(6);
        for dir in Direction::BOTH {
            let r = kcore(&g, dir);
            assert!(r.coreness.iter().all(|&c| c == 5), "{dir:?}");
            assert_eq!(r.degeneracy, 5);
        }
    }

    #[test]
    fn path_and_cycle_coreness() {
        for dir in Direction::BOTH {
            // A path is 1-degenerate, a cycle is 2-degenerate.
            assert_eq!(kcore(&gen::path(10), dir).degeneracy, 1, "{dir:?}");
            assert!(kcore(&gen::cycle(10), dir).coreness.iter().all(|&c| c == 2));
        }
    }

    #[test]
    fn clique_with_tail() {
        // 4-clique {0,1,2,3} with a pendant path 3-4-5: coreness 3,3,3,3,1,1.
        let g = GraphBuilder::undirected(6)
            .edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ])
            .build();
        for dir in Direction::BOTH {
            let r = kcore(&g, dir);
            assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1], "{dir:?}");
            assert_eq!(r.core_members(3), vec![0, 1, 2, 3]);
            assert_eq!(r.core_members(4), Vec::<VertexId>::new());
        }
    }

    #[test]
    fn matches_sequential_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::rmat(9, 6, seed);
            let expected = coreness_seq(&g);
            for dir in Direction::BOTH {
                let r = kcore(&g, dir);
                assert_eq!(r.coreness, expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn push_and_pull_agree_on_all_families() {
        for (name, g) in [
            ("er", gen::erdos_renyi(300, 900, 3)),
            ("ba", gen::barabasi_albert(300, 4, 3)),
            ("ws", gen::watts_strogatz(300, 3, 0.1, 3)),
            ("road", gen::road_grid(15, 20, 0.6, 3)),
        ] {
            let push = kcore(&g, Direction::Push);
            let pull = kcore(&g, Direction::Pull);
            assert_eq!(push.coreness, pull.coreness, "{name}");
            assert_eq!(push.coreness, coreness_seq(&g), "{name} vs seq");
        }
    }

    #[test]
    fn barabasi_albert_core_floor() {
        // Every BA vertex attaches with m edges, so the m-core is the whole
        // graph: coreness >= m everywhere.
        let r = kcore(&gen::barabasi_albert(200, 3, 1), Direction::Pull);
        assert!(r.coreness.iter().all(|&c| c >= 3));
    }

    #[test]
    fn push_uses_atomics_pull_does_not() {
        let g = gen::rmat(8, 5, 11);
        let probe = CountingProbe::new();
        kcore_probed(&g, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);
        assert_eq!(probe.counts().reads, 0);

        let probe = CountingProbe::new();
        kcore_probed(&g, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert!(probe.counts().reads > 0);
    }

    #[test]
    fn pull_reads_exceed_push_atomics() {
        // The §4.9 trade: pull re-reads the whole edge set per sub-round,
        // push decrements each arc at most once.
        let g = gen::erdos_renyi(400, 1600, 7);
        let push = CountingProbe::new();
        kcore_probed(&g, Direction::Push, &push);
        let pull = CountingProbe::new();
        kcore_probed(&g, Direction::Pull, &pull);
        assert!(pull.counts().reads > push.counts().atomics);
        // Push's total decrements are bounded by the arc count.
        assert!(push.counts().atomics <= g.num_arcs() as u64);
    }

    #[test]
    fn empty_and_edgeless() {
        let empty = GraphBuilder::undirected(0).build();
        let edgeless = GraphBuilder::undirected(5).build();
        for dir in Direction::BOTH {
            assert_eq!(kcore(&empty, dir).degeneracy, 0);
            let r = kcore(&edgeless, dir);
            assert_eq!(r.coreness, vec![0; 5]);
            assert_eq!(r.degeneracy, 0);
        }
    }

    #[test]
    fn pa_variant_matches_plain_push() {
        use pp_graph::{BlockPartition, PartitionAwareGraph};
        for seed in 0..3 {
            let g = gen::rmat(8, 5, seed);
            let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), 4));
            let expected = coreness_seq(&g);
            let r = kcore_push_pa(&g, &pa, &pp_telemetry::NullProbe);
            assert_eq!(r.coreness, expected, "seed {seed}");
        }
    }

    #[test]
    fn pa_reduces_atomics_to_cut_decrements() {
        use pp_graph::{BlockPartition, PartitionAwareGraph};
        let g = gen::erdos_renyi(400, 1600, 5);
        let part = BlockPartition::new(g.num_vertices(), 8);
        let cut = part.cut_arcs(&g) as u64;
        let pa = PartitionAwareGraph::new(&g, part);

        let plain = CountingProbe::new();
        kcore_probed(&g, Direction::Push, &plain);
        let pa_probe = CountingProbe::new();
        kcore_push_pa(&g, &pa, &pa_probe);

        assert!(
            pa_probe.counts().atomics <= cut,
            "atomics bounded by cut arcs"
        );
        assert!(
            pa_probe.counts().atomics < plain.counts().atomics,
            "PA must reduce atomics: {} vs {}",
            pa_probe.counts().atomics,
            plain.counts().atomics
        );
        // Total decrements are conserved: plain writes pick up the slack.
        assert_eq!(
            pa_probe.counts().atomics + pa_probe.counts().writes,
            plain.counts().atomics
        );
    }

    #[test]
    fn pa_bipartite_worst_case_keeps_all_atomics() {
        // §5: if each thread owns vertices from only one side of a bipartite
        // graph, every update crosses the cut and stays atomic.
        use pp_graph::{BlockPartition, PartitionAwareGraph};
        let g = gen::bipartite(64, 64, 400, 2);
        // Two partitions of 64: partition 0 = left side, partition 1 = right.
        let part = BlockPartition::new(g.num_vertices(), 2);
        let pa = PartitionAwareGraph::new(&g, part);
        let probe = CountingProbe::new();
        let r = kcore_push_pa(&g, &pa, &probe);
        assert_eq!(r.coreness, coreness_seq(&g));
        assert_eq!(probe.counts().writes, 0, "no local-phase decrements exist");
        assert!(probe.counts().atomics > 0);
    }
}
