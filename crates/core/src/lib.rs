//! Push- and pull-based graph algorithms (§3–§5 of the paper).
//!
//! Every algorithm the paper analyzes exists here in both directions:
//!
//! | Algorithm | Module | Push sync | Pull sync |
//! |-----------|--------|-----------|-----------|
//! | PageRank (§3.1, §4.1) | [`pagerank`] | float locks / CAS | none |
//! | Triangle counting (§3.2, §4.2) | [`triangles`] | integer FAA | none |
//! | BFS, generalized (§3.3, §4.3) | [`bfs`] | CAS | none |
//! | Δ-stepping SSSP (§3.4, §4.4) | [`sssp`] | CAS min | none |
//! | Betweenness centrality (§3.5, §4.5) | [`bc`] | float locks | none |
//! | Boman graph coloring (§3.6, §4.6) | [`coloring`] | CAS | CAS |
//! | Boruvka MST (§3.7, §4.7) | [`mst`] | packed CAS min | none |
//!
//! The tech-report extensions — further members of the two §3.8 algorithm
//! classes — follow the same contract:
//!
//! | Algorithm | Module | Push sync | Pull sync |
//! |-----------|--------|-----------|-----------|
//! | Bellman–Ford SSSP (the Δ→∞ end of §3.4) | [`bellman_ford`] | CAS min | none |
//! | k-core decomposition | [`kcore`] | integer FAA | none |
//! | Label-propagation communities | [`labelprop`] | ballot locks | none |
//! | Connected components | [`components`] | CAS min | none |
//! | Kruskal MST (eager relabel vs. union–find) | [`kruskal`] | — | — |
//! | Prim MST | [`prim`] | CAS min | none |
//!
//! [`validate`] provides Graph500-style result validators so tests check
//! specification conformance rather than one blessed output.
//!
//! The five acceleration strategies of §5 live in [`strategies`] and inside
//! the algorithm modules they specialize (partition-aware PageRank,
//! frontier-exploit/switching coloring). The linear-algebra formulation of
//! §7.1 (CSR SpMV = pull, CSC SpMV = push) is in [`algebra`].
//!
//! All kernels are generic over a [`pp_telemetry::Probe`], so the same code
//! path produces Table-1-style event counts (with `CountingProbe` /
//! `CacheSimProbe`) or runs at full speed (`NullProbe`, whose hooks compile
//! away).

pub mod algebra;
pub mod bc;
pub mod bellman_ford;
pub mod bfs;
pub mod coloring;
pub mod components;
pub mod directed;
pub mod gas;
pub mod kcore;
pub mod kruskal;
pub mod labelprop;
pub mod mst;
pub mod pagerank;
pub mod prim;
pub mod sssp;
pub mod strategies;
pub mod sync;
pub mod triangles;
pub mod validate;

/// Push or pull — the dichotomy of §3.8. Pushing means a thread may modify
/// vertices it does not own (`∃t,v: t ⤳ v ∧ t ≠ t[v]`); pulling means every
/// thread modifies only its own vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Updates flow from the processed vertex to its neighbors.
    Push,
    /// Updates are gathered from the neighbors into the processed vertex.
    Pull,
}

impl Direction {
    /// Both directions, for parameter sweeps.
    pub const BOTH: [Direction; 2] = [Direction::Push, Direction::Pull];

    /// Label used by the figure/table harness (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Direction::Push => "Pushing",
            Direction::Pull => "Pulling",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
