//! PageRank in push, pull, and partition-aware push form (§3.1, §4.1, §5).
//!
//! Per power iteration, `new_pr[v] = (1-f)/n + f·Σ_{u∈N(v)} pr[u]/d(u)`.
//! The push variant scatters `f·pr[v]/d(v)` into every neighbor's
//! accumulator — a float write conflict the paper resolves with locks (no
//! CPU float atomics, §4.1); we also provide the CAS-loop emulation. The
//! pull variant gathers from neighbors into the thread-owned cell: no
//! synchronization at all. Partition-aware push (§5, Algorithm 8) splits
//! every iteration into a local phase (plain writes) and a remote phase
//! (atomics), separated by a barrier.

use pp_graph::{BlockPartition, CsrGraph, PartitionAwareGraph};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::{AtomicF64, ShardedLocks, SyncSlice};
use crate::Direction;

/// PageRank parameters: `L` power iterations with damping `f` (§3.1).
#[derive(Clone, Copy, Debug)]
pub struct PrOptions {
    /// Number of power iterations `L` (a user parameter per §2.2).
    pub iters: usize,
    /// Damping factor `f`.
    pub damping: f64,
}

impl Default for PrOptions {
    fn default() -> Self {
        Self {
            iters: 20,
            damping: 0.85,
        }
    }
}

/// How the push variant resolves its float write conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushSync {
    /// Sharded locks — the paper's choice (§4.1: `O(Lm)` locks issued).
    Locks,
    /// CAS-loop emulated float atomic (counted as atomics, one per attempt).
    Cas,
}

/// Convenience entry point: runs the chosen direction with the default
/// probe and (for push) CAS-based conflict resolution — the variant the
/// paper's measured implementation uses (Table 1 reports PR push conflicts
/// as atomics; the lock-based alternative stays available via
/// [`pagerank_push`]).
pub fn pagerank(g: &CsrGraph, dir: Direction, opts: &PrOptions) -> Vec<f64> {
    match dir {
        Direction::Push => pagerank_push(g, opts, PushSync::Cas, &NullProbe),
        Direction::Pull => pagerank_pull(g, opts, &NullProbe),
    }
}

/// Sequential reference implementation (used by tests and as the
/// greedy-style baseline in strategy comparisons).
pub fn pagerank_seq(g: &CsrGraph, opts: &PrOptions) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    for _ in 0..opts.iters {
        new_pr.fill(base);
        for v in g.vertices() {
            let share = opts.damping * pr[v as usize] / g.degree(v).max(1) as f64;
            for &u in g.neighbors(v) {
                new_pr[u as usize] += share;
            }
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

/// Pull-based PageRank (Algorithm 1, grey "pulling" path): each thread
/// updates only vertices it owns — zero atomics, zero locks (§4.1), at the
/// price of gathering each neighbor's rank *and* degree (§7.3).
pub fn pagerank_pull<P: Probe>(g: &CsrGraph, opts: &PrOptions, probe: &P) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let offsets = g.offsets();

    for _ in 0..opts.iters {
        {
            let pr_ref = &pr;
            let out = SyncSlice::new(&mut new_pr);
            (0..part.num_parts()).into_par_iter().for_each(|t| {
                for v in part.range(t) {
                    let mut acc = 0.0;
                    for &u in g.neighbors(v) {
                        // R: read the neighbor's rank and degree (two cells;
                        // pulling must fetch both, §7.3).
                        probe.read(addr_of_index(pr_ref, u as usize), 8);
                        probe.read(addr_of_index(offsets, u as usize), 8);
                        probe.branch_cond();
                        let d = (offsets[u as usize + 1] - offsets[u as usize]) as f64;
                        acc += pr_ref[u as usize] / d;
                    }
                    // Owned write: t == t[v], no conflict possible (§3.8).
                    probe.write(out.addr(v as usize), 8);
                    // SAFETY: v lies in this task's partition range; ranges
                    // are disjoint across tasks.
                    unsafe { out.write(v as usize, base + opts.damping * acc) };
                }
            });
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

/// Push-based PageRank (Algorithm 1, "pushing" path): every edge scatter is
/// a float write conflict resolved by `sync` (§4.1).
pub fn pagerank_push<P: Probe>(
    g: &CsrGraph,
    opts: &PrOptions,
    sync: PushSync,
    probe: &P,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let locks = ShardedLocks::new(1024);

    for _ in 0..opts.iters {
        new_pr.fill(base);
        {
            let pr_ref = &pr;
            let atomics = AtomicF64::from_mut_slice(&mut new_pr);
            (0..part.num_parts()).into_par_iter().for_each(|t| {
                for v in part.range(t) {
                    let d = g.degree(v);
                    if d == 0 {
                        continue;
                    }
                    probe.read(addr_of_index(pr_ref, v as usize), 8);
                    let share = opts.damping * pr_ref[v as usize] / d as f64;
                    for &u in g.neighbors(v) {
                        probe.branch_cond();
                        // W(f): float write conflict on new_pr[u] (§4.1).
                        match sync {
                            PushSync::Locks => {
                                probe.lock();
                                probe.branch_uncond();
                                probe.write(addr_of_index_atomic(atomics, u as usize), 8);
                                locks.with(u as usize, || {
                                    let cell = &atomics[u as usize];
                                    cell.store(cell.load() + share);
                                });
                            }
                            PushSync::Cas => {
                                let attempts = atomics[u as usize].fetch_add(share);
                                probe.branch_uncond();
                                for _ in 0..attempts {
                                    probe.atomic_rmw(addr_of_index_atomic(atomics, u as usize), 8);
                                }
                            }
                        }
                    }
                }
            });
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

/// Partition-aware push PageRank (§5, Algorithm 8). Phase 1 updates local
/// neighbors with plain writes; a barrier; phase 2 updates remote neighbors
/// with synchronization. The atomic count drops from `2m` to the number of
/// cut arcs.
pub fn pagerank_push_pa<P: Probe>(
    g: &CsrGraph,
    pa: &PartitionAwareGraph,
    opts: &PrOptions,
    sync: PushSync,
    probe: &P,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    assert_eq!(pa.num_vertices(), n, "PA representation mismatch");
    let part = pa.partition();
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    let locks = ShardedLocks::new(1024);

    for _ in 0..opts.iters {
        new_pr.fill(base);
        {
            let pr_ref = &pr;
            // Phase 1: local updates. Each task writes only cells inside its
            // own partition (u is a *local* neighbor, so t[u] == t[v] == t) —
            // plain writes, no conflicts (Algorithm 8 lines 6-8).
            let out = SyncSlice::new(&mut new_pr);
            (0..part.num_parts()).into_par_iter().for_each(|t| {
                for v in part.range(t) {
                    let d = pa.degree(v);
                    if d == 0 {
                        continue;
                    }
                    probe.read(addr_of_index(pr_ref, v as usize), 8);
                    let share = opts.damping * pr_ref[v as usize] / d as f64;
                    for &u in pa.local_neighbors(v) {
                        probe.branch_cond();
                        probe.write(out.addr(u as usize), 8);
                        // SAFETY: u is owned by this task's partition.
                        unsafe { out.write(u as usize, out.read(u as usize) + share) };
                    }
                }
            });
            // The lightweight barrier of Algorithm 8 line 10 (implicit in the
            // join of the parallel phase; surfaced to the probe).
            probe.barrier();
            // Phase 2: remote updates with synchronization (lines 12-14).
            let atomics = AtomicF64::from_mut_slice(&mut new_pr);
            (0..part.num_parts()).into_par_iter().for_each(|t| {
                for v in part.range(t) {
                    let d = pa.degree(v);
                    if d == 0 {
                        continue;
                    }
                    probe.read(addr_of_index(pr_ref, v as usize), 8);
                    let share = opts.damping * pr_ref[v as usize] / d as f64;
                    for &u in pa.remote_neighbors(v) {
                        probe.branch_cond();
                        match sync {
                            PushSync::Locks => {
                                probe.lock();
                                probe.branch_uncond();
                                probe.write(addr_of_index_atomic(atomics, u as usize), 8);
                                locks.with(u as usize, || {
                                    let cell = &atomics[u as usize];
                                    cell.store(cell.load() + share);
                                });
                            }
                            PushSync::Cas => {
                                let attempts = atomics[u as usize].fetch_add(share);
                                probe.branch_uncond();
                                for _ in 0..attempts {
                                    probe.atomic_rmw(addr_of_index_atomic(atomics, u as usize), 8);
                                }
                            }
                        }
                    }
                }
            });
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

#[inline]
fn addr_of_index_atomic(slice: &[AtomicF64], i: usize) -> usize {
    slice.as_ptr() as usize + i * std::mem::size_of::<AtomicF64>()
}

/// L1 distance between two rank vectors (test/convergence helper).
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, PartitionAwareGraph};
    use pp_telemetry::CountingProbe;

    fn opts() -> PrOptions {
        PrOptions {
            iters: 15,
            damping: 0.85,
        }
    }

    #[test]
    fn push_and_pull_agree_with_sequential() {
        for g in [gen::cycle(50), gen::star(40), gen::rmat(8, 4, 3)] {
            let reference = pagerank_seq(&g, &opts());
            for dir in Direction::BOTH {
                let r = pagerank(&g, dir, &opts());
                assert!(
                    l1_distance(&reference, &r) < 1e-10,
                    "{dir:?} diverges from sequential"
                );
            }
        }
    }

    #[test]
    fn cas_variant_matches_lock_variant() {
        let g = gen::rmat(9, 6, 1);
        let a = pagerank_push(&g, &opts(), PushSync::Locks, &NullProbe);
        let b = pagerank_push(&g, &opts(), PushSync::Cas, &NullProbe);
        assert!(l1_distance(&a, &b) < 1e-10);
    }

    #[test]
    fn partition_aware_matches_plain_push() {
        let g = gen::rmat(8, 6, 2);
        let pa = PartitionAwareGraph::new(&g, BlockPartition::new(g.num_vertices(), 4));
        let plain = pagerank_push(&g, &opts(), PushSync::Locks, &NullProbe);
        let aware = pagerank_push_pa(&g, &pa, &opts(), PushSync::Locks, &NullProbe);
        assert!(l1_distance(&plain, &aware) < 1e-10);
    }

    #[test]
    fn cycle_has_uniform_ranks() {
        let g = gen::cycle(64);
        let r = pagerank(&g, Direction::Pull, &opts());
        for &x in &r {
            assert!((x - 1.0 / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_damping_gives_uniform_distribution() {
        let g = gen::star(10);
        let r = pagerank(
            &g,
            Direction::Push,
            &PrOptions {
                iters: 5,
                damping: 0.0,
            },
        );
        for &x in &r {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn star_center_dominates() {
        let g = gen::star(30);
        let r = pagerank(&g, Direction::Pull, &opts());
        assert!(r[0] > 5.0 * r[1]);
        // Rank mass conserved: no dangling vertices in a star.
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pull_issues_no_sync_push_issues_locks() {
        // §4.1 atomics/locks: pull requires none; push issues O(Lm) locks.
        let g = gen::rmat(7, 4, 9);
        let opts = PrOptions {
            iters: 3,
            damping: 0.85,
        };

        let probe = CountingProbe::new();
        pagerank_pull(&g, &opts, &probe);
        let pull = probe.counts();
        assert_eq!(pull.atomics, 0);
        assert_eq!(pull.locks, 0);
        assert!(pull.reads > 0);

        let probe = CountingProbe::new();
        pagerank_push(&g, &opts, PushSync::Locks, &probe);
        let push = probe.counts();
        assert_eq!(push.locks as usize, opts.iters * g.num_arcs());
        assert_eq!(push.atomics, 0);

        let probe = CountingProbe::new();
        pagerank_push(&g, &opts, PushSync::Cas, &probe);
        let push_cas = probe.counts();
        assert!(push_cas.atomics as usize >= opts.iters * g.num_arcs());
        assert_eq!(push_cas.locks, 0);
    }

    #[test]
    fn pa_reduces_sync_to_cut_arcs() {
        // §5: with PA the atomic count is bounded by the remote arcs.
        let g = gen::rmat(8, 4, 11);
        let part = BlockPartition::new(g.num_vertices(), 4);
        let pa = PartitionAwareGraph::new(&g, part);
        let opts = PrOptions {
            iters: 2,
            damping: 0.85,
        };
        let probe = CountingProbe::new();
        pagerank_push_pa(&g, &pa, &opts, PushSync::Locks, &probe);
        let c = probe.counts();
        assert_eq!(c.locks as usize, opts.iters * pa.num_remote_arcs());
        assert!(
            (c.locks as usize) < opts.iters * g.num_arcs(),
            "PA must lock less than plain push"
        );
        assert_eq!(c.barriers as usize, opts.iters);
    }

    #[test]
    fn empty_graph_yields_empty_ranks() {
        let g = pp_graph::GraphBuilder::undirected(0).build();
        assert!(pagerank(&g, Direction::Push, &opts()).is_empty());
        assert!(pagerank(&g, Direction::Pull, &opts()).is_empty());
    }

    #[test]
    fn pull_writes_exactly_n_per_iteration() {
        let g = gen::cycle(32);
        let opts = PrOptions {
            iters: 4,
            damping: 0.85,
        };
        let probe = CountingProbe::new();
        pagerank_pull(&g, &opts, &probe);
        assert_eq!(probe.counts().writes as usize, 4 * 32);
    }
}
