//! The acceleration strategies of §5, as a catalog and a reusable switching
//! controller.
//!
//! The strategies themselves are implemented inside the algorithms they
//! specialize — this module re-exports them and provides the shared
//! threshold machinery:
//!
//! | Strategy | Reduces | Lives in |
//! |----------|---------|----------|
//! | Partition-Awareness (PA) | atomics in pushing | [`crate::pagerank::pagerank_push_pa`] |
//! | Frontier-Exploit (FE) | reads/writes in both | [`crate::coloring::frontier_exploit`] |
//! | Generic-Switch (GS) | iteration count | [`crate::coloring::generic_switch`], [`crate::bfs::BfsMode::DirectionOptimizing`] |
//! | Greedy-Switch (GrS) | parallel tail overhead | [`crate::coloring::greedy_switch`] |
//! | Conflict-Removal (CR) | conflicts entirely | [`crate::coloring::conflict_removal`] |

pub use crate::bfs::BfsMode;
pub use crate::coloring::{conflict_removal, frontier_exploit, generic_switch, greedy_switch};
pub use crate::pagerank::pagerank_push_pa;

use crate::Direction;

/// A hysteresis-based direction switcher: the generic mechanism behind both
/// direction-optimizing BFS and Generic-Switch coloring (§5). The measured
/// quantity is algorithm-specific (frontier arc share, conflict share); the
/// controller turns it into a direction with two thresholds so the decision
/// does not flap.
#[derive(Clone, Copy, Debug)]
pub struct SwitchController {
    /// Switch Push→Pull when the load share rises above this.
    pub to_pull_above: f64,
    /// Switch Pull→Push when the load share falls below this.
    pub to_push_below: f64,
    current: Direction,
}

impl SwitchController {
    /// A controller starting in the given direction.
    pub fn new(start: Direction, to_pull_above: f64, to_push_below: f64) -> Self {
        assert!(
            to_push_below <= to_pull_above,
            "hysteresis window must be ordered"
        );
        Self {
            to_pull_above,
            to_push_below,
            current: start,
        }
    }

    /// The direction currently selected.
    pub fn current(&self) -> Direction {
        self.current
    }

    /// Feeds the latest load share (0..1) and returns the direction to use
    /// next.
    pub fn observe(&mut self, load_share: f64) -> Direction {
        self.current = match self.current {
            Direction::Push if load_share > self.to_pull_above => Direction::Pull,
            Direction::Pull if load_share < self.to_push_below => Direction::Push,
            d => d,
        };
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_with_hysteresis() {
        let mut c = SwitchController::new(Direction::Push, 0.6, 0.2);
        assert_eq!(c.observe(0.5), Direction::Push, "below high threshold");
        assert_eq!(c.observe(0.7), Direction::Pull, "crossed high threshold");
        assert_eq!(c.observe(0.4), Direction::Pull, "inside hysteresis band");
        assert_eq!(c.observe(0.1), Direction::Push, "below low threshold");
    }

    #[test]
    fn stable_at_boundaries() {
        let mut c = SwitchController::new(Direction::Push, 0.5, 0.5);
        assert_eq!(c.observe(0.5), Direction::Push, "equal is not above");
        assert_eq!(c.observe(0.500001), Direction::Pull);
    }

    #[test]
    #[should_panic(expected = "hysteresis window")]
    fn rejects_inverted_window() {
        SwitchController::new(Direction::Push, 0.2, 0.6);
    }
}
