//! Push- and pull-based Bellman–Ford: the baseline Δ-stepping interpolates
//! away from.
//!
//! §3.4 of the paper describes Δ-stepping as "combining the well-known
//! Dijkstra's and Bellman-Ford algorithms by trading work-optimality for
//! more parallelism". This module implements the Bellman–Ford end of that
//! spectrum (equivalently, Δ-stepping with a single bucket, Δ ≥ the graph's
//! weighted diameter) so the Δ sweep of Figure 2c has its limit point:
//!
//! * **push**: only vertices whose distance improved last round relax their
//!   out-edges, with a CAS-min on the neighbor's distance (§2.3) — the
//!   frontier-driven scheme, write conflicts on integers;
//! * **pull**: every unsettled vertex rescans all its neighbors and relaxes
//!   itself — no synchronization, `O(m)` reads per round, `O(D·m)` work.
//!
//! Both converge to the Dijkstra distances ([`crate::sssp::dijkstra`] is the
//! test oracle) in at most `n - 1` rounds on non-negative weights.

use std::sync::atomic::{AtomicU64, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sssp::INF;
use crate::sync::atomic_min_u64;
use crate::Direction;

/// Result of a Bellman–Ford run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BellmanFordResult {
    /// Shortest distance from the root ([`INF`] if unreachable).
    pub dist: Vec<u64>,
    /// Relaxation rounds until fixpoint.
    pub rounds: usize,
}

/// Bellman–Ford with the default probe.
pub fn bellman_ford(g: &CsrGraph, root: VertexId, dir: Direction) -> BellmanFordResult {
    bellman_ford_probed(g, root, dir, &NullProbe)
}

/// Instrumented push/pull Bellman–Ford over non-negative weights.
pub fn bellman_ford_probed<P: Probe>(
    g: &CsrGraph,
    root: VertexId,
    dir: Direction,
    probe: &P,
) -> BellmanFordResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut rounds = 0usize;

    match dir {
        Direction::Push => {
            let mut frontier: Vec<VertexId> = vec![root];
            while !frontier.is_empty() {
                rounds += 1;
                let next: Vec<VertexId> = frontier
                    .par_iter()
                    .fold(Vec::new, |mut my_f, &v| {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        for (u, w) in g.weighted_neighbors(v) {
                            probe.branch_cond();
                            let cand = dv + w as u64;
                            if cand < dist[u as usize].load(Ordering::Relaxed) {
                                // W(i): CAS-min on the shared distance.
                                probe.atomic_rmw(addr_of_index(&dist, u as usize), 8);
                                let (improved, _) = atomic_min_u64(&dist[u as usize], cand);
                                if improved {
                                    my_f.push(u);
                                }
                            }
                        }
                        my_f
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                frontier = next;
                frontier.sort_unstable();
                frontier.dedup();
            }
        }
        Direction::Pull => {
            loop {
                rounds += 1;
                let changed = (0..part.num_parts())
                    .into_par_iter()
                    .map(|t| {
                        let mut any = false;
                        for v in part.range(t) {
                            let mut best = dist[v as usize].load(Ordering::Relaxed);
                            for (u, w) in g.weighted_neighbors(v) {
                                // R: read conflicts only — the §4.4 pull
                                // pattern of scanning for relaxing neighbors.
                                probe.read(addr_of_index(&dist, u as usize), 8);
                                probe.branch_cond();
                                let du = dist[u as usize].load(Ordering::Relaxed);
                                if du != INF && du + (w as u64) < best {
                                    best = du + w as u64;
                                }
                            }
                            if best < dist[v as usize].load(Ordering::Relaxed) {
                                probe.write(addr_of_index(&dist, v as usize), 8);
                                // Own-cell store: `v` is owned by this thread.
                                dist[v as usize].store(best, Ordering::Relaxed);
                                any = true;
                            }
                        }
                        any
                    })
                    .reduce(|| false, |a, b| a || b);
                if !changed {
                    break;
                }
            }
        }
    }

    BellmanFordResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
    }
}

/// Direction-optimizing Bellman–Ford: the §5 Generic-Switch applied to
/// SSSP relaxation, mirroring what direction optimization does for BFS.
/// Rounds push while the improved frontier is small (its out-arcs below
/// `m / alpha`) and pull once the frontier saturates — per-round the same
/// crossover the PRAM `bfs_round`-style analysis (`pp-pram`) predicts.
///
/// Returns the distances plus the direction every round actually ran
/// (`true` = pull), so tests and benches can see the switch happen.
pub fn bellman_ford_switching(
    g: &CsrGraph,
    root: VertexId,
    alpha: usize,
) -> (BellmanFordResult, Vec<bool>) {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    assert!(alpha >= 1);
    let m = g.num_arcs().max(1);
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut rounds = 0usize;
    let mut dirs = Vec::new();

    // The frontier of vertices improved last round; in pull rounds it is
    // recomputed as "every vertex that improved".
    let mut frontier: Vec<VertexId> = vec![root];
    while !frontier.is_empty() {
        rounds += 1;
        let frontier_arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
        let pull_round = frontier_arcs > m / alpha;
        dirs.push(pull_round);
        let next: Vec<VertexId> = if pull_round {
            (0..part.num_parts())
                .into_par_iter()
                .fold(Vec::new, |mut my_f, t| {
                    for v in part.range(t) {
                        let mut best = dist[v as usize].load(Ordering::Relaxed);
                        for (u, w) in g.weighted_neighbors(v) {
                            let du = dist[u as usize].load(Ordering::Relaxed);
                            if du != INF && du + (w as u64) < best {
                                best = du + w as u64;
                            }
                        }
                        if best < dist[v as usize].load(Ordering::Relaxed) {
                            dist[v as usize].store(best, Ordering::Relaxed);
                            my_f.push(v);
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        } else {
            let mut next: Vec<VertexId> = frontier
                .par_iter()
                .fold(Vec::new, |mut my_f, &v| {
                    let dv = dist[v as usize].load(Ordering::Relaxed);
                    for (u, w) in g.weighted_neighbors(v) {
                        let cand = dv + w as u64;
                        if cand < dist[u as usize].load(Ordering::Relaxed)
                            && atomic_min_u64(&dist[u as usize], cand).0
                        {
                            my_f.push(u);
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            next.sort_unstable();
            next.dedup();
            next
        };
        frontier = next;
    }

    (
        BellmanFordResult {
            dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
            rounds,
        },
        dirs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::dijkstra;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    fn weighted(seed: u64) -> CsrGraph {
        gen::with_random_weights(&gen::erdos_renyi(250, 900, seed), 1, 20, seed)
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = weighted(seed);
            let expected = dijkstra(&g, 0);
            for dir in Direction::BOTH {
                let r = bellman_ford(&g, 0, dir);
                assert_eq!(r.dist, expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn handcomputed_distances() {
        // 0 -5- 1 -2- 2, 0 -9- 2: the two-hop path wins.
        let g = GraphBuilder::undirected(4)
            .weighted_edges([(0, 1, 5), (1, 2, 2), (0, 2, 9)])
            .build();
        for dir in Direction::BOTH {
            let r = bellman_ford(&g, 0, dir);
            assert_eq!(r.dist, vec![0, 5, 7, INF], "{dir:?}");
        }
    }

    #[test]
    fn push_rounds_bounded_by_hop_radius() {
        // On a unit-weight path the frontier advances one hop per round.
        let g = gen::with_random_weights(&gen::path(30), 1, 1, 0);
        let r = bellman_ford(&g, 0, Direction::Push);
        // 29 hops plus the final round that discovers the empty frontier.
        assert_eq!(r.rounds, 30);
        let r = bellman_ford(&g, 0, Direction::Pull);
        // Pull needs one extra no-change round to detect the fixpoint.
        assert!(r.rounds >= 2);
    }

    #[test]
    fn agrees_with_delta_stepping() {
        use crate::sssp::{sssp_delta, SsspOptions};
        let g = weighted(9);
        let bf = bellman_ford(&g, 3, Direction::Push);
        let ds = sssp_delta(&g, 3, Direction::Push, &SsspOptions::default());
        assert_eq!(bf.dist, ds.dist);
    }

    #[test]
    fn push_atomics_pull_reads() {
        let g = weighted(4);
        let probe = CountingProbe::new();
        bellman_ford_probed(&g, 0, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);
        assert_eq!(probe.counts().locks, 0);

        let probe = CountingProbe::new();
        bellman_ford_probed(&g, 0, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert!(probe.counts().reads as usize >= g.num_arcs());
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = GraphBuilder::undirected(5)
            .weighted_edges([(0, 1, 1), (2, 3, 1)])
            .build();
        for dir in Direction::BOTH {
            let r = bellman_ford(&g, 0, dir);
            assert_eq!(r.dist[1], 1, "{dir:?}");
            assert_eq!(r.dist[2], INF, "{dir:?}");
            assert_eq!(r.dist[4], INF, "{dir:?}");
        }
    }

    #[test]
    fn root_out_of_range_panics() {
        let g = gen::with_random_weights(&gen::path(3), 1, 5, 0);
        assert!(std::panic::catch_unwind(|| bellman_ford(&g, 9, Direction::Push)).is_err());
    }

    #[test]
    fn switching_matches_dijkstra() {
        for seed in 0..4 {
            let g = weighted(seed);
            let expected = dijkstra(&g, 0);
            for alpha in [1, 4, 15, 1000] {
                let (r, _) = bellman_ford_switching(&g, 0, alpha);
                assert_eq!(r.dist, expected, "alpha {alpha} seed {seed}");
            }
        }
    }

    #[test]
    fn switching_actually_switches_on_dense_graphs() {
        // On a dense graph the frontier saturates quickly: the run must
        // start pushing (singleton frontier) and flip to pulling.
        let g = gen::with_random_weights(&gen::erdos_renyi(300, 4000, 1), 1, 20, 1);
        let (_, dirs) = bellman_ford_switching(&g, 0, 15);
        assert!(
            !dirs[0],
            "first round must push from the singleton frontier"
        );
        assert!(
            dirs.iter().any(|&d| d),
            "a dense run must pull at least once"
        );
    }

    #[test]
    fn switching_extremes_degenerate_to_pure_directions() {
        let g = weighted(2);
        // alpha so large the threshold m/alpha is ~0: every round pulls
        // (after the singleton root round, whose zero..small arcs may push).
        let (_, dirs) = bellman_ford_switching(&g, 0, 100_000);
        assert!(dirs.iter().skip(1).all(|&d| d));
        // alpha = 1: threshold is m, nothing exceeds it, every round pushes.
        let (_, dirs) = bellman_ford_switching(&g, 0, 1);
        assert!(dirs.iter().all(|&d| !d));
    }
}
