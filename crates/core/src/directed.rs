//! Directed-graph push/pull variants (§4.8 "Directed Graphs").
//!
//! On directed graphs the dichotomy sharpens: *pushing iterates the
//! out-edges of a subset of vertices, pulling iterates the in-edges of all
//! (or most) vertices*, so cost bounds split into `d̂_out` (push) and
//! `d̂_in` (pull). A [`DirectedGraph`] pairs a directed CSR with its
//! transpose so both directions have the adjacency they need — exactly the
//! CSR/CSC pairing of §7.1.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::bfs::{NO_PARENT, UNVISITED};
use crate::sync::AtomicF64;
use crate::Direction;

/// A directed graph with both incidence views: `out` (CSR) for pushing,
/// `in` (CSC, the transpose) for pulling.
#[derive(Clone, Debug)]
pub struct DirectedGraph {
    out_g: CsrGraph,
    in_g: CsrGraph,
}

impl DirectedGraph {
    /// Builds both views from a directed CSR graph.
    ///
    /// # Panics
    /// Panics if `g` is undirected (use the plain algorithms there).
    pub fn new(g: CsrGraph) -> Self {
        assert!(g.is_directed(), "DirectedGraph requires a directed CSR");
        let in_g = g.transpose();
        Self { out_g: g, in_g }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out_g.num_vertices()
    }

    /// The out-edge (CSR) view.
    pub fn out_view(&self) -> &CsrGraph {
        &self.out_g
    }

    /// The in-edge (CSC) view.
    pub fn in_view(&self) -> &CsrGraph {
        &self.in_g
    }

    /// Out-degree of `v` (drives push costs, §4.8).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_g.degree(v)
    }

    /// In-degree of `v` (drives pull costs, §4.8).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_g.degree(v)
    }

    /// Maximum out-degree `d̂_out`.
    pub fn max_out_degree(&self) -> usize {
        self.out_g.max_degree()
    }

    /// Maximum in-degree `d̂_in`.
    pub fn max_in_degree(&self) -> usize {
        self.in_g.max_degree()
    }
}

/// Directed PageRank. Push scatters `f·pr[v]/d_out(v)` along out-edges
/// (CAS-emulated float atomics); pull gathers `pr[u]/d_out(u)` over
/// in-edges with no synchronization.
pub fn pagerank_directed<P: Probe>(
    dg: &DirectedGraph,
    dir: Direction,
    opts: &crate::pagerank::PrOptions,
    probe: &P,
) -> Vec<f64> {
    let n = dg.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    for _ in 0..opts.iters {
        new_pr.fill(base);
        {
            let pr_ref = &pr;
            match dir {
                Direction::Push => {
                    let cells = AtomicF64::from_mut_slice(&mut new_pr);
                    (0..part.num_parts()).into_par_iter().for_each(|t| {
                        for v in part.range(t) {
                            let d = dg.out_degree(v);
                            if d == 0 {
                                continue;
                            }
                            probe.read(addr_of_index(pr_ref, v as usize), 8);
                            let share = opts.damping * pr_ref[v as usize] / d as f64;
                            for &u in dg.out_view().neighbors(v) {
                                probe.branch_cond();
                                let attempts = cells[u as usize].fetch_add(share);
                                for _ in 0..attempts {
                                    probe.atomic_rmw(cells.as_ptr() as usize + 8 * u as usize, 8);
                                }
                            }
                        }
                    });
                }
                Direction::Pull => {
                    let out = crate::sync::SyncSlice::new(&mut new_pr);
                    (0..part.num_parts()).into_par_iter().for_each(|t| {
                        for v in part.range(t) {
                            let mut acc = 0.0;
                            for &u in dg.in_view().neighbors(v) {
                                probe.read(addr_of_index(pr_ref, u as usize), 8);
                                probe.branch_cond();
                                acc += pr_ref[u as usize] / dg.out_degree(u).max(1) as f64;
                            }
                            probe.write(out.addr(v as usize), 8);
                            // SAFETY: v is in this task's owned range.
                            unsafe {
                                out.write(v as usize, base + opts.damping * acc);
                            }
                        }
                    });
                }
            }
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

/// Directed BFS levels from `root`. Push follows out-edges of the frontier;
/// pull has every unvisited vertex scan its in-edges for a frontier member.
pub fn bfs_directed(dg: &DirectedGraph, root: VertexId, dir: Direction) -> Vec<u32> {
    bfs_directed_probed(dg, root, dir, &NullProbe)
}

/// Instrumented [`bfs_directed`].
pub fn bfs_directed_probed<P: Probe>(
    dg: &DirectedGraph,
    root: VertexId,
    dir: Direction,
    probe: &P,
) -> Vec<u32> {
    let n = dg.num_vertices();
    assert!((root as usize) < n);
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    level[root as usize].store(0, Ordering::Relaxed);
    parent[root as usize].store(root, Ordering::Relaxed);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    let mut frontier = vec![root];
    let mut cur = 0u32;
    while !frontier.is_empty() {
        let next: Vec<VertexId> = match dir {
            Direction::Push => frontier
                .par_iter()
                .fold(Vec::new, |mut my_f, &v| {
                    for &w in dg.out_view().neighbors(v) {
                        probe.branch_cond();
                        if parent[w as usize].load(Ordering::Relaxed) == NO_PARENT {
                            probe.atomic_rmw(addr_of_index(&parent, w as usize), 4);
                            if parent[w as usize]
                                .compare_exchange(NO_PARENT, v, Ordering::AcqRel, Ordering::Relaxed)
                                .is_ok()
                            {
                                level[w as usize].store(cur + 1, Ordering::Relaxed);
                                my_f.push(w);
                            }
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                }),
            Direction::Pull => (0..part.num_parts())
                .into_par_iter()
                .fold(Vec::new, |mut my_f, t| {
                    for v in part.range(t) {
                        probe.branch_cond();
                        if level[v as usize].load(Ordering::Relaxed) != UNVISITED {
                            continue;
                        }
                        for &u in dg.in_view().neighbors(v) {
                            probe.read(addr_of_index(&level, u as usize), 4);
                            probe.branch_cond();
                            if level[u as usize].load(Ordering::Relaxed) == cur {
                                parent[v as usize].store(u, Ordering::Relaxed);
                                level[v as usize].store(cur + 1, Ordering::Relaxed);
                                my_f.push(v);
                                break;
                            }
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                }),
        };
        frontier = next;
        cur += 1;
    }
    level.into_iter().map(AtomicU32::into_inner).collect()
}

/// Directed single-source shortest paths (Bellman–Ford style): the §4.8
/// degree split in its weighted form. Push relaxes *out*-edges of the
/// improved frontier with a CAS-min (bounds depend on `d̂_out`); pull has
/// every vertex rescan its *in*-edges each round (`d̂_in`). Weights must be
/// attached to the underlying graph.
pub fn sssp_directed(dg: &DirectedGraph, root: VertexId, dir: Direction) -> Vec<u64> {
    sssp_directed_probed(dg, root, dir, &NullProbe)
}

/// Instrumented [`sssp_directed`].
pub fn sssp_directed_probed<P: Probe>(
    dg: &DirectedGraph,
    root: VertexId,
    dir: Direction,
    probe: &P,
) -> Vec<u64> {
    use crate::sssp::INF;
    use crate::sync::atomic_min_u64;
    use std::sync::atomic::AtomicU64;

    let n = dg.num_vertices();
    assert!((root as usize) < n, "root out of range");
    assert!(
        dg.out_view().is_weighted(),
        "directed SSSP requires weights"
    );
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    match dir {
        Direction::Push => {
            let mut frontier = vec![root];
            while !frontier.is_empty() {
                let next: Vec<VertexId> = frontier
                    .par_iter()
                    .fold(Vec::new, |mut my_f, &v| {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        for (w, wt) in dg.out_view().weighted_neighbors(v) {
                            probe.branch_cond();
                            let cand = dv + wt as u64;
                            if cand < dist[w as usize].load(Ordering::Relaxed) {
                                probe.atomic_rmw(addr_of_index(&dist, w as usize), 8);
                                if atomic_min_u64(&dist[w as usize], cand).0 {
                                    my_f.push(w);
                                }
                            }
                        }
                        my_f
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                frontier = next;
                frontier.sort_unstable();
                frontier.dedup();
            }
        }
        Direction::Pull => loop {
            let changed = (0..part.num_parts())
                .into_par_iter()
                .map(|t| {
                    let mut any = false;
                    for v in part.range(t) {
                        let mut best = dist[v as usize].load(Ordering::Relaxed);
                        for (u, wt) in dg.in_view().weighted_neighbors(v) {
                            probe.read(addr_of_index(&dist, u as usize), 8);
                            probe.branch_cond();
                            let du = dist[u as usize].load(Ordering::Relaxed);
                            if du != INF && du + (wt as u64) < best {
                                best = du + wt as u64;
                            }
                        }
                        if best < dist[v as usize].load(Ordering::Relaxed) {
                            probe.write(addr_of_index(&dist, v as usize), 8);
                            dist[v as usize].store(best, Ordering::Relaxed);
                            any = true;
                        }
                    }
                    any
                })
                .reduce(|| false, |a, b| a || b);
            if !changed {
                break;
            }
        },
    }
    dist.into_iter().map(AtomicU64::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;
    use pp_telemetry::CountingProbe;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dag(n: usize, m: usize, seed: u64) -> DirectedGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::directed(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        DirectedGraph::new(b.build())
    }

    fn seq_pagerank_directed(dg: &DirectedGraph, iters: usize, f: f64) -> Vec<f64> {
        let n = dg.num_vertices();
        let base = (1.0 - f) / n as f64;
        let mut pr = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![base; n];
            for v in 0..n as u32 {
                let d = dg.out_degree(v);
                if d > 0 {
                    let share = f * pr[v as usize] / d as f64;
                    for &u in dg.out_view().neighbors(v) {
                        next[u as usize] += share;
                    }
                }
            }
            pr = next;
        }
        pr
    }

    fn seq_bfs_directed(dg: &DirectedGraph, root: u32) -> Vec<u32> {
        let n = dg.num_vertices();
        let mut level = vec![u32::MAX; n];
        level[root as usize] = 0;
        let mut q = std::collections::VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &w in dg.out_view().neighbors(v) {
                if level[w as usize] == u32::MAX {
                    level[w as usize] = level[v as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        level
    }

    #[test]
    fn degree_views_are_consistent() {
        let dg = random_dag(64, 256, 1);
        let out_sum: usize = (0..64u32).map(|v| dg.out_degree(v)).sum();
        let in_sum: usize = (0..64u32).map(|v| dg.in_degree(v)).sum();
        assert_eq!(out_sum, in_sum, "every arc has one head and one tail");
        assert_eq!(out_sum, dg.out_view().num_arcs());
    }

    #[test]
    fn directed_pagerank_push_equals_pull_equals_seq() {
        let dg = random_dag(100, 500, 3);
        let opts = crate::pagerank::PrOptions {
            iters: 10,
            damping: 0.85,
        };
        let reference = seq_pagerank_directed(&dg, 10, 0.85);
        for dir in Direction::BOTH {
            let r = pagerank_directed(&dg, dir, &opts, &NullProbe);
            let diff = crate::pagerank::l1_distance(&reference, &r);
            assert!(diff < 1e-10, "{dir:?}: {diff}");
        }
    }

    #[test]
    fn directed_bfs_push_equals_pull_equals_seq() {
        for seed in 0..3 {
            let dg = random_dag(80, 300, seed);
            let expected = seq_bfs_directed(&dg, 0);
            for dir in Direction::BOTH {
                assert_eq!(bfs_directed(&dg, 0, dir), expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn asymmetric_reachability() {
        // 0 → 1 → 2, plus 3 → 0: from 0 only {0,1,2} are reachable.
        let g = GraphBuilder::directed(4)
            .edges([(0, 1), (1, 2), (3, 0)])
            .build();
        let dg = DirectedGraph::new(g);
        for dir in Direction::BOTH {
            let levels = bfs_directed(&dg, 0, dir);
            assert_eq!(levels, vec![0, 1, 2, u32::MAX], "{dir:?}");
        }
    }

    #[test]
    fn pull_reads_in_edges_push_touches_out_edges() {
        // §4.8: the two directions traverse different incidence arrays.
        let dg = random_dag(60, 240, 9);
        let probe = CountingProbe::new();
        pagerank_directed(
            &dg,
            Direction::Pull,
            &crate::pagerank::PrOptions {
                iters: 1,
                damping: 0.85,
            },
            &probe,
        );
        assert_eq!(probe.counts().atomics, 0, "directed pull is sync-free");
        let probe = CountingProbe::new();
        pagerank_directed(
            &dg,
            Direction::Push,
            &crate::pagerank::PrOptions {
                iters: 1,
                damping: 0.85,
            },
            &probe,
        );
        assert!(probe.counts().atomics > 0, "directed push scatters");
    }

    #[test]
    #[should_panic(expected = "requires a directed")]
    fn rejects_undirected_graphs() {
        DirectedGraph::new(pp_graph::gen::path(3));
    }

    fn dijkstra_directed(dg: &DirectedGraph, root: VertexId) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = dg.num_vertices();
        let mut dist = vec![u64::MAX; n];
        dist[root as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, root)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (w, wt) in dg.out_view().weighted_neighbors(v) {
                let cand = d + wt as u64;
                if cand < dist[w as usize] {
                    dist[w as usize] = cand;
                    heap.push(Reverse((cand, w)));
                }
            }
        }
        dist
    }

    fn random_weighted_digraph(n: usize, m: usize, seed: u64) -> DirectedGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::directed(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_weighted_edge(u, v, rng.gen_range(1..50));
            }
        }
        DirectedGraph::new(b.build())
    }

    #[test]
    fn directed_sssp_matches_dijkstra() {
        for seed in 0..4 {
            let dg = random_weighted_digraph(150, 600, seed);
            let expected = dijkstra_directed(&dg, 0);
            for dir in Direction::BOTH {
                assert_eq!(sssp_directed(&dg, 0, dir), expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn directed_sssp_respects_edge_direction() {
        // 0 -> 1 -> 2 with no way back: distances from 2 are all INF.
        let mut b = GraphBuilder::directed(3);
        b.add_weighted_edge(0, 1, 4);
        b.add_weighted_edge(1, 2, 3);
        let dg = DirectedGraph::new(b.build());
        for dir in Direction::BOTH {
            assert_eq!(sssp_directed(&dg, 0, dir), vec![0, 4, 7], "{dir:?}");
            assert_eq!(
                sssp_directed(&dg, 2, dir),
                vec![u64::MAX, u64::MAX, 0],
                "{dir:?}"
            );
        }
    }

    #[test]
    fn directed_sssp_sync_profile() {
        let dg = random_weighted_digraph(120, 500, 7);
        let probe = CountingProbe::new();
        sssp_directed_probed(&dg, 0, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);
        let probe = CountingProbe::new();
        sssp_directed_probed(&dg, 0, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert!(probe.counts().reads > 0);
    }
}
