//! Connected components by label propagation, in push and pull form.
//!
//! Boruvka's supervertex machinery (§3.7) is connectivity in disguise; this
//! module isolates the connectivity part as the simplest possible member of
//! the paper's "iterative schemes" class (§3.8): every vertex carries a
//! label (initially its id), and labels propagate until each component
//! agrees on its minimum id.
//!
//! * **push**: vertices whose label changed scatter it to neighbors with a
//!   CAS-min — frontier-driven, `O(m)`-ish total work, atomics;
//! * **pull**: every vertex re-reads all neighbors and takes the minimum —
//!   no synchronization, full rescans per round (`O(D·m)` work).
//!
//! The same §4.9 trade: pushing saves work, pulling saves synchronization.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::Direction;

/// Result of a components run.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Per-vertex component label = minimum vertex id in the component.
    pub labels: Vec<VertexId>,
    /// Propagation rounds until fixpoint.
    pub rounds: usize,
}

impl CcResult {
    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| v as VertexId == l)
            .count()
    }
}

/// Connected components with the default probe.
pub fn connected_components(g: &CsrGraph, dir: Direction) -> CcResult {
    connected_components_probed(g, dir, &NullProbe)
}

/// Instrumented label-propagation components.
pub fn connected_components_probed<P: Probe>(g: &CsrGraph, dir: Direction, probe: &P) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut rounds = 0;

    match dir {
        Direction::Push => {
            // Frontier of vertices whose label just changed.
            let mut frontier: Vec<VertexId> = (0..n as VertexId).collect();
            while !frontier.is_empty() {
                rounds += 1;
                let next: Vec<VertexId> = frontier
                    .par_iter()
                    .fold(Vec::new, |mut my_f, &v| {
                        let lv = labels[v as usize].load(Ordering::Relaxed);
                        for &u in g.neighbors(v) {
                            probe.branch_cond();
                            // W(i): scatter the smaller label with CAS-min.
                            let mut cur = labels[u as usize].load(Ordering::Relaxed);
                            while lv < cur {
                                probe.atomic_rmw(addr_of_index(&labels, u as usize), 4);
                                match labels[u as usize].compare_exchange_weak(
                                    cur,
                                    lv,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => {
                                        my_f.push(u);
                                        break;
                                    }
                                    Err(actual) => cur = actual,
                                }
                            }
                        }
                        my_f
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                frontier = next;
                frontier.sort_unstable();
                frontier.dedup();
            }
        }
        Direction::Pull => {
            loop {
                rounds += 1;
                let changed: bool = (0..part.num_parts())
                    .into_par_iter()
                    .map(|t| {
                        let mut any = false;
                        for v in part.range(t) {
                            let mut best = labels[v as usize].load(Ordering::Relaxed);
                            for &u in g.neighbors(v) {
                                // R: read conflicts only.
                                probe.read(addr_of_index(&labels, u as usize), 4);
                                probe.branch_cond();
                                best = best.min(labels[u as usize].load(Ordering::Relaxed));
                            }
                            if best < labels[v as usize].load(Ordering::Relaxed) {
                                probe.write(addr_of_index(&labels, v as usize), 4);
                                // Own-cell write.
                                labels[v as usize].store(best, Ordering::Relaxed);
                                any = true;
                            }
                        }
                        any
                    })
                    .reduce(|| false, |a, b| a || b);
                if !changed {
                    break;
                }
            }
        }
    }

    // Pointer-style flattening: labels may still point at non-minimum ids
    // transitively on pathological schedules; chase to the fixpoint.
    let mut flat: Vec<VertexId> = labels.into_iter().map(AtomicU32::into_inner).collect();
    for v in 0..n {
        let mut l = flat[v];
        while flat[l as usize] != l {
            l = flat[l as usize];
        }
        flat[v] = l;
    }

    CcResult {
        labels: flat,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, stats, GraphBuilder};
    use pp_telemetry::CountingProbe;

    fn assert_matches_reference(g: &CsrGraph, r: &CcResult, ctx: &str) {
        assert_eq!(r.num_components(), stats::num_components(g), "{ctx}: count");
        // Same component ⇔ same label.
        for (u, v, _) in g.edges() {
            assert_eq!(
                r.labels[u as usize], r.labels[v as usize],
                "{ctx}: edge endpoints must share labels"
            );
        }
        // Labels are the component minima: each label is its own label.
        for v in 0..g.num_vertices() {
            let l = r.labels[v] as usize;
            assert_eq!(r.labels[l], r.labels[v], "{ctx}: non-canonical label");
            assert!(r.labels[v] as usize <= v, "{ctx}: label above id");
        }
    }

    #[test]
    fn components_on_standard_families() {
        for (name, g) in [
            ("path", gen::path(40)),
            ("two-cliques", {
                let mut b = GraphBuilder::undirected(20);
                for u in 0..10u32 {
                    for v in (u + 1)..10 {
                        b.add_edge(u, v);
                        b.add_edge(u + 10, v + 10);
                    }
                }
                b.build()
            }),
            ("rmat", gen::rmat(8, 4, 5)),
            ("isolated", GraphBuilder::undirected(7).edge(0, 1).build()),
        ] {
            for dir in Direction::BOTH {
                let r = connected_components(&g, dir);
                assert_matches_reference(&g, &r, &format!("{name} {dir:?}"));
            }
        }
    }

    #[test]
    fn push_and_pull_agree_exactly() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(200, 150, seed); // sparse ⇒ many components
            let push = connected_components(&g, Direction::Push);
            let pull = connected_components(&g, Direction::Pull);
            assert_eq!(push.labels, pull.labels, "seed {seed}");
        }
    }

    #[test]
    fn label_is_component_minimum() {
        let g = gen::cycle(12);
        let r = connected_components(&g, Direction::Push);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert_eq!(r.num_components(), 1);
    }

    #[test]
    fn pull_rounds_track_propagation_distance() {
        // In-order scans propagate labels Gauss–Seidel-fast *along* the scan
        // direction, so place the minimum id at the scan-order end: path
        // 1-2-…-63-0. The 0-label must then crawl backwards one vertex per
        // round regardless of partition count.
        let mut b = GraphBuilder::undirected(64);
        for i in 1..63u32 {
            b.add_edge(i, i + 1);
        }
        b.add_edge(63, 0);
        let g = b.build();
        let r = connected_components(&g, Direction::Pull);
        assert!(
            r.rounds >= 16,
            "rounds {} too small for a 62-hop crawl",
            r.rounds
        );
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn push_atomics_pull_none() {
        let g = gen::rmat(7, 4, 2);
        let probe = CountingProbe::new();
        connected_components_probed(&g, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);
        let probe = CountingProbe::new();
        connected_components_probed(&g, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert!(probe.counts().reads > 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build();
        for dir in Direction::BOTH {
            let r = connected_components(&g, dir);
            assert_eq!(r.num_components(), 0);
        }
    }
}
