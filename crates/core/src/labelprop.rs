//! Community detection by label propagation, in push and pull form.
//!
//! Unlike the connected-components scheme of [`crate::components`] (which
//! propagates the *minimum* label), community label propagation adopts the
//! *most frequent* label among a vertex's neighbors [Raghavan et al. 2007].
//! The update is synchronous (double-buffered), so both directions compute
//! the identical label sequence and differ only in how the neighbor-label
//! multiset reaches the deciding thread:
//!
//! * **push**: each vertex *scatters* its label as a vote into a shared
//!   per-vertex ballot. Ballots are mutable shared state, so every deposit
//!   takes a lock — the push side of the §3.8 dichotomy with the same
//!   lock-heavy signature as push-PR (§4.1);
//! * **pull**: each vertex *gathers* the labels of its neighbors into a
//!   private scratch buffer and counts them locally — no synchronization,
//!   more reads (§4.9).
//!
//! Ties are broken toward the smallest label, which makes the iteration
//! deterministic; tests exploit that to require exact push == pull
//! agreement per iteration.

use parking_lot::Mutex;
use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::Direction;

/// Result of a label-propagation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelPropResult {
    /// Final per-vertex community label.
    pub labels: Vec<u32>,
    /// Iterations executed (≤ the caller's cap).
    pub iterations: usize,
    /// Whether a fixpoint was reached before the cap (synchronous LP can
    /// oscillate on bipartite-ish structures, so the cap is load-bearing).
    pub converged: bool,
}

impl LabelPropResult {
    /// Number of distinct communities.
    pub fn num_communities(&self) -> usize {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }
}

/// Label propagation with the default probe.
pub fn label_propagation(g: &CsrGraph, dir: Direction, max_iters: usize) -> LabelPropResult {
    label_propagation_probed(g, dir, max_iters, &NullProbe)
}

/// Picks the winning label from a *sorted* vote slice: most frequent,
/// smallest on ties. Returns `None` for an empty ballot (isolated vertex).
fn tally(sorted_votes: &[u32]) -> Option<u32> {
    if sorted_votes.is_empty() {
        return None;
    }
    let (mut best, mut best_count) = (sorted_votes[0], 0usize);
    let mut i = 0;
    while i < sorted_votes.len() {
        let label = sorted_votes[i];
        let mut j = i;
        while j < sorted_votes.len() && sorted_votes[j] == label {
            j += 1;
        }
        // Strict `>` keeps the first (smallest) label on equal counts.
        if j - i > best_count {
            best = label;
            best_count = j - i;
        }
        i = j;
    }
    Some(best)
}

/// Instrumented synchronous label propagation.
pub fn label_propagation_probed<P: Probe>(
    g: &CsrGraph,
    dir: Direction,
    max_iters: usize,
    probe: &P,
) -> LabelPropResult {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut new_labels = labels.clone();
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut iterations = 0;
    let mut converged = false;

    // Push-side ballots: one vote box per vertex, refilled every iteration.
    // parking_lot mutexes are one byte, so this costs n bytes of locks plus
    // the vote storage (bounded by the arc count across all boxes).
    let ballots: Vec<Mutex<Vec<u32>>> = if dir == Direction::Push {
        (0..n).map(|_| Mutex::new(Vec::new())).collect()
    } else {
        Vec::new()
    };

    while iterations < max_iters {
        iterations += 1;
        match dir {
            Direction::Push => {
                // Scatter: every vertex deposits its label with each
                // neighbor. W: lock-guarded shared writes.
                (0..part.num_parts()).into_par_iter().for_each(|t| {
                    for v in part.range(t) {
                        let lv = labels[v as usize];
                        for &u in g.neighbors(v) {
                            probe.lock();
                            probe.write(addr_of_index(&ballots, u as usize), 4);
                            ballots[u as usize].lock().push(lv);
                        }
                    }
                });
                probe.barrier();
                // Apply: owners tally their own ballots; no shared writes.
                let next: Vec<(VertexId, u32)> = (0..part.num_parts())
                    .into_par_iter()
                    .fold(Vec::new, |mut acc, t| {
                        for v in part.range(t) {
                            let mut votes = ballots[v as usize].lock();
                            votes.sort_unstable();
                            if let Some(l) = tally(&votes) {
                                acc.push((v, l));
                            }
                            votes.clear();
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                for (v, l) in next {
                    new_labels[v as usize] = l;
                }
            }
            Direction::Pull => {
                // Gather into a per-thread workhorse buffer; R-only
                // conflicts on the shared label array.
                let next: Vec<(VertexId, u32)> = (0..part.num_parts())
                    .into_par_iter()
                    .fold(Vec::new, |mut acc, t| {
                        let mut votes: Vec<u32> = Vec::new();
                        for v in part.range(t) {
                            votes.clear();
                            for &u in g.neighbors(v) {
                                probe.read(addr_of_index(&labels, u as usize), 4);
                                votes.push(labels[u as usize]);
                            }
                            votes.sort_unstable();
                            if let Some(l) = tally(&votes) {
                                acc.push((v, l));
                            }
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                for (v, l) in next {
                    new_labels[v as usize] = l;
                }
            }
        }

        if new_labels == labels {
            converged = true;
            break;
        }
        labels.copy_from_slice(&new_labels);
    }

    LabelPropResult {
        labels,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    #[test]
    fn tally_prefers_frequency_then_smallest() {
        assert_eq!(tally(&[]), None);
        assert_eq!(tally(&[5]), Some(5));
        assert_eq!(tally(&[1, 2, 2, 3]), Some(2));
        assert_eq!(tally(&[1, 1, 2, 2]), Some(1));
        assert_eq!(tally(&[0, 3, 3, 3, 9, 9]), Some(3));
    }

    #[test]
    fn two_cliques_with_bridge_form_two_communities() {
        // Two 6-cliques joined by one edge: LP must separate them.
        let mut b = GraphBuilder::undirected(12);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
                b.add_edge(u + 6, v + 6);
            }
        }
        b.add_edge(0, 6);
        let g = b.build();
        for dir in Direction::BOTH {
            let r = label_propagation(&g, dir, 50);
            assert!(r.converged, "{dir:?}");
            // Each clique agrees internally.
            let left = r.labels[0];
            let right = r.labels[6];
            assert!(r.labels[..6].iter().all(|&l| l == left), "{dir:?}");
            assert!(r.labels[6..].iter().all(|&l| l == right), "{dir:?}");
            assert_ne!(left, right, "{dir:?}: bridge must not merge cliques");
        }
    }

    #[test]
    fn push_and_pull_agree_exactly() {
        for seed in 0..4 {
            let g = gen::community(4, 30, 150, 20, seed);
            let push = label_propagation(&g, Direction::Push, 30);
            let pull = label_propagation(&g, Direction::Pull, 30);
            assert_eq!(push.labels, pull.labels, "seed {seed}");
            assert_eq!(push.iterations, pull.iterations, "seed {seed}");
            assert_eq!(push.converged, pull.converged, "seed {seed}");
        }
    }

    #[test]
    fn planted_communities_are_recovered() {
        // Strong planted partition: 3 communities, dense inside, few
        // cross edges.
        let g = gen::community(3, 40, 400, 10, 42);
        let r = label_propagation(&g, Direction::Pull, 50);
        // Most pairs inside a block share a label; communities should be few
        // compared to n.
        assert!(r.num_communities() <= 12, "got {}", r.num_communities());
        let same = |a: usize, b: usize| r.labels[a] == r.labels[b];
        let intra_agree = (0..40).filter(|&v| same(v, 0)).count();
        assert!(intra_agree > 30, "community 0 fragmented: {intra_agree}");
    }

    #[test]
    fn iteration_cap_halts_oscillation() {
        // A star oscillates under synchronous LP: the center adopts the
        // leaves' label while the leaves adopt the center's.
        let g = gen::star(8);
        for dir in Direction::BOTH {
            let r = label_propagation(&g, dir, 10);
            assert_eq!(r.iterations, 10, "{dir:?}");
            assert!(!r.converged, "{dir:?}");
        }
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let g = GraphBuilder::undirected(4).edge(0, 1).build();
        for dir in Direction::BOTH {
            let r = label_propagation(&g, dir, 20);
            assert_eq!(r.labels[2], 2, "{dir:?}");
            assert_eq!(r.labels[3], 3, "{dir:?}");
        }
    }

    #[test]
    fn push_locks_pull_reads() {
        let g = gen::community(2, 20, 60, 5, 1);
        let probe = CountingProbe::new();
        label_propagation_probed(&g, Direction::Push, 5, &probe);
        assert!(probe.counts().locks > 0);

        let probe = CountingProbe::new();
        label_propagation_probed(&g, Direction::Pull, 5, &probe);
        assert_eq!(probe.counts().locks, 0);
        assert!(probe.counts().reads > 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build();
        for dir in Direction::BOTH {
            let r = label_propagation(&g, dir, 5);
            assert!(r.labels.is_empty());
            assert!(r.converged);
        }
    }
}
