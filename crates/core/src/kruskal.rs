//! Kruskal's MST with the tech-report push/pull dichotomy, plus a reusable
//! disjoint-set substrate.
//!
//! §3.7 of the paper notes that "more details on pushing and pulling in Prim
//! and Kruskal are still provided in the technical report". The dichotomy in
//! Kruskal sits in how component identity is maintained while edges are
//! consumed in weight order:
//!
//! * **push** ([`Direction::Push`]): *eager relabeling*. Every vertex always
//!   knows its component id; accepting an edge *pushes* the winning label
//!   onto every member of the smaller component (smaller-into-larger keeps
//!   the total relabel work at `O(n log n)`). Queries are a single read;
//!   updates write cells owned by other "threads" — the defining push
//!   property of §3.8.
//! * **pull** ([`Direction::Pull`]): *lazy union–find*. Components are
//!   represented by parent pointers; a query *pulls* the root by chasing
//!   (and path-halving) pointers, touching only state along its own query
//!   path. Updates are a single root write.
//!
//! Edge sorting is parallel (rayon); the union phase is inherently
//! sequential in edge order, which is exactly why the paper centers Boruvka
//! ([`crate::mst`]) — Kruskal here is the work-optimal baseline the parallel
//! algorithm is validated against and raced in the `mst` bench.

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::Direction;

/// Lazy disjoint sets: parent pointers with path halving + union by size.
/// The "pull" representation — queries chase pointers to the root.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Root of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if they were already
    /// together.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Union by size, tie toward the smaller root id for determinism.
        let (big, small) = if (self.size[ra as usize], rb) > (self.size[rb as usize], ra) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Eager component labels: every vertex stores its component id directly and
/// unions relabel the smaller side. The "push" representation.
#[derive(Clone, Debug)]
struct EagerLabels {
    label: Vec<u32>,
    /// Members of each *live* component, indexed by label.
    members: Vec<Vec<u32>>,
}

impl EagerLabels {
    fn new(n: usize) -> Self {
        Self {
            label: (0..n as u32).collect(),
            members: (0..n as u32).map(|v| vec![v]).collect(),
        }
    }

    #[inline]
    fn label_of(&self, x: u32) -> u32 {
        self.label[x as usize]
    }

    /// Pushes the label of the larger component onto the smaller one.
    /// Returns `false` if already joined.
    fn union<P: Probe>(&mut self, a: u32, b: u32, probe: &P) -> bool {
        let (la, lb) = (self.label_of(a), self.label_of(b));
        if la == lb {
            return false;
        }
        let (big, small) =
            if (self.members[la as usize].len(), lb) > (self.members[lb as usize].len(), la) {
                (la, lb)
            } else {
                (lb, la)
            };
        let moved = std::mem::take(&mut self.members[small as usize]);
        for &v in &moved {
            // W: scatter the winning label onto vertices of the losing side.
            probe.write(addr_of_index(&self.label, v as usize), 4);
            self.label[v as usize] = big;
        }
        self.members[big as usize].extend(moved);
        true
    }
}

/// Result of a Kruskal run.
#[derive(Clone, Debug)]
pub struct KruskalResult {
    /// Selected forest edges in acceptance (weight) order.
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Sum of selected edge weights.
    pub total_weight: u64,
}

/// Kruskal MST/MSF with the default probe.
pub fn kruskal(g: &CsrGraph, dir: Direction) -> KruskalResult {
    kruskal_probed(g, dir, &NullProbe)
}

/// Instrumented Kruskal: parallel sort, then weight-order scan with eager
/// (push) or lazy (pull) component maintenance.
pub fn kruskal_probed<P: Probe>(g: &CsrGraph, dir: Direction, probe: &P) -> KruskalResult {
    assert!(g.is_weighted(), "Kruskal requires edge weights");
    let n = g.num_vertices();
    let mut edges: Vec<(Weight, VertexId, VertexId)> =
        g.edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.par_sort_unstable();

    let mut chosen = Vec::new();
    let mut total = 0u64;
    match dir {
        Direction::Push => {
            let mut labels = EagerLabels::new(n);
            for (w, u, v) in edges {
                probe.read(addr_of_index(&labels.label, u as usize), 4);
                probe.read(addr_of_index(&labels.label, v as usize), 4);
                probe.branch_cond();
                if labels.union(u, v, probe) {
                    chosen.push((u, v, w));
                    total += w as u64;
                }
            }
        }
        Direction::Pull => {
            let mut dsu = DisjointSets::new(n);
            for (w, u, v) in edges {
                // Pointer chases are the pull reads; the probe charges the
                // actual path length.
                let mut x = u;
                while dsu.parent[x as usize] != x {
                    probe.read(addr_of_index(&dsu.parent, x as usize), 4);
                    x = dsu.parent[x as usize];
                }
                let mut y = v;
                while dsu.parent[y as usize] != y {
                    probe.read(addr_of_index(&dsu.parent, y as usize), 4);
                    y = dsu.parent[y as usize];
                }
                probe.branch_cond();
                if dsu.union(u, v) {
                    chosen.push((u, v, w));
                    total += w as u64;
                }
            }
        }
    }

    KruskalResult {
        edges: chosen,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{boruvka, kruskal_seq};
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    fn weighted(seed: u64) -> CsrGraph {
        gen::with_random_weights(&gen::rmat(7, 5, seed), 1, 1000, seed ^ 0xaa)
    }

    #[test]
    fn dsu_basics() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert!(d.connected(0, 2));
        assert!(!d.connected(0, 3));
        assert_eq!(d.num_sets(), 3);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn dsu_find_is_idempotent_and_canonical() {
        let mut d = DisjointSets::new(8);
        for i in 0..7 {
            d.union(i, i + 1);
        }
        let root = d.find(0);
        for i in 0..8 {
            assert_eq!(d.find(i), root);
        }
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn matches_reference_weight() {
        for seed in 0..5 {
            let g = weighted(seed);
            let (_, expected) = kruskal_seq(&g);
            for dir in Direction::BOTH {
                let r = kruskal(&g, dir);
                assert_eq!(r.total_weight, expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn push_and_pull_choose_identical_forests() {
        // Both scan the same sorted order and accept iff components differ,
        // so the chosen edge *sequence* matches exactly.
        for seed in 0..3 {
            let g = weighted(seed);
            let push = kruskal(&g, Direction::Push);
            let pull = kruskal(&g, Direction::Pull);
            assert_eq!(push.edges, pull.edges, "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_boruvka_total() {
        let g = weighted(11);
        let b = boruvka(&g, Direction::Pull);
        let k = kruskal(&g, Direction::Pull);
        assert_eq!(k.total_weight, b.total_weight);
        assert_eq!(k.edges.len(), b.edges.len());
    }

    #[test]
    fn forest_spans_components() {
        let g = gen::with_random_weights(&gen::erdos_renyi(100, 120, 3), 1, 9, 3);
        let r = kruskal(&g, Direction::Pull);
        let comps = pp_graph::stats::num_components(&g);
        assert_eq!(r.edges.len(), g.num_vertices() - comps);
    }

    #[test]
    fn handbuilt_mst() {
        // Square with diagonal: 0-1:1, 1-2:2, 2-3:3, 3-0:4, 0-2:5.
        let g = GraphBuilder::undirected(4)
            .weighted_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)])
            .build();
        for dir in Direction::BOTH {
            let r = kruskal(&g, dir);
            assert_eq!(r.total_weight, 6, "{dir:?}");
            assert_eq!(r.edges, vec![(0, 1, 1), (1, 2, 2), (2, 3, 3)], "{dir:?}");
        }
    }

    #[test]
    fn push_writes_scale_with_relabels_pull_reads_with_chases() {
        let g = weighted(7);
        let push = CountingProbe::new();
        kruskal_probed(&g, Direction::Push, &push);
        let pull = CountingProbe::new();
        kruskal_probed(&g, Direction::Pull, &pull);
        // Eager relabeling writes per moved vertex; lazy union writes almost
        // nothing but pays pointer-chase reads.
        assert!(push.counts().writes > 0);
        assert!(pull.counts().reads > 0);
        assert!(pull.counts().writes == 0);
        // Smaller-into-larger bounds push writes by n log n.
        let n = g.num_vertices() as u64;
        let bound = n * (64 - n.leading_zeros() as u64);
        assert!(
            push.counts().writes <= bound,
            "{} > {bound}",
            push.counts().writes
        );
    }

    #[test]
    fn empty_and_trivial() {
        let g = GraphBuilder::undirected(3)
            .weighted_edges([] as [(u32, u32, u32); 0])
            .build();
        for dir in Direction::BOTH {
            let r = kruskal(&g, dir);
            assert!(r.edges.is_empty());
            assert_eq!(r.total_weight, 0);
        }
    }
}
