//! The Gather-Apply-Scatter abstraction (§7.4) and its push/pull
//! realizations.
//!
//! A [`GasProgram`] supplies the three PowerGraph-style functions: *gather*
//! data from a neighbor, *apply* the combined gather to the vertex state,
//! and (implicitly) *scatter* activation to neighbors when the state
//! changed. The engine runs it in either direction:
//!
//! * **pull**: every scheduled vertex gathers over its own neighborhood and
//!   applies locally — no synchronization;
//! * **push**: every scheduled vertex scatters its state into neighbors'
//!   gather accumulators under a sharded lock, and targets apply afterward.
//!
//! §7.4's two worked examples (SSSP and graph coloring) are provided as
//! programs; tests check them against the dedicated implementations.

use std::sync::atomic::{AtomicBool, Ordering};

use pp_graph::{BlockPartition, CsrGraph, VertexId, Weight};
use rayon::prelude::*;

use crate::sync::{ShardedLocks, SyncSlice};
use crate::Direction;

/// A vertex program in the GAS model.
pub trait GasProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Send + Sync;
    /// The gathered/accumulated type.
    type Gather: Clone + Send + Sync;

    /// Neutral element of [`GasProgram::merge`].
    fn gather_init(&self) -> Self::Gather;

    /// Contribution of neighbor `u` (state `u_state`) to vertex `v` (state
    /// `v_state`) over an edge of weight `w`. Access to both endpoint
    /// states matches PowerGraph's gather signature and is what lets
    /// programs break symmetry (e.g. priority-based coloring).
    fn gather(
        &self,
        v: VertexId,
        v_state: &Self::State,
        u: VertexId,
        w: Weight,
        u_state: &Self::State,
    ) -> Self::Gather;

    /// Combines two gathered values (must be commutative + associative,
    /// like Algorithm 3's `⇐`).
    fn merge(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// Applies the combined gather; returns `true` if the state changed
    /// (which schedules the neighbors — the scatter step).
    fn apply(&self, v: VertexId, state: &mut Self::State, gathered: Self::Gather) -> bool;

    /// Whether `apply` needs the gather over the *entire* neighborhood.
    /// Monotone programs (SSSP's min) can fold partial push-side deltas;
    /// programs like coloring cannot — for them, pushing only *signals*
    /// recomputation ("any conflicting vertices are then scheduled for the
    /// color recomputation", §7.4) and the apply re-gathers fully.
    fn needs_full_gather(&self) -> bool {
        false
    }
}

/// Result of a GAS execution.
#[derive(Clone, Debug)]
pub struct GasResult<S> {
    /// Final per-vertex states.
    pub states: Vec<S>,
    /// Supersteps executed.
    pub supersteps: usize,
}

/// Runs `program` to fixpoint from the given initial states and active set.
///
/// `max_supersteps` bounds divergence for ill-behaved programs.
pub fn gas_execute<Prog: GasProgram>(
    g: &CsrGraph,
    program: &Prog,
    mut states: Vec<Prog::State>,
    initially_active: &[VertexId],
    dir: Direction,
    max_supersteps: usize,
) -> GasResult<Prog::State> {
    let n = g.num_vertices();
    assert_eq!(states.len(), n);
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let locks = ShardedLocks::new(1024);

    let mut scheduled = vec![false; n];
    for &v in initially_active {
        scheduled[v as usize] = true;
        if dir == Direction::Pull {
            // Pull-mode activation means "this vertex's state is news":
            // the neighbors are the ones that must re-gather.
            for &u in g.neighbors(v) {
                scheduled[u as usize] = true;
            }
        }
    }
    let mut supersteps = 0;
    while supersteps < max_supersteps && scheduled.iter().any(|&s| s) {
        supersteps += 1;
        let next: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        match dir {
            Direction::Pull => {
                // Scheduled vertices gather over their whole neighborhood
                // and apply to their own state: owner-only writes.
                let st = SyncSlice::new(&mut states);
                let sched = &scheduled;
                (0..part.num_parts()).into_par_iter().for_each(|t| {
                    for v in part.range(t) {
                        if !sched[v as usize] {
                            continue;
                        }
                        let mut acc = program.gather_init();
                        // SAFETY: v is owned by this task; reading before
                        // the apply below is single-threaded per vertex.
                        let v_state =
                            unsafe { (*(st.addr(v as usize) as *const Prog::State)).clone() };
                        for (i, &u) in g.neighbors(v).iter().enumerate() {
                            let w = if g.is_weighted() {
                                g.neighbor_weights(v)[i]
                            } else {
                                1
                            };
                            // SAFETY: u's state is only read; writers in
                            // this phase write only their own cell, and a
                            // stale read is re-converged on a later
                            // superstep (monotone programs).
                            let u_state = unsafe { &*(st.addr(u as usize) as *const Prog::State) };
                            acc = program.merge(acc, program.gather(v, &v_state, u, w, u_state));
                        }
                        // SAFETY: v is owned by this task.
                        let state = unsafe { &mut *(st.addr(v as usize) as *mut Prog::State) };
                        if program.apply(v, state, acc) {
                            for &u in g.neighbors(v) {
                                next[u as usize].store(true, Ordering::Relaxed);
                            }
                            next[v as usize].store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
            Direction::Push => {
                // Scheduled vertices scatter their contribution into each
                // neighbor's accumulator (lock-guarded), then every touched
                // vertex applies.
                let mut accs: Vec<Option<Prog::Gather>> = vec![None; n];
                {
                    let acc_s = SyncSlice::new(&mut accs);
                    let st = &states;
                    let sched = &scheduled;
                    (0..part.num_parts()).into_par_iter().for_each(|t| {
                        for v in part.range(t) {
                            if !sched[v as usize] {
                                continue;
                            }
                            for (i, &u) in g.neighbors(v).iter().enumerate() {
                                let w = if g.is_weighted() {
                                    g.neighbor_weights(v)[i]
                                } else {
                                    1
                                };
                                let contrib =
                                    program.gather(u, &st[u as usize], v, w, &st[v as usize]);
                                locks.with(u as usize, || {
                                    // SAFETY: the shard lock serializes
                                    // writers of accs[u].
                                    let cell = unsafe {
                                        &mut *(acc_s.addr(u as usize) as *mut Option<Prog::Gather>)
                                    };
                                    let merged = match cell.take() {
                                        Some(prev) => program.merge(prev, contrib),
                                        None => contrib,
                                    };
                                    *cell = Some(merged);
                                });
                            }
                        }
                    });
                }
                // Apply phase: owner-only. For full-gather programs the
                // scattered value is only a signal; re-gather in place.
                let full = program.needs_full_gather();
                let st = SyncSlice::new(&mut states);
                let accs_ref = &accs;
                let sched = &scheduled;
                (0..part.num_parts()).into_par_iter().for_each(|t| {
                    for v in part.range(t) {
                        // A scheduled vertex with no incoming contribution
                        // (e.g. isolated) still applies once on the neutral
                        // gather — otherwise it could never initialize.
                        let signal = accs_ref[v as usize]
                            .clone()
                            .or_else(|| sched[v as usize].then(|| program.gather_init()));
                        if let Some(acc) = signal {
                            let acc = if full {
                                // SAFETY: v owned by this task; neighbor
                                // states are read-only in this phase except
                                // their own cells (benign same-superstep
                                // staleness, reconverged next round).
                                let v_state = unsafe {
                                    (*(st.addr(v as usize) as *const Prog::State)).clone()
                                };
                                let mut a = program.gather_init();
                                for (i, &u) in g.neighbors(v).iter().enumerate() {
                                    let w = if g.is_weighted() {
                                        g.neighbor_weights(v)[i]
                                    } else {
                                        1
                                    };
                                    // SAFETY: same read-only discipline as
                                    // `v_state` above.
                                    let u_state =
                                        unsafe { &*(st.addr(u as usize) as *const Prog::State) };
                                    a = program
                                        .merge(a, program.gather(v, &v_state, u, w, u_state));
                                }
                                a
                            } else {
                                acc
                            };
                            // SAFETY: v is owned by this task.
                            let state = unsafe { &mut *(st.addr(v as usize) as *mut Prog::State) };
                            if program.apply(v, state, acc) {
                                for &u in g.neighbors(v) {
                                    next[u as usize].store(true, Ordering::Relaxed);
                                }
                                next[v as usize].store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        }
        scheduled = next.into_iter().map(AtomicBool::into_inner).collect();
    }

    GasResult { states, supersteps }
}

/// §7.4's SSSP as a GAS program: gather = `dist[u] + w`, merge = min,
/// apply = relax own distance.
pub struct GasSssp;

impl GasProgram for GasSssp {
    type State = u64;
    type Gather = u64;

    fn gather_init(&self) -> u64 {
        u64::MAX
    }

    fn gather(&self, _v: VertexId, _vs: &u64, _u: VertexId, w: Weight, u_state: &u64) -> u64 {
        u_state.saturating_add(w as u64)
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: &mut u64, gathered: u64) -> bool {
        if gathered < *state {
            *state = gathered;
            true
        } else {
            false
        }
    }
}

/// Runs SSSP through the GAS engine (Bellman-Ford-style fixpoint).
pub fn gas_sssp(g: &CsrGraph, root: VertexId, dir: Direction) -> Vec<u64> {
    let n = g.num_vertices();
    let mut init = vec![u64::MAX; n];
    init[root as usize] = 0;
    gas_execute(g, &GasSssp, init, &[root], dir, 4 * n + 4).states
}

/// §7.4's graph coloring as a GAS program: gather collects neighbor colors
/// into a banned-bitmask and flags whether a *lower-priority* neighbor
/// shares the vertex's color; apply recolors only the uncolored and the
/// conflicting-but-outranked, which breaks the lockstep-flip symmetry and
/// guarantees convergence (lowest-priority vertices stabilize first). This
/// is Boman coloring in the limit where every vertex is its own partition
/// (§7.4).
pub struct GasColoring;

/// Gather payload of [`GasColoring`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ColorGather {
    banned: [u64; 2],
    must_move: bool,
}

fn color_prio(v: VertexId) -> (u32, VertexId) {
    (v.wrapping_mul(0x9E37_79B9).rotate_left(16), v)
}

impl GasProgram for GasColoring {
    /// Current color (`u32::MAX` = uncolored).
    type State = u32;
    type Gather = ColorGather;

    fn gather_init(&self) -> ColorGather {
        ColorGather::default()
    }

    fn gather(
        &self,
        v: VertexId,
        v_state: &u32,
        u: VertexId,
        _w: Weight,
        u_state: &u32,
    ) -> ColorGather {
        let mut g = ColorGather::default();
        let c = *u_state;
        if c != u32::MAX && c < 128 {
            g.banned[(c / 64) as usize] |= 1 << (c % 64);
        }
        // Conflict: the neighbor holds my color and outranks me (lower
        // priority keeps its color — the Boman tie-break of §3.6).
        if c != u32::MAX && c == *v_state && color_prio(u) < color_prio(v) {
            g.must_move = true;
        }
        g
    }

    fn merge(&self, a: ColorGather, b: ColorGather) -> ColorGather {
        ColorGather {
            banned: [a.banned[0] | b.banned[0], a.banned[1] | b.banned[1]],
            must_move: a.must_move || b.must_move,
        }
    }

    fn needs_full_gather(&self) -> bool {
        true
    }

    fn apply(&self, _v: VertexId, state: &mut u32, g: ColorGather) -> bool {
        if *state != u32::MAX && !g.must_move {
            return false;
        }
        let free = if g.banned[0] != u64::MAX {
            (!g.banned[0]).trailing_zeros()
        } else {
            64 + (!g.banned[1]).trailing_zeros()
        };
        if *state != free {
            *state = free;
            true
        } else {
            false
        }
    }
}

/// Runs coloring through the GAS engine. The *pull* direction is
/// deterministic and terminates (each vertex recomputes from stable
/// neighbor colors); convergence is detected by an unchanged sweep.
pub fn gas_coloring(g: &CsrGraph, dir: Direction) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(
        g.max_degree() < 128,
        "GasColoring's two-word mask caps colors at 128"
    );
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    let r = gas_execute(g, &GasColoring, vec![u32::MAX; n], &all, dir, 16 * n + 16);
    r.states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::is_proper_coloring;
    use crate::sssp;
    use pp_graph::gen;

    #[test]
    fn gas_sssp_matches_dijkstra_both_directions() {
        for seed in 0..3 {
            let g = gen::with_random_weights(&gen::rmat(6, 4, seed), 1, 50, seed);
            let reference = sssp::dijkstra(&g, 0);
            for dir in Direction::BOTH {
                assert_eq!(gas_sssp(&g, 0, dir), reference, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn gas_sssp_on_path_and_star() {
        let g = gen::with_random_weights(&gen::path(20), 2, 2, 1);
        let r = gas_sssp(&g, 0, Direction::Pull);
        for (i, &d) in r.iter().enumerate() {
            assert_eq!(d, 2 * i as u64);
        }
        let g = gen::with_random_weights(&gen::star(10), 3, 3, 1);
        let r = gas_sssp(&g, 1, Direction::Push);
        assert_eq!(r[0], 3);
        assert_eq!(r[2], 6, "leaf to leaf goes through the hub");
    }

    #[test]
    fn gas_coloring_is_proper_both_directions() {
        for g in [
            gen::path(30),
            gen::cycle(15),
            gen::rmat(6, 3, 2),
            gen::star(20),
        ] {
            for dir in Direction::BOTH {
                let colors = gas_coloring(&g, dir);
                assert!(is_proper_coloring(&g, &colors), "{dir:?}");
            }
        }
    }

    #[test]
    fn gas_coloring_bipartite_uses_two_colors() {
        let colors = gas_coloring(&gen::path(24), Direction::Pull);
        assert!(colors.iter().all(|&c| c <= 1));
    }

    #[test]
    fn gas_supersteps_are_bounded_by_graph_distance() {
        // SSSP activation travels one hop per superstep: path of length k
        // needs ≈ k supersteps.
        let g = gen::with_random_weights(&gen::path(16), 1, 1, 1);
        let mut init = vec![u64::MAX; 16];
        init[0] = 0;
        let r = gas_execute(&g, &GasSssp, init, &[0], Direction::Pull, 1000);
        assert!(r.supersteps >= 15, "too few supersteps: {}", r.supersteps);
        assert!(r.supersteps <= 20, "too many supersteps: {}", r.supersteps);
    }

    #[test]
    fn inactive_fixpoint_terminates_immediately() {
        let g = gen::path(4);
        let r = gas_execute(&g, &GasSssp, vec![0, 1, 2, 3], &[], Direction::Push, 100);
        assert_eq!(r.supersteps, 0);
        assert_eq!(r.states, vec![0, 1, 2, 3]);
    }
}
