//! Brandes betweenness centrality in push and pull form (§3.5, §4.5).
//!
//! Per source, two traversals (Algorithm 5):
//!
//! 1. **Forward BFS** counts shortest-path multiplicities `σ`. Push
//!    scatters `σ[v]` into each newly discovered neighbor with integer
//!    FAA/CAS; pull gathers from all frontier neighbors into the owned cell.
//! 2. **Backward accumulation** folds partial dependencies
//!    `δ[v] += σ[v]/σ[w] · (1 + δ[w])` down the shortest-path DAG. Pushing
//!    scatters *floating-point* partials into predecessors — the conflict
//!    type the paper highlights (§4.9): floats force locks. Pulling has each
//!    vertex read its successors: no synchronization at all.
//!
//! Per-phase wall-clock totals are recorded to regenerate Figure 5.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::bfs::UNVISITED;
use crate::sync::{ShardedLocks, SyncSlice};
use crate::Direction;

/// Betweenness options.
#[derive(Clone, Copy, Debug, Default)]
pub struct BcOptions {
    /// Limit the number of source vertices (sources `0..k`); `None` runs the
    /// exact algorithm from every vertex. The paper's experiments also
    /// amortize over many sources (Figure 5); sampling is the standard
    /// approximation [Bader et al. 2007].
    pub max_sources: Option<usize>,
}

/// Result of a betweenness computation.
#[derive(Clone, Debug)]
pub struct BcResult {
    /// Centrality scores (undirected convention: each unordered pair counted
    /// once).
    pub scores: Vec<f64>,
    /// Total time in forward (σ-counting) traversals — "first BFS" of Fig 5.
    pub forward_time: Duration,
    /// Total time in backward accumulation — "second BFS" of Fig 5.
    pub backward_time: Duration,
}

/// Betweenness centrality with the default probe.
pub fn betweenness(g: &CsrGraph, dir: Direction, opts: &BcOptions) -> BcResult {
    betweenness_probed(g, dir, opts, &NullProbe)
}

/// Instrumented betweenness centrality.
pub fn betweenness_probed<P: Probe>(
    g: &CsrGraph,
    dir: Direction,
    opts: &BcOptions,
    probe: &P,
) -> BcResult {
    let n = g.num_vertices();
    let limit = opts.max_sources.unwrap_or(n).min(n);
    let mut scores = vec![0.0f64; n];
    let mut forward_time = Duration::ZERO;
    let mut backward_time = Duration::ZERO;
    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));

    let mut sigma = vec![0u64; n];
    let mut delta = vec![0.0f64; n];
    for s in 0..limit as VertexId {
        let t0 = Instant::now();
        let levels_by_round = forward_phase(g, &part, s, &mut sigma, dir, probe);
        forward_time += t0.elapsed();

        let t1 = Instant::now();
        backward_phase(g, &levels_by_round, &sigma, &mut delta, dir, probe);
        backward_time += t1.elapsed();

        for v in 0..n {
            if v != s as usize {
                scores[v] += delta[v];
            }
        }
    }
    // Undirected graphs see each (s, t) pair from both endpoints.
    if !g.is_directed() {
        for x in &mut scores {
            *x /= 2.0;
        }
    }
    BcResult {
        scores,
        forward_time,
        backward_time,
    }
}

/// Approximate betweenness by uniform source sampling [Bader et al. 2007,
/// cited as \[2\]]: run the two-phase Brandes computation from `samples`
/// random sources and scale the accumulated dependencies by `n / samples`.
/// An unbiased estimator of the exact scores; with `samples == n` every
/// source is distinct and the result is exact.
pub fn approx_betweenness(g: &CsrGraph, dir: Direction, samples: usize, seed: u64) -> Vec<f64> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let n = g.num_vertices();
    if n == 0 || samples == 0 {
        return vec![0.0; n];
    }
    let samples = samples.min(n);
    let mut sources: Vec<VertexId> = (0..n as VertexId).collect();
    sources.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
    sources.truncate(samples);

    let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
    let mut scores = vec![0.0f64; n];
    let mut sigma = vec![0u64; n];
    let mut delta = vec![0.0f64; n];
    for &s in &sources {
        let info = forward_phase(g, &part, s, &mut sigma, dir, &NullProbe);
        backward_phase(g, &info, &sigma, &mut delta, dir, &NullProbe);
        for v in 0..n {
            if v != s as usize {
                scores[v] += delta[v];
            }
        }
    }
    let scale = n as f64 / samples as f64 / if g.is_directed() { 1.0 } else { 2.0 };
    for x in &mut scores {
        *x *= scale;
    }
    scores
}

/// Forward σ-counting BFS. Returns the per-round frontiers (the level
/// structure the backward phase walks in reverse). `sigma` is reset inside.
fn forward_phase<P: Probe>(
    g: &CsrGraph,
    part: &BlockPartition,
    s: VertexId,
    sigma_out: &mut [u64],
    dir: Direction,
    probe: &P,
) -> ForwardInfo {
    let n = g.num_vertices();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    level[s as usize].store(0, Ordering::Relaxed);
    let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    sigma[s as usize].store(1, Ordering::Relaxed);

    let mut frontiers = vec![vec![s]];
    let mut cur = 0u32;
    loop {
        let frontier = frontiers.last().unwrap();
        if frontier.is_empty() {
            frontiers.pop();
            break;
        }
        let next: Vec<VertexId> = match dir {
            Direction::Push => frontier
                .par_iter()
                .fold(Vec::new, |mut my_f, &v| {
                    let sv = sigma[v as usize].load(Ordering::Relaxed);
                    for &w in g.neighbors(v) {
                        probe.branch_cond();
                        probe.read(addr_of_index(&level, w as usize), 4);
                        let lw = level[w as usize].load(Ordering::Relaxed);
                        if lw == UNVISITED {
                            // W(i): discovery race, integer CAS (§4.5).
                            probe.atomic_rmw(addr_of_index(&level, w as usize), 4);
                            if level[w as usize]
                                .compare_exchange(
                                    UNVISITED,
                                    cur + 1,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                my_f.push(w);
                            }
                        }
                        if level[w as usize].load(Ordering::Relaxed) == cur + 1 {
                            // W(i): multiplicity scatter, integer FAA.
                            probe.atomic_rmw(addr_of_index(&sigma, w as usize), 8);
                            sigma[w as usize].fetch_add(sv, Ordering::Relaxed);
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                }),
            Direction::Pull => (0..part.num_parts())
                .into_par_iter()
                .fold(Vec::new, |mut my_f, t| {
                    for v in part.range(t) {
                        probe.branch_cond();
                        if level[v as usize].load(Ordering::Relaxed) != UNVISITED {
                            continue;
                        }
                        let mut acc = 0u64;
                        for &u in g.neighbors(v) {
                            // R: read conflicts on level/σ of neighbors.
                            probe.read(addr_of_index(&level, u as usize), 4);
                            probe.branch_cond();
                            if level[u as usize].load(Ordering::Relaxed) == cur {
                                probe.read(addr_of_index(&sigma, u as usize), 8);
                                acc += sigma[u as usize].load(Ordering::Relaxed);
                            }
                        }
                        if acc > 0 {
                            // Own-cell writes only (§3.8).
                            probe.write(addr_of_index(&level, v as usize), 4);
                            probe.write(addr_of_index(&sigma, v as usize), 8);
                            level[v as usize].store(cur + 1, Ordering::Relaxed);
                            sigma[v as usize].store(acc, Ordering::Relaxed);
                            my_f.push(v);
                        }
                    }
                    my_f
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                }),
        };
        frontiers.push(next);
        cur += 1;
    }

    for (dst, src) in sigma_out.iter_mut().zip(&sigma) {
        *dst = src.load(Ordering::Relaxed);
    }
    ForwardInfo {
        frontiers,
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
    }
}

/// Level structure produced by the forward phase.
struct ForwardInfo {
    frontiers: Vec<Vec<VertexId>>,
    level: Vec<u32>,
}

/// Backward dependency accumulation over the shortest-path DAG, deepest
/// level first. `delta` is reset inside.
fn backward_phase<P: Probe>(
    g: &CsrGraph,
    fwd: &ForwardInfo,
    sigma: &[u64],
    delta: &mut [f64],
    dir: Direction,
    probe: &P,
) {
    delta.fill(0.0);
    let level = &fwd.level;
    let rounds = fwd.frontiers.len();
    if rounds <= 1 {
        return;
    }
    let locks = ShardedLocks::new(1024);
    // Walk levels deepest → 1; vertices at level l receive from level l+1.
    for l in (0..rounds - 1).rev() {
        match dir {
            Direction::Push => {
                // Vertices w at level l+1 push partials into their
                // predecessors at level l: float write conflicts → locks
                // (§4.5, §4.9).
                let delta_s = SyncSlice::new(&mut *delta);
                fwd.frontiers[l + 1].par_iter().for_each(|&w| {
                    // SAFETY: w's own delta is final (level l+1 is fully
                    // accumulated when level l is processed).
                    let dw = unsafe { delta_s.read(w as usize) };
                    let coeff = (1.0 + dw) / sigma[w as usize] as f64;
                    for &v in g.neighbors(w) {
                        probe.branch_cond();
                        probe.read(addr_of_index(level, v as usize), 4);
                        if level[v as usize] == l as u32 {
                            probe.lock();
                            probe.write(delta_s.addr(v as usize), 8);
                            locks.with(v as usize, || {
                                // SAFETY: the shard lock serializes writers
                                // of v.
                                unsafe {
                                    let cur = delta_s.read(v as usize);
                                    delta_s
                                        .write(v as usize, cur + sigma[v as usize] as f64 * coeff);
                                }
                            });
                        }
                    }
                });
            }
            Direction::Pull => {
                // Vertices v at level l pull from successors at level l+1:
                // pure reads of finished cells, own-cell write (§4.9).
                let delta_s = SyncSlice::new(&mut *delta);
                fwd.frontiers[l].par_iter().for_each(|&v| {
                    let mut acc = 0.0f64;
                    for &w in g.neighbors(v) {
                        probe.branch_cond();
                        probe.read(addr_of_index(level, w as usize), 4);
                        if level[w as usize] == (l + 1) as u32 {
                            probe.read(delta_s.addr(w as usize), 8);
                            // SAFETY: level-(l+1) deltas are final.
                            let dw = unsafe { delta_s.read(w as usize) };
                            acc += (1.0 + dw) / sigma[w as usize] as f64;
                        }
                    }
                    probe.write(delta_s.addr(v as usize), 8);
                    // SAFETY: each frontier vertex is processed by exactly
                    // one task; v's cell is written only here.
                    unsafe { delta_s.write(v as usize, sigma[v as usize] as f64 * acc) };
                });
            }
        }
    }
}

/// Sequential Brandes reference (stack-based) for validation.
pub fn betweenness_seq(g: &CsrGraph, max_sources: Option<usize>) -> Vec<f64> {
    let n = g.num_vertices();
    let limit = max_sources.unwrap_or(n).min(n);
    let mut bc = vec![0.0f64; n];
    for s in 0..limit as VertexId {
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut sigma = vec![0u64; n];
        let mut dist = vec![i64::MAX; n];
        sigma[s as usize] = 1;
        dist[s as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] as f64 / sigma[w as usize] as f64 * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    if !g.is_directed() {
        for x in &mut bc {
            *x /= 2.0;
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_telemetry::CountingProbe;

    fn assert_close(a: &[f64], b: &[f64], tol: f64, ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{ctx}: vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_analytic() {
        // Path 0-1-2-3-4: bc(middle) = 4 (pairs (0,2),(0,3),(0,4)... counted
        // once per unordered pair crossing the vertex): bc(2) = 2·2 = 4.
        let g = gen::path(5);
        for dir in Direction::BOTH {
            let r = betweenness(&g, dir, &BcOptions::default());
            assert_close(&r.scores, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-9, "path");
        }
    }

    #[test]
    fn star_center_carries_all_pairs() {
        // Star K_{1,5}: center lies on every pair of leaves: C(5,2) = 10.
        let g = gen::star(6);
        for dir in Direction::BOTH {
            let r = betweenness(&g, dir, &BcOptions::default());
            assert!((r.scores[0] - 10.0).abs() < 1e-9, "{dir:?}");
            for &leaf in &r.scores[1..] {
                assert!(leaf.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cycle_symmetry() {
        let g = gen::cycle(8);
        for dir in Direction::BOTH {
            let r = betweenness(&g, dir, &BcOptions::default());
            for w in r.scores.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-9, "cycle must be uniform");
            }
        }
    }

    #[test]
    fn push_pull_and_seq_agree_on_random_graphs() {
        for seed in [1, 2] {
            let g = gen::rmat(6, 4, seed);
            let reference = betweenness_seq(&g, None);
            for dir in Direction::BOTH {
                let r = betweenness(&g, dir, &BcOptions::default());
                assert_close(&r.scores, &reference, 1e-6, &format!("{dir:?} seed {seed}"));
            }
        }
    }

    #[test]
    fn multiplicities_handled_on_diamond() {
        // Diamond 0-1, 0-2, 1-3, 2-3: two shortest paths 0→3 split the
        // dependency between 1 and 2.
        let g = pp_graph::GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let reference = betweenness_seq(&g, None);
        for dir in Direction::BOTH {
            let r = betweenness(&g, dir, &BcOptions::default());
            assert_close(&r.scores, &reference, 1e-9, "diamond");
        }
        assert!((reference[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampling_sources_matches_seq_sampling() {
        let g = gen::rmat(6, 5, 9);
        let opts = BcOptions {
            max_sources: Some(10),
        };
        let reference = betweenness_seq(&g, Some(10));
        for dir in Direction::BOTH {
            let r = betweenness(&g, dir, &opts);
            assert_close(&r.scores, &reference, 1e-6, "sampled");
        }
    }

    #[test]
    fn push_locks_floats_pull_lock_free() {
        // §4.9: BC push conflicts are on floats → locks; pull removes them.
        let g = gen::rmat(6, 4, 4);
        let probe = CountingProbe::new();
        betweenness_probed(
            &g,
            Direction::Push,
            &BcOptions {
                max_sources: Some(4),
            },
            &probe,
        );
        let push = probe.counts();
        assert!(push.locks > 0, "push backward phase must lock");
        assert!(push.atomics > 0, "push forward phase uses integer atomics");

        let probe = CountingProbe::new();
        betweenness_probed(
            &g,
            Direction::Pull,
            &BcOptions {
                max_sources: Some(4),
            },
            &probe,
        );
        let pull = probe.counts();
        assert_eq!(pull.locks, 0);
        assert_eq!(pull.atomics, 0);
    }

    #[test]
    fn timings_are_populated() {
        let g = gen::rmat(6, 4, 8);
        let r = betweenness(
            &g,
            Direction::Push,
            &BcOptions {
                max_sources: Some(8),
            },
        );
        assert!(r.forward_time > Duration::ZERO);
        assert!(r.backward_time > Duration::ZERO);
    }

    #[test]
    fn approx_with_all_sources_is_exact() {
        let g = gen::rmat(6, 4, 3);
        let n = g.num_vertices();
        let exact = betweenness(&g, Direction::Pull, &BcOptions::default()).scores;
        for dir in Direction::BOTH {
            let approx = approx_betweenness(&g, dir, n, 0);
            assert_close(&approx, &exact, 1e-6, &format!("{dir:?}"));
        }
    }

    #[test]
    fn approx_converges_with_sample_count() {
        // More samples → smaller error, on average, against the exact
        // scores. Use the total absolute error of the ranking vector.
        let g = gen::community(3, 40, 300, 40, 5);
        let exact = betweenness(&g, Direction::Pull, &BcOptions::default()).scores;
        let err = |k: usize| {
            let a = approx_betweenness(&g, Direction::Pull, k, 42);
            a.iter()
                .zip(&exact)
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
        };
        let coarse = err(6);
        let fine = err(60);
        assert!(
            fine < coarse,
            "sampling 60 sources (err {fine:.1}) must beat 6 (err {coarse:.1})"
        );
    }

    #[test]
    fn approx_is_deterministic_per_seed_and_direction_free() {
        let g = gen::rmat(6, 4, 9);
        let a = approx_betweenness(&g, Direction::Push, 10, 7);
        // The sampled source set is seed-deterministic, but push accumulates
        // floats under locks whose acquisition order varies between truly
        // parallel runs — repeat runs agree to rounding, not bitwise.
        let b = approx_betweenness(&g, Direction::Push, 10, 7);
        assert_close(&a, &b, 1e-9, "same seed, repeat run");
        let c = approx_betweenness(&g, Direction::Pull, 10, 7);
        assert_close(&a, &c, 1e-9, "same sampled sources, either direction");
    }

    #[test]
    fn approx_identifies_the_bridge_vertex() {
        // Two cliques joined through vertex 8: it must dominate the scores
        // even under sampling.
        let mut b = pp_graph::GraphBuilder::undirected(17);
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v);
                b.add_edge(u + 9, v + 9);
            }
            b.add_edge(u, 8);
            b.add_edge(8, u + 9);
        }
        let g = b.build();
        let scores = approx_betweenness(&g, Direction::Pull, 12, 3);
        let best = (0..17)
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(best, 8, "bridge vertex must rank first: {scores:?}");
    }

    #[test]
    fn approx_edge_cases() {
        let empty = pp_graph::GraphBuilder::undirected(0).build();
        assert!(approx_betweenness(&empty, Direction::Pull, 5, 0).is_empty());
        let g = gen::path(4);
        assert_eq!(approx_betweenness(&g, Direction::Pull, 0, 0), vec![0.0; 4]);
    }
}
