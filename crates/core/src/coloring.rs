//! Boman graph coloring and its acceleration strategies
//! (§3.6, §4.6, §5 — Figures 1 and 6b).
//!
//! The base algorithm alternates a parallel per-partition greedy coloring
//! (phase 1) with cross-partition conflict detection over border vertices
//! (phase 2). The push variant *scatters* the recolor request to the
//! offending remote neighbor; the pull variant schedules *itself*. On top of
//! it sit the §5 strategies:
//!
//! * **Frontier-Exploit (FE)** — wave coloring from a stable seed set,
//!   touching only frontier neighborhoods per iteration;
//! * **Generic-Switch (GS)** — FE pushing while productive, switching to the
//!   conflict-free pulling formulation when conflicts dominate;
//! * **Greedy-Switch (GrS)** — switching to a sequential greedy scheme once
//!   the uncolored remainder is small;
//! * **Conflict-Removal (CR)** — pre-coloring the border set sequentially so
//!   the parallel phase cannot conflict at all.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pp_graph::{BlockPartition, CsrGraph, VertexId};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::Direction;

/// Marker for an uncolored vertex.
pub const NO_COLOR: u32 = u32::MAX;

/// Coloring options.
#[derive(Clone, Copy, Debug)]
pub struct GcOptions {
    /// Safety cap on iterations (the algorithms converge much earlier; the
    /// paper plots up to 50).
    pub max_iters: usize,
    /// Seed sparsity for Frontier-Exploit: the initial stable set is drawn
    /// from every `seed_stride`-th vertex, so waves must propagate from few
    /// sources (the paper selects "a set of vertices F ⊆ V that form a
    /// stable set", not a maximal one). 1 = maximal independent set.
    pub seed_stride: usize,
}

impl Default for GcOptions {
    fn default() -> Self {
        Self {
            max_iters: 500,
            seed_stride: 16,
        }
    }
}

/// Result of a coloring run.
#[derive(Clone, Debug)]
pub struct GcResult {
    /// Per-vertex colors (dense from 0).
    pub colors: Vec<u32>,
    /// Iterations until conflict-free.
    pub iterations: usize,
    /// Wall-clock time of each iteration (Figure 1's y-axis).
    pub iter_times: Vec<Duration>,
    /// Cross-partition conflicts detected per iteration.
    pub conflicts_per_iter: Vec<usize>,
}

impl GcResult {
    /// Number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        self.colors
            .iter()
            .filter(|&&c| c != NO_COLOR)
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Checks that `colors` is a proper coloring of `g` with no vertex left
/// uncolored.
pub fn is_proper_coloring(g: &CsrGraph, colors: &[u32]) -> bool {
    colors.len() == g.num_vertices()
        && colors.iter().all(|&c| c != NO_COLOR)
        && g.arcs()
            .all(|(u, v)| colors[u as usize] != colors[v as usize])
}

/// Sequential greedy coloring in vertex order (the "optimized greedy
/// variant" Greedy-Switch falls back to, §5).
pub fn greedy_seq(g: &CsrGraph) -> Vec<u32> {
    let mut colors = vec![NO_COLOR; g.num_vertices()];
    let mut scratch = ColorScratch::new(g.max_degree());
    for v in g.vertices() {
        colors[v as usize] =
            scratch.smallest_free(g.neighbors(v).iter().map(|&u| colors[u as usize]));
    }
    colors
}

/// Reusable bitset for "smallest color not among these".
struct ColorScratch {
    banned: Vec<u64>,
}

impl ColorScratch {
    fn new(max_degree: usize) -> Self {
        // A greedy scheme never needs more than d̂ + 1 colors.
        Self {
            banned: vec![0u64; max_degree / 64 + 2],
        }
    }

    fn smallest_free(&mut self, neighbor_colors: impl Iterator<Item = u32>) -> u32 {
        for b in &mut self.banned {
            *b = 0;
        }
        let cap = (self.banned.len() * 64) as u32;
        for c in neighbor_colors {
            if c != NO_COLOR && c < cap {
                self.banned[(c / 64) as usize] |= 1 << (c % 64);
            }
        }
        for (i, &b) in self.banned.iter().enumerate() {
            if b != u64::MAX {
                return i as u32 * 64 + (!b).trailing_zeros();
            }
        }
        cap
    }
}

/// Boman graph coloring (Algorithm 6) under a block partition with
/// `parts` parts. `dir` selects how phase 2 schedules recoloring: push
/// writes the remote offender's flag, pull writes the own flag.
pub fn boman(g: &CsrGraph, parts: usize, dir: Direction, opts: &GcOptions) -> GcResult {
    boman_probed(g, parts, dir, opts, &NullProbe)
}

/// Instrumented [`boman`].
pub fn boman_probed<P: Probe>(
    g: &CsrGraph,
    parts: usize,
    dir: Direction,
    opts: &GcOptions,
    probe: &P,
) -> GcResult {
    let n = g.num_vertices();
    let part = BlockPartition::new(n, parts.max(1));
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_COLOR)).collect();
    let needs_color: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    // `init(B, P)` of Algorithm 6: the border set under the partition.
    let border: Vec<VertexId> = part.border_vertices(g);
    let max_degree = g.max_degree();

    let mut iter_times = Vec::new();
    let mut conflicts_per_iter = Vec::new();

    for _ in 0..opts.max_iters {
        let started = Instant::now();
        // Deterministic remote snapshot: phase 1 reads other partitions'
        // colors as of the iteration start, its own in program order.
        let snapshot: Vec<u32> = colors.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // Phase 1: seq_color_partition(P) for every partition in parallel.
        (0..part.num_parts()).into_par_iter().for_each(|t| {
            let range = part.range(t);
            let mut scratch = ColorScratch::new(max_degree);
            for v in range.clone() {
                probe.branch_cond();
                if !needs_color[v as usize].swap(false, Ordering::Relaxed) {
                    continue;
                }
                let free = scratch.smallest_free(g.neighbors(v).iter().map(|&u| {
                    probe.read(addr_of_index(&colors, u as usize), 4);
                    if range.contains(&u) {
                        colors[u as usize].load(Ordering::Relaxed)
                    } else {
                        snapshot[u as usize]
                    }
                }));
                probe.write(addr_of_index(&colors, v as usize), 4);
                colors[v as usize].store(free, Ordering::Relaxed);
            }
        });

        // Phase 2: fix_conflicts() over border vertices. The higher-id
        // endpoint of a conflicting cross edge is rescheduled, so lower ids
        // stabilize first and the process terminates.
        let conflicts = AtomicUsize::new(0);
        border.par_iter().for_each(|&v| {
            let owner = part.owner(v);
            let cv = colors[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                probe.branch_cond();
                if part.owner(u) == owner {
                    continue;
                }
                probe.read(addr_of_index(&colors, u as usize), 4);
                if colors[u as usize].load(Ordering::Relaxed) == cv {
                    conflicts.fetch_add(1, Ordering::Relaxed);
                    match dir {
                        Direction::Push => {
                            // W(i): scatter the recolor request to the
                            // remote offender (Algorithm 6 line 16).
                            if u > v {
                                probe.atomic_rmw(addr_of_index(&needs_color, u as usize), 1);
                                needs_color[u as usize].store(true, Ordering::Relaxed);
                            }
                        }
                        Direction::Pull => {
                            // Own-flag write (line 18).
                            if v > u {
                                probe.write(addr_of_index(&needs_color, v as usize), 1);
                                needs_color[v as usize].store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        });
        let conflicts = conflicts.into_inner();
        iter_times.push(started.elapsed());
        conflicts_per_iter.push(conflicts);
        if conflicts == 0 {
            break;
        }
    }

    GcResult {
        colors: colors.into_iter().map(AtomicU32::into_inner).collect(),
        iterations: iter_times.len(),
        iter_times,
        conflicts_per_iter,
    }
}

/// A greedily built maximal independent set (in id order) — the stable seed
/// set `F` of the Frontier-Exploit strategy at its densest.
pub fn maximal_independent_set(g: &CsrGraph) -> Vec<VertexId> {
    stable_seed_set(g, 1)
}

/// A greedy independent set drawn from every `stride`-th vertex. Larger
/// strides give fewer seeds, so Frontier-Exploit's waves must travel
/// further — the knob behind the iteration-count contrasts of Figure 6b.
pub fn stable_seed_set(g: &CsrGraph, stride: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    let stride = stride.max(1);
    let mut blocked = vec![false; n];
    let mut seeds = Vec::new();
    for v in (0..n).step_by(stride) {
        let v = v as VertexId;
        if !blocked[v as usize] {
            seeds.push(v);
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    seeds
}

/// Frontier-Exploit coloring (§5): BFS-like waves from a stable seed set.
/// Wave `i` colors the uncolored neighbors of wave `i-1` with color `cᵢ`;
/// same-wave conflicts bump the higher-id endpoint to the next wave's color
/// (push), or are avoided entirely by deferring to the next wave (pull —
/// "no conflicts are generated").
pub fn frontier_exploit(g: &CsrGraph, dir: Direction, opts: &GcOptions) -> GcResult {
    frontier_exploit_probed(g, dir, opts, &NullProbe)
}

/// Instrumented [`frontier_exploit`]. `switch_to_pull_after`: see
/// [`generic_switch`].
pub fn frontier_exploit_probed<P: Probe>(
    g: &CsrGraph,
    dir: Direction,
    opts: &GcOptions,
    probe: &P,
) -> GcResult {
    fe_engine(g, opts, probe, move |_stats| dir, 0)
}

/// Generic-Switch coloring (§5): Frontier-Exploit that starts pushing and
/// switches to pulling once the conflicts of an iteration exceed
/// `switch_ratio` × the vertices colored in it.
pub fn generic_switch(g: &CsrGraph, switch_ratio: f64, opts: &GcOptions) -> GcResult {
    // The switch is sticky: once conflicts have dominated an iteration the
    // engine stays in the conflict-free pulling formulation (flapping back
    // would just reintroduce the conflicts that triggered the switch).
    let mut switched = false;
    fe_engine(
        g,
        opts,
        &NullProbe,
        move |stats| {
            if stats.conflicts as f64 > switch_ratio * (stats.colored.max(1)) as f64 {
                switched = true;
            }
            if switched {
                Direction::Pull
            } else {
                Direction::Push
            }
        },
        0,
    )
}

/// Greedy-Switch coloring (§5, the GrS of Figure 1): Frontier-Exploit that
/// abandons parallelism once fewer than `tail_fraction` of the vertices
/// remain uncolored, finishing them with the sequential greedy scheme in one
/// final iteration.
pub fn greedy_switch(g: &CsrGraph, tail_fraction: f64, opts: &GcOptions) -> GcResult {
    let tail = ((g.num_vertices() as f64) * tail_fraction).ceil() as usize;
    fe_engine(g, opts, &NullProbe, |_stats| Direction::Push, tail)
}

/// Per-iteration feedback for switch policies.
#[derive(Clone, Copy, Debug)]
pub struct FeIterStats {
    /// Vertices colored in the last iteration.
    pub colored: usize,
    /// Same-wave conflicts detected in the last iteration.
    pub conflicts: usize,
}

/// The engine shared by FE / GS / GrS: wave coloring with a per-iteration
/// direction policy and a greedy tail threshold.
/// Deterministic hashed vertex priority: raw ids would serialize graphs
/// whose adjacent vertices have consecutive ids (communities, grids).
#[inline]
fn vertex_prio(v: VertexId) -> (u32, VertexId) {
    (v.wrapping_mul(0x9E37_79B9).rotate_left(16), v)
}

fn fe_engine<P: Probe>(
    g: &CsrGraph,
    opts: &GcOptions,
    probe: &P,
    mut policy: impl FnMut(FeIterStats) -> Direction,
    greedy_tail: usize,
) -> GcResult {
    let n = g.num_vertices();
    let max_degree = g.max_degree();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_COLOR)).collect();
    let mut iter_times = Vec::new();
    let mut conflicts_per_iter = Vec::new();

    // Iteration 0: the stable seed set, color c₀ = 0.
    let t0 = Instant::now();
    let mut frontier = stable_seed_set(g, opts.seed_stride);
    for &v in &frontier {
        colors[v as usize].store(0, Ordering::Relaxed);
    }
    let mut uncolored = n - frontier.len();
    iter_times.push(t0.elapsed());
    conflicts_per_iter.push(0);

    let mut stats = FeIterStats {
        colored: frontier.len(),
        conflicts: 0,
    };
    let mut wave_color = 1u32;
    while uncolored > 0 && iter_times.len() < opts.max_iters {
        // Greedy-Switch: finish the small remainder sequentially.
        if uncolored <= greedy_tail {
            let started = Instant::now();
            let mut scratch = ColorScratch::new(g.max_degree());
            for v in g.vertices() {
                if colors[v as usize].load(Ordering::Relaxed) == NO_COLOR {
                    let c = scratch.smallest_free(
                        g.neighbors(v)
                            .iter()
                            .map(|&u| colors[u as usize].load(Ordering::Relaxed)),
                    );
                    colors[v as usize].store(c, Ordering::Relaxed);
                }
            }
            iter_times.push(started.elapsed());
            conflicts_per_iter.push(0);
            uncolored = 0;
            break;
        }

        let dir = policy(stats);
        let started = Instant::now();
        let next: Vec<VertexId> = match dir {
            Direction::Push => {
                // Wave: frontier vertices claim uncolored neighbors.
                let claimed: Vec<VertexId> = frontier
                    .par_iter()
                    .fold(Vec::new, |mut acc, &v| {
                        for &u in g.neighbors(v) {
                            probe.branch_cond();
                            probe.read(addr_of_index(&colors, u as usize), 4);
                            if colors[u as usize].load(Ordering::Relaxed) == NO_COLOR {
                                // W(i): claim race, CAS (§4.6).
                                probe.atomic_rmw(addr_of_index(&colors, u as usize), 4);
                                if colors[u as usize]
                                    .compare_exchange(
                                        NO_COLOR,
                                        wave_color,
                                        Ordering::AcqRel,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                                {
                                    acc.push(u);
                                }
                            }
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                // Conflict pass: adjacent same-wave vertices — the higher id
                // is deferred to receive the next wave's color (it stays
                // adjacent to this wave's survivors, so the next wave's
                // claim reaches it). Conflicts therefore cost iterations,
                // the effect Figure 6b measures.
                let bumped: Vec<VertexId> = claimed
                    .par_iter()
                    .filter(|&&v| {
                        g.neighbors(v).iter().any(|&u| {
                            probe.read(addr_of_index(&colors, u as usize), 4);
                            u < v && colors[u as usize].load(Ordering::Relaxed) == wave_color
                        })
                    })
                    .copied()
                    .collect();
                stats.conflicts = bumped.len();
                for &v in &bumped {
                    colors[v as usize].store(NO_COLOR, Ordering::Relaxed);
                }
                let bumped_set: std::collections::HashSet<VertexId> = bumped.into_iter().collect();
                claimed
                    .into_iter()
                    .filter(|v| !bumped_set.contains(v))
                    .collect()
            }
            Direction::Pull => {
                // Bulk pulling (§5: switching to pulling "may prevent new
                // iterations as no conflicts are generated"): partitions
                // greedily color their whole uncolored remainder against a
                // snapshot of the other partitions; a vertex whose choice
                // collided across the cut *uncolors itself* (own write) and
                // retries next round. Rounds to converge are Boman-like
                // (a handful), not wave-count-like.
                let snapshot: Vec<u32> = colors.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                let part = BlockPartition::new(n, rayon::current_num_threads().max(1));
                stats.conflicts = 0;
                let newly: Vec<VertexId> = (0..part.num_parts())
                    .into_par_iter()
                    .fold(Vec::new, |mut acc, t| {
                        let range = part.range(t);
                        let mut scratch = ColorScratch::new(max_degree);
                        for v in range.clone() {
                            probe.branch_cond();
                            if colors[v as usize].load(Ordering::Relaxed) != NO_COLOR {
                                continue;
                            }
                            let c = scratch.smallest_free(g.neighbors(v).iter().map(|&u| {
                                probe.read(addr_of_index(&colors, u as usize), 4);
                                if range.contains(&u) {
                                    colors[u as usize].load(Ordering::Relaxed)
                                } else {
                                    snapshot[u as usize]
                                }
                            }));
                            probe.write(addr_of_index(&colors, v as usize), 4);
                            colors[v as usize].store(c, Ordering::Relaxed);
                            acc.push(v);
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                // Self-deferral pass: keep the lower hashed priority of any
                // same-round cross-partition clash.
                let deferred: Vec<VertexId> = newly
                    .par_iter()
                    .filter(|&&v| {
                        let cv = colors[v as usize].load(Ordering::Relaxed);
                        let owner = part.owner(v);
                        g.neighbors(v).iter().any(|&u| {
                            probe.read(addr_of_index(&colors, u as usize), 4);
                            part.owner(u) != owner
                                && colors[u as usize].load(Ordering::Relaxed) == cv
                                && vertex_prio(u) < vertex_prio(v)
                        })
                    })
                    .copied()
                    .collect();
                for &v in &deferred {
                    colors[v as usize].store(NO_COLOR, Ordering::Relaxed);
                }
                let deferred_set: std::collections::HashSet<VertexId> =
                    deferred.into_iter().collect();
                newly
                    .into_iter()
                    .filter(|v| !deferred_set.contains(v))
                    .collect()
            }
        };
        stats.colored = next.len();
        uncolored = uncolored.saturating_sub(next.len());
        iter_times.push(started.elapsed());
        conflicts_per_iter.push(stats.conflicts);
        frontier = next;
        wave_color += 1;
        // Dead-end rescue: remnants with no frontier neighbors (other
        // components, or pockets isolated by deferrals) seed a fresh stable
        // set with the next wave's color.
        if frontier.is_empty() && uncolored > 0 {
            let mut seeded = vec![false; n];
            let mut seeds = Vec::new();
            for v in g.vertices() {
                if colors[v as usize].load(Ordering::Relaxed) == NO_COLOR
                    && !g.neighbors(v).iter().any(|&u| seeded[u as usize])
                {
                    seeded[v as usize] = true;
                    seeds.push(v);
                }
            }
            for &v in &seeds {
                colors[v as usize].store(wave_color, Ordering::Relaxed);
            }
            uncolored -= seeds.len();
            wave_color += 1;
            frontier = seeds;
        }
    }

    // Iteration-cap safety net: never return a partial coloring.
    if uncolored > 0 {
        let mut scratch = ColorScratch::new(g.max_degree());
        for v in g.vertices() {
            if colors[v as usize].load(Ordering::Relaxed) == NO_COLOR {
                let c = scratch.smallest_free(
                    g.neighbors(v)
                        .iter()
                        .map(|&u| colors[u as usize].load(Ordering::Relaxed)),
                );
                colors[v as usize].store(c, Ordering::Relaxed);
            }
        }
    }

    GcResult {
        colors: colors.into_iter().map(AtomicU32::into_inner).collect(),
        iterations: iter_times.len(),
        iter_times,
        conflicts_per_iter,
    }
}

/// Conflict-Removal coloring (§5, Algorithm 9): the border set is colored
/// sequentially first; the partitions then color their interiors in
/// parallel with no possibility of conflict — one parallel iteration total.
pub fn conflict_removal(g: &CsrGraph, parts: usize) -> GcResult {
    let n = g.num_vertices();
    let part = BlockPartition::new(n, parts.max(1));
    let started = Instant::now();
    let border = part.border_vertices(g);
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_COLOR)).collect();

    // seq_color_partition(B): greedy over the border set.
    let mut scratch = ColorScratch::new(g.max_degree());
    for &v in &border {
        let c = scratch.smallest_free(
            g.neighbors(v)
                .iter()
                .map(|&u| colors[u as usize].load(Ordering::Relaxed)),
        );
        colors[v as usize].store(c, Ordering::Relaxed);
    }
    // Parallel interiors: every cross-partition neighbor is border and
    // already colored, so partitions cannot conflict.
    (0..part.num_parts()).into_par_iter().for_each(|t| {
        let mut scratch = ColorScratch::new(g.max_degree());
        for v in part.range(t) {
            if colors[v as usize].load(Ordering::Relaxed) != NO_COLOR {
                continue;
            }
            let c = scratch.smallest_free(
                g.neighbors(v)
                    .iter()
                    .map(|&u| colors[u as usize].load(Ordering::Relaxed)),
            );
            colors[v as usize].store(c, Ordering::Relaxed);
        }
    });

    GcResult {
        colors: colors.into_iter().map(AtomicU32::into_inner).collect(),
        iterations: 1,
        iter_times: vec![started.elapsed()],
        conflicts_per_iter: vec![0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_telemetry::CountingProbe;

    fn graphs() -> Vec<CsrGraph> {
        vec![
            gen::path(30),
            gen::cycle(31),
            gen::complete(17),
            gen::star(25),
            gen::rmat(7, 5, 3),
            gen::road_grid(8, 8, 0.6, 1),
        ]
    }

    #[test]
    fn boman_produces_proper_colorings() {
        for g in graphs() {
            for dir in Direction::BOTH {
                for parts in [1, 2, 4] {
                    let r = boman(&g, parts, dir, &GcOptions::default());
                    assert!(
                        is_proper_coloring(&g, &r.colors),
                        "{dir:?} parts={parts} n={}",
                        g.num_vertices()
                    );
                    assert!(r.iterations <= GcOptions::default().max_iters);
                    assert_eq!(*r.conflicts_per_iter.last().unwrap(), 0);
                }
            }
        }
    }

    #[test]
    fn all_strategies_produce_proper_colorings() {
        for g in graphs() {
            for dir in Direction::BOTH {
                let r = frontier_exploit(&g, dir, &GcOptions::default());
                assert!(is_proper_coloring(&g, &r.colors), "FE {dir:?}");
            }
            let r = generic_switch(&g, 0.2, &GcOptions::default());
            assert!(is_proper_coloring(&g, &r.colors), "GS");
            let r = greedy_switch(&g, 0.1, &GcOptions::default());
            assert!(is_proper_coloring(&g, &r.colors), "GrS");
            let r = conflict_removal(&g, 4);
            assert!(is_proper_coloring(&g, &r.colors), "CR");
            assert_eq!(r.iterations, 1, "CR is single-iteration by design");
        }
    }

    #[test]
    fn greedy_seq_is_proper_and_bounded() {
        for g in graphs() {
            let colors = greedy_seq(&g);
            assert!(is_proper_coloring(&g, &colors));
            let used = colors.iter().max().unwrap() + 1;
            assert!(used as usize <= g.max_degree() + 1, "greedy bound violated");
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = gen::complete(9);
        for dir in Direction::BOTH {
            let r = boman(&g, 3, dir, &GcOptions::default());
            assert_eq!(r.num_colors(), 9);
        }
    }

    #[test]
    fn bipartite_uses_two_colors_with_greedy() {
        let colors = greedy_seq(&gen::path(20));
        assert!(colors.iter().max().unwrap() <= &1);
    }

    #[test]
    fn single_partition_converges_in_one_iteration() {
        // With one partition there are no border vertices, hence no
        // conflicts: the first phase-1 pass is final.
        let g = gen::rmat(7, 4, 5);
        let r = boman(&g, 1, Direction::Push, &GcOptions::default());
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn mis_is_independent_and_maximal() {
        for g in graphs() {
            let mis = maximal_independent_set(&g);
            let in_set: std::collections::HashSet<_> = mis.iter().copied().collect();
            for &v in &mis {
                for &u in g.neighbors(v) {
                    assert!(!in_set.contains(&u), "MIS not independent");
                }
            }
            // Maximality: every vertex outside is adjacent to the set.
            for v in g.vertices() {
                if !in_set.contains(&v) {
                    assert!(
                        g.neighbors(v).iter().any(|u| in_set.contains(u)),
                        "MIS not maximal at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_schedules_remote_pull_schedules_own() {
        // §4.6: the directions differ in *whose* state phase 2 writes.
        let g = gen::rmat(7, 5, 7);
        let probe = CountingProbe::new();
        boman_probed(&g, 4, Direction::Push, &GcOptions::default(), &probe);
        let push = probe.counts();
        let probe = CountingProbe::new();
        boman_probed(&g, 4, Direction::Pull, &GcOptions::default(), &probe);
        let pull = probe.counts();
        // Push marks remote flags with atomics; pull never does.
        assert!(push.atomics > 0);
        assert_eq!(pull.atomics, 0);
    }

    #[test]
    fn greedy_switch_uses_fewer_iterations_than_fe_on_dense_graphs() {
        // Figure 6b's pattern: FE alone needs many waves on dense community
        // graphs; the switching strategies cut them down.
        let g = gen::rmat(9, 8, 11);
        let fe = frontier_exploit(&g, Direction::Push, &GcOptions::default());
        let grs = greedy_switch(&g, 0.5, &GcOptions::default());
        assert!(
            grs.iterations < fe.iterations,
            "GrS {} !< FE {}",
            grs.iterations,
            fe.iterations
        );
    }

    #[test]
    fn fe_pull_generates_no_conflicts() {
        let g = gen::rmat(7, 5, 13);
        let r = frontier_exploit(&g, Direction::Pull, &GcOptions::default());
        assert!(r.conflicts_per_iter.iter().all(|&c| c == 0));
        assert!(is_proper_coloring(&g, &r.colors));
    }
}
