//! Graph500-style result validators.
//!
//! The paper benchmarks BFS "used \[by\] the HPC benchmark Graph500" (§3.3);
//! Graph500 specifies an output *validator* rather than a reference output,
//! because any valid BFS tree is acceptable. These validators implement the
//! same idea for the traversal results in this workspace, so integration and
//! property tests can check *specification conformance* instead of
//! comparing against one blessed implementation (push and pull legitimately
//! produce different parents for equal-level vertices).
//!
//! Each validator returns `Ok(())` or a description of the first violated
//! rule.

use pp_graph::{CsrGraph, VertexId};

use crate::bfs::{BfsResult, NO_PARENT, UNVISITED};
use crate::sssp::INF;

/// Validates a BFS tree against the Graph500 rules:
///
/// 1. the root has level 0 and is its own parent;
/// 2. a vertex has a parent iff it has a level;
/// 3. every tree edge `(parent[v], v)` exists in the graph;
/// 4. levels increase by exactly one along tree edges;
/// 5. every graph edge spans at most one level (the BFS "no shortcut" rule);
/// 6. a vertex is reached iff it is connected to the root (checked via the
///    edge-spanning rule plus a reachability sweep).
pub fn validate_bfs(g: &CsrGraph, root: VertexId, r: &BfsResult) -> Result<(), String> {
    let n = g.num_vertices();
    if r.parent.len() != n || r.level.len() != n {
        return Err(format!(
            "result arrays sized {}/{} for n = {n}",
            r.parent.len(),
            r.level.len()
        ));
    }
    if r.level[root as usize] != 0 {
        return Err(format!("root level is {}", r.level[root as usize]));
    }
    if r.parent[root as usize] != root {
        return Err("root is not its own parent".into());
    }
    for v in 0..n {
        let (p, l) = (r.parent[v], r.level[v]);
        match (p == NO_PARENT, l == UNVISITED) {
            (true, true) => continue,
            (false, true) => return Err(format!("vertex {v} has a parent but no level")),
            (true, false) => return Err(format!("vertex {v} has a level but no parent")),
            (false, false) => {}
        }
        if v as VertexId != root {
            if !g.has_edge(p, v as VertexId) {
                return Err(format!("tree edge ({p}, {v}) not in graph"));
            }
            if r.level[p as usize] + 1 != l {
                return Err(format!(
                    "tree edge ({p}, {v}) spans levels {} -> {l}",
                    r.level[p as usize]
                ));
            }
        }
    }
    // Rule 5: for undirected graphs each edge connects vertices at most one
    // level apart, and both endpoints share visited status.
    if !g.is_directed() {
        for (u, v, _) in g.edges() {
            let (lu, lv) = (r.level[u as usize], r.level[v as usize]);
            match (lu == UNVISITED, lv == UNVISITED) {
                (true, true) => {}
                (false, false) => {
                    if lu.abs_diff(lv) > 1 {
                        return Err(format!("edge ({u}, {v}) spans levels {lu}/{lv}"));
                    }
                }
                _ => {
                    return Err(format!(
                        "edge ({u}, {v}) crosses the visited/unvisited boundary"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Validates SSSP distances against the shortest-path optimality conditions:
///
/// 1. `dist[root] == 0`;
/// 2. triangle inequality: `dist[v] ≤ dist[u] + w(u, v)` for every edge;
/// 3. attainability: every finite `dist[v] > 0` is witnessed by a neighbor
///    `u` with `dist[v] == dist[u] + w(u, v)`;
/// 4. unreached vertices have no reached neighbor.
///
/// Together these force `dist` to be exactly the shortest-path metric.
pub fn validate_sssp(g: &CsrGraph, root: VertexId, dist: &[u64]) -> Result<(), String> {
    let n = g.num_vertices();
    if dist.len() != n {
        return Err(format!("dist sized {} for n = {n}", dist.len()));
    }
    if dist[root as usize] != 0 {
        return Err(format!("dist[root] = {}", dist[root as usize]));
    }
    for v in g.vertices() {
        let dv = dist[v as usize];
        if dv == INF {
            for (u, _) in g.weighted_neighbors(v) {
                if dist[u as usize] != INF {
                    return Err(format!("unreached {v} has reached neighbor {u}"));
                }
            }
            continue;
        }
        let mut witnessed = dv == 0;
        for (u, w) in g.weighted_neighbors(v) {
            let du = dist[u as usize];
            if du != INF && du + (w as u64) < dv {
                return Err(format!(
                    "triangle violation: dist[{v}] = {dv} > {du} + {w} via {u}"
                ));
            }
            if du != INF && du + w as u64 == dv {
                witnessed = true;
            }
        }
        if !witnessed {
            return Err(format!("dist[{v}] = {dv} is not attained by any edge"));
        }
    }
    Ok(())
}

/// Validates a vertex coloring: no edge joins same-colored endpoints and
/// every vertex is colored (`colors[v] != u32::MAX`).
pub fn validate_coloring(g: &CsrGraph, colors: &[u32]) -> Result<(), String> {
    if colors.len() != g.num_vertices() {
        return Err(format!(
            "colors sized {} for n = {}",
            colors.len(),
            g.num_vertices()
        ));
    }
    if let Some(v) = colors.iter().position(|&c| c == u32::MAX) {
        return Err(format!("vertex {v} is uncolored"));
    }
    for (u, v, _) in g.edges() {
        if u != v && colors[u as usize] == colors[v as usize] {
            return Err(format!(
                "edge ({u}, {v}) endpoints share color {}",
                colors[u as usize]
            ));
        }
    }
    Ok(())
}

/// Validates a spanning forest: the edges exist in the graph with the
/// claimed weights, contain no cycle, and connect exactly the graph's
/// connected components (i.e., the forest has `n - #components` edges).
pub fn validate_spanning_forest(
    g: &CsrGraph,
    edges: &[(VertexId, VertexId, pp_graph::Weight)],
) -> Result<(), String> {
    let n = g.num_vertices();
    let mut dsu = crate::kruskal::DisjointSets::new(n);
    for &(u, v, w) in edges {
        if g.edge_weight(u, v) != Some(w) {
            return Err(format!("({u}, {v}, {w}) is not a graph edge"));
        }
        if !dsu.union(u, v) {
            return Err(format!("edge ({u}, {v}) closes a cycle"));
        }
    }
    let expected = n - pp_graph::stats::num_components(g);
    if edges.len() != expected {
        return Err(format!(
            "forest has {} edges, spanning needs {expected}",
            edges.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs, BfsMode};
    use crate::sssp::dijkstra;
    use pp_graph::{gen, GraphBuilder};

    #[test]
    fn accepts_real_bfs_results() {
        let g = gen::rmat(8, 4, 1);
        for mode in [
            BfsMode::Push,
            BfsMode::Pull,
            BfsMode::direction_optimizing(),
        ] {
            let r = bfs(&g, 0, mode);
            validate_bfs(&g, 0, &r).unwrap();
        }
    }

    #[test]
    fn rejects_forged_parent() {
        let g = gen::path(5);
        let mut r = bfs(&g, 0, BfsMode::Push);
        r.parent[4] = 0; // not an edge
        assert!(validate_bfs(&g, 0, &r).is_err());
    }

    #[test]
    fn rejects_level_shortcut() {
        let g = gen::cycle(6);
        let mut r = bfs(&g, 0, BfsMode::Push);
        r.level[3] = 1; // claims a shortcut on the far side of the cycle
        assert!(validate_bfs(&g, 0, &r).is_err());
    }

    #[test]
    fn rejects_unvisited_reachable() {
        let g = gen::path(4);
        let mut r = bfs(&g, 0, BfsMode::Push);
        r.level[3] = crate::bfs::UNVISITED;
        r.parent[3] = crate::bfs::NO_PARENT;
        assert!(validate_bfs(&g, 0, &r).is_err());
    }

    #[test]
    fn accepts_real_sssp_and_rejects_perturbations() {
        let g = gen::with_random_weights(&gen::erdos_renyi(60, 150, 2), 1, 9, 2);
        let mut d = dijkstra(&g, 0);
        validate_sssp(&g, 0, &d).unwrap();
        // Any perturbation of a reached vertex breaks a condition.
        if let Some(v) = (1..60).find(|&v| d[v] != INF) {
            d[v] += 1;
            assert!(validate_sssp(&g, 0, &d).is_err());
        }
    }

    #[test]
    fn coloring_validator() {
        let g = gen::cycle(4);
        validate_coloring(&g, &[0, 1, 0, 1]).unwrap();
        assert!(validate_coloring(&g, &[0, 1, 0, 0]).is_err());
        assert!(validate_coloring(&g, &[0, 1, 0, u32::MAX]).is_err());
        assert!(validate_coloring(&g, &[0, 1]).is_err());
    }

    #[test]
    fn forest_validator() {
        let g = GraphBuilder::undirected(4)
            .weighted_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)])
            .build();
        validate_spanning_forest(&g, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]).unwrap();
        // Cycle.
        assert!(
            validate_spanning_forest(&g, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]).is_err()
        );
        // Wrong weight.
        assert!(validate_spanning_forest(&g, &[(0, 1, 7), (1, 2, 2), (2, 3, 3)]).is_err());
        // Too few edges.
        assert!(validate_spanning_forest(&g, &[(0, 1, 1)]).is_err());
    }
}
