//! Boruvka minimum spanning tree in push and pull form
//! (§3.7, §4.7, Algorithm 7 — Figure 4).
//!
//! Each round has the three phases the paper times separately:
//!
//! * **Find Minimum (FM)** — elect the minimum-weight outgoing edge of every
//!   supervertex. Pushing: every edge CAS-mins itself into *both* endpoint
//!   supervertices' shared slots. Pulling: each supervertex scans its own
//!   members' incident edges and writes its private slot.
//! * **Build Merge Tree (BMT)** — the elected edges define merge pointers;
//!   2-cycles are broken (lower label becomes root) and pointer jumping
//!   flattens every tree to its root.
//! * **Merge (M)** — vertices are relabeled to their root supervertex.
//!   Pushing scatters new labels into the merged members; pulling has every
//!   vertex look its own root up.
//!
//! Ties are broken by packing `(weight, edge index)` into the 64-bit slot
//! value, making all edge keys distinct — the classic fix that keeps the
//! merge-pointer graph free of long cycles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, NullProbe, Probe};
use rayon::prelude::*;

use crate::sync::atomic_min_u64;
use crate::Direction;

/// An empty minimum-edge slot.
const EMPTY: u64 = u64::MAX;

/// Per-round phase timings (Figure 4's three subplots).
#[derive(Clone, Copy, Debug)]
pub struct MstRoundInfo {
    /// Round index.
    pub round: usize,
    /// Active supervertices at round start.
    pub supervertices: usize,
    /// "Find Minimum" phase time.
    pub find_min: Duration,
    /// "Build Merge Tree" phase time.
    pub build_merge_tree: Duration,
    /// "Merge" phase time.
    pub merge: Duration,
}

/// Result of a Boruvka run.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// The spanning forest's edges (one tree per connected component).
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Sum of the selected edge weights.
    pub total_weight: u64,
    /// Per-round phase statistics.
    pub rounds: Vec<MstRoundInfo>,
}

/// Boruvka MST/MSF with the default probe.
pub fn boruvka(g: &CsrGraph, dir: Direction) -> MstResult {
    boruvka_probed(g, dir, &NullProbe)
}

/// Instrumented Boruvka.
pub fn boruvka_probed<P: Probe>(g: &CsrGraph, dir: Direction, probe: &P) -> MstResult {
    assert!(g.is_weighted(), "Boruvka requires edge weights");
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId, Weight)> = g.edges().collect();
    assert!(edges.len() < u32::MAX as usize, "edge index must fit u32");

    // Incident-edge index lists (CSR over the undirected edge list), used by
    // the pulling FM phase.
    let mut inc_off = vec![0u32; n + 1];
    for &(u, v, _) in &edges {
        inc_off[u as usize + 1] += 1;
        inc_off[v as usize + 1] += 1;
    }
    for i in 0..n {
        inc_off[i + 1] += inc_off[i];
    }
    let mut inc_idx = vec![0u32; edges.len() * 2];
    {
        let mut cursor = inc_off.clone();
        for (i, &(u, v, _)) in edges.iter().enumerate() {
            inc_idx[cursor[u as usize] as usize] = i as u32;
            cursor[u as usize] += 1;
            inc_idx[cursor[v as usize] as usize] = i as u32;
            cursor[v as usize] += 1;
        }
    }

    let mut sv: Vec<u32> = (0..n as u32).collect();
    let mut mst_edges: Vec<u32> = Vec::new();
    let mut rounds = Vec::new();

    loop {
        // Member lists: vertices of each active supervertex (counting sort).
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n {
            members[sv[v] as usize].push(v as VertexId);
        }
        let active: Vec<u32> = (0..n as u32)
            .filter(|&f| !members[f as usize].is_empty())
            .collect();

        // --- Phase FM: elect each supervertex's minimum outgoing edge. ---
        let t_fm = Instant::now();
        let min_slot: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(EMPTY)).collect();
        match dir {
            Direction::Push => {
                // Every edge overrides both endpoint supervertices' slots
                // (Algorithm 7 lines 10-14): shared writes, CAS-min.
                edges.par_iter().enumerate().for_each(|(i, &(u, v, w))| {
                    probe.branch_cond();
                    let (su, svv) = (sv[u as usize], sv[v as usize]);
                    if su != svv {
                        let packed = pack(w, i as u32);
                        for s in [su, svv] {
                            // W(i): write conflict on min_e[s] (§4.7).
                            let (_, attempts) = atomic_min_u64(&min_slot[s as usize], packed);
                            for _ in 0..attempts {
                                probe.atomic_rmw(addr_of_index(&min_slot, s as usize), 8);
                            }
                        }
                    }
                });
            }
            Direction::Pull => {
                // Each supervertex picks its own minimum (lines 15-17): the
                // slot is private to the task — no synchronization.
                active.par_iter().for_each(|&f| {
                    let mut best = EMPTY;
                    for &v in &members[f as usize] {
                        let lo = inc_off[v as usize] as usize;
                        let hi = inc_off[v as usize + 1] as usize;
                        for &ei in &inc_idx[lo..hi] {
                            probe.branch_cond();
                            let (u, w2, wt) = edges[ei as usize];
                            let other = if u == v { w2 } else { u };
                            // R: read conflict on the neighbor's label.
                            probe.read(addr_of_index(&sv, other as usize), 4);
                            if sv[other as usize] != f {
                                best = best.min(pack(wt, ei));
                            }
                        }
                    }
                    probe.write(addr_of_index(&min_slot, f as usize), 8);
                    min_slot[f as usize].store(best, Ordering::Relaxed);
                });
            }
        }
        let fm = t_fm.elapsed();

        // --- Phase BMT: merge pointers, cycle breaking, pointer jumping. ---
        let t_bmt = Instant::now();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut any_merge = false;
        for &f in &active {
            let slot = min_slot[f as usize].load(Ordering::Relaxed);
            if slot != EMPTY {
                let (u, v, _) = edges[unpack_idx(slot) as usize];
                let target = if sv[u as usize] == f {
                    sv[v as usize]
                } else {
                    sv[u as usize]
                };
                parent[f as usize] = target;
                any_merge = true;
            }
        }
        if !any_merge {
            rounds.push(MstRoundInfo {
                round: rounds.len(),
                supervertices: active.len(),
                find_min: fm,
                build_merge_tree: t_bmt.elapsed(),
                merge: Duration::ZERO,
            });
            break;
        }
        // Break mutual pairs: the lower label roots the merged tree.
        for &f in &active {
            let p = parent[f as usize];
            if parent[p as usize] == f && f < p {
                parent[f as usize] = f;
            }
        }
        // Pointer jumping to the root (O(log n) sweeps).
        loop {
            let mut changed = false;
            for &f in &active {
                let p = parent[f as usize];
                let gp = parent[p as usize];
                if p != gp {
                    parent[f as usize] = gp;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Every non-root supervertex contributes its elected edge.
        for &f in &active {
            if parent[f as usize] != f {
                let slot = min_slot[f as usize].load(Ordering::Relaxed);
                debug_assert_ne!(slot, EMPTY, "non-root must have an edge");
                mst_edges.push(unpack_idx(slot));
            }
        }
        let bmt = t_bmt.elapsed();

        // --- Phase M: relabel vertices to their root supervertex. ---
        let t_m = Instant::now();
        match dir {
            Direction::Push => {
                // Scatter the root label into merged members (remote-style
                // stores through an atomic view of the label array).
                let sv_cells: Vec<std::sync::atomic::AtomicU32> = sv
                    .iter()
                    .map(|&s| std::sync::atomic::AtomicU32::new(s))
                    .collect();
                active.par_iter().for_each(|&f| {
                    let root = parent[f as usize];
                    if root != f {
                        for &v in &members[f as usize] {
                            probe.atomic_rmw(addr_of_index(&sv_cells, v as usize), 4);
                            sv_cells[v as usize].store(root, Ordering::Relaxed);
                        }
                    }
                });
                sv = sv_cells.into_iter().map(|c| c.into_inner()).collect();
            }
            Direction::Pull => {
                // Every vertex looks up its own root: owned writes only.
                let parent_ref = &parent;
                sv.par_iter_mut().for_each(|s| {
                    probe.read(addr_of_index(parent_ref, *s as usize), 4);
                    *s = parent_ref[*s as usize];
                });
            }
        }
        let m = t_m.elapsed();

        rounds.push(MstRoundInfo {
            round: rounds.len(),
            supervertices: active.len(),
            find_min: fm,
            build_merge_tree: bmt,
            merge: m,
        });
    }

    mst_edges.sort_unstable();
    mst_edges.dedup();
    let chosen: Vec<(VertexId, VertexId, Weight)> =
        mst_edges.iter().map(|&i| edges[i as usize]).collect();
    let total_weight = chosen.iter().map(|&(_, _, w)| w as u64).sum();
    MstResult {
        edges: chosen,
        total_weight,
        rounds,
    }
}

#[inline]
fn pack(weight: Weight, idx: u32) -> u64 {
    ((weight as u64) << 32) | idx as u64
}

#[inline]
fn unpack_idx(packed: u64) -> u32 {
    packed as u32
}

/// Sequential Kruskal reference (union–find) for validation.
pub fn kruskal_seq(g: &CsrGraph) -> (Vec<(VertexId, VertexId, Weight)>, u64) {
    assert!(g.is_weighted());
    let n = g.num_vertices();
    let mut edges: Vec<(Weight, VertexId, VertexId)> =
        g.edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut chosen = Vec::new();
    let mut total = 0u64;
    for (w, u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            chosen.push((u, v, w));
            total += w as u64;
        }
    }
    (chosen, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::CountingProbe;

    fn weighted(seed: u64) -> CsrGraph {
        gen::with_random_weights(&gen::rmat(7, 5, seed), 1, 1000, seed ^ 0xff)
    }

    #[test]
    fn matches_kruskal_weight_on_random_graphs() {
        for seed in 0..4 {
            let g = weighted(seed);
            let (_, expected) = kruskal_seq(&g);
            for dir in Direction::BOTH {
                let r = boruvka(&g, dir);
                assert_eq!(r.total_weight, expected, "{dir:?} seed {seed}");
            }
        }
    }

    #[test]
    fn spanning_tree_edge_count() {
        // A connected graph's MST has exactly n-1 edges.
        let g = gen::with_random_weights(&gen::road_grid(7, 8, 0.8, 2), 1, 50, 3);
        assert!(pp_graph::stats::is_connected(&g));
        for dir in Direction::BOTH {
            let r = boruvka(&g, dir);
            assert_eq!(r.edges.len(), g.num_vertices() - 1, "{dir:?}");
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        // Two components: n - 2 edges in the spanning forest.
        let g = GraphBuilder::undirected(6)
            .weighted_edges([(0, 1, 3), (1, 2, 4), (3, 4, 1), (4, 5, 2)])
            .build();
        for dir in Direction::BOTH {
            let r = boruvka(&g, dir);
            assert_eq!(r.edges.len(), 4, "{dir:?}");
            assert_eq!(r.total_weight, 10);
        }
    }

    #[test]
    fn unique_mst_matches_exactly() {
        // Distinct weights ⇒ unique MST ⇒ identical edge sets across
        // directions and the reference.
        let g = GraphBuilder::undirected(5)
            .weighted_edges([
                (0, 1, 10),
                (0, 2, 20),
                (1, 2, 30),
                (1, 3, 40),
                (2, 4, 50),
                (3, 4, 60),
            ])
            .build();
        let (mut kedges, kw) = kruskal_seq(&g);
        kedges.sort_unstable();
        for dir in Direction::BOTH {
            let mut r = boruvka(&g, dir);
            r.edges.sort_unstable();
            assert_eq!(r.edges, kedges, "{dir:?}");
            assert_eq!(r.total_weight, kw);
        }
    }

    #[test]
    fn heavy_ties_still_yield_optimal_weight() {
        // All weights equal: any spanning tree is minimal; weight must be
        // (n-1)·w.
        let g = GraphBuilder::undirected(8)
            .weighted_edges(
                gen::complete(8)
                    .edges()
                    .map(|(u, v, _)| (u, v, 7))
                    .collect::<Vec<_>>(),
            )
            .build();
        for dir in Direction::BOTH {
            let r = boruvka(&g, dir);
            assert_eq!(r.total_weight, 7 * 7, "{dir:?}");
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let g = gen::with_random_weights(&gen::path(64), 1, 9, 4);
        for dir in Direction::BOTH {
            let r = boruvka(&g, dir);
            assert!(
                r.rounds.len() <= 8,
                "{dir:?}: {} rounds for 64 vertices",
                r.rounds.len()
            );
            // Supervertex counts decline geometrically.
            for pair in r.rounds.windows(2) {
                assert!(pair[1].supervertices <= pair[0].supervertices);
            }
        }
    }

    #[test]
    fn push_uses_cas_pull_does_not() {
        // §4.7: pushing resolves FM write conflicts via CAS; pulling has
        // only private writes.
        let g = weighted(9);
        let probe = CountingProbe::new();
        boruvka_probed(&g, Direction::Push, &probe);
        assert!(probe.counts().atomics > 0);

        let probe = CountingProbe::new();
        boruvka_probed(&g, Direction::Pull, &probe);
        assert_eq!(probe.counts().atomics, 0);
        assert_eq!(probe.counts().locks, 0);
    }

    #[test]
    fn single_vertex_and_empty() {
        let empty = GraphBuilder::undirected(0)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        let single = GraphBuilder::undirected(1)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        for dir in Direction::BOTH {
            assert_eq!(boruvka(&empty, dir).edges.len(), 0);
            assert_eq!(boruvka(&single, dir).total_weight, 0);
        }
    }

    #[test]
    #[should_panic(expected = "requires edge weights")]
    fn rejects_unweighted() {
        boruvka(&gen::path(3), Direction::Push);
    }
}
