//! PRAM machine models and the push/pull cost analysis of §4.
//!
//! The paper derives time/work bounds, conflict counts, and atomic/lock
//! counts for push and pull variants of seven algorithms under the CRCW-CB
//! and CREW PRAM variants (§2.1), built from two primitives:
//!
//! * **`k`-relaxation** — simultaneously propagating updates from/to `k`
//!   vertices to/from one of their neighbors (push/pull respectively);
//! * **`k`-filter** — extracting the vertices updated by one or more
//!   relaxations (non-trivial only when pushing).
//!
//! This crate implements those primitives and the per-algorithm formulas as
//! executable cost models, plus the two simulation lemmas of §2.1 (limiting
//! processors, CRCW→CREW/EREW slowdown). Costs are asymptotic estimates with
//! unit constants: they are meant for *comparisons between variants* (who is
//! slower, by what factor, in which model), which is exactly how §4 uses
//! them. Integration tests cross-check the conflict/atomic predictions
//! against the instrumented kernels of `pp-core`.

pub mod algos;
pub mod model;
pub mod primitives;

pub use algos::{Analysis, ConflictProfile, Workload};
pub use model::{Cost, Direction, PramModel};
pub use primitives::{k_filter, k_relaxation};

#[cfg(test)]
mod tests {
    use super::*;

    /// §4.9 "Complexity": for PR and TC, pulling beats pushing in CREW by a
    /// logarithmic factor; in CRCW-CB they tie.
    #[test]
    fn section_4_9_complexity_claims() {
        let w = Workload::new(1 << 20, 1 << 24).with_iters(10);
        let p = 16;

        let pr_pull = algos::pagerank(&w, p, PramModel::Crew, Direction::Pull);
        let pr_push_crew = algos::pagerank(&w, p, PramModel::Crew, Direction::Push);
        let pr_push_crcw = algos::pagerank(&w, p, PramModel::CrcwCb, Direction::Push);
        assert!(pr_push_crew.cost.time > pr_pull.cost.time * 2.0);
        assert!((pr_push_crcw.cost.time - pr_pull.cost.time).abs() < 1e-9);

        let tc_pull = algos::triangle_count(&w, p, PramModel::Crew, Direction::Pull);
        let tc_push_crew = algos::triangle_count(&w, p, PramModel::Crew, Direction::Push);
        assert!(tc_push_crew.cost.work > tc_pull.cost.work);
    }

    /// §4.9 "Atomics/Locks": pulling removes atomics/locks completely for
    /// TC, PR, BFS, Δ-stepping, and MST.
    #[test]
    fn section_4_9_pull_removes_sync() {
        let w = Workload::new(1 << 16, 1 << 20).with_iters(5);
        let p = 8;
        for analysis in [
            algos::pagerank(&w, p, PramModel::CrcwCb, Direction::Pull),
            algos::triangle_count(&w, p, PramModel::CrcwCb, Direction::Pull),
            algos::bfs(&w, p, PramModel::CrcwCb, Direction::Pull),
            algos::sssp_delta(&w, p, PramModel::CrcwCb, Direction::Pull, 8.0, 4.0),
            algos::boruvka(&w, p, PramModel::CrcwCb, Direction::Pull),
        ] {
            assert_eq!(analysis.profile.atomics, 0.0);
            assert_eq!(analysis.profile.locks, 0.0);
        }
    }

    /// §4.9 "Write/Read Conflicts": traversals entail more read conflicts
    /// with pulling; pushing entails write conflicts.
    #[test]
    fn section_4_9_conflict_asymmetry() {
        let w = Workload::new(1 << 16, 1 << 20);
        let p = 8;
        let push = algos::bfs(&w, p, PramModel::CrcwCb, Direction::Push);
        let pull = algos::bfs(&w, p, PramModel::CrcwCb, Direction::Pull);
        assert!(push.profile.write_conflicts > 0.0);
        assert_eq!(pull.profile.write_conflicts, 0.0);
        assert!(pull.profile.read_conflicts > push.profile.write_conflicts);
    }
}
