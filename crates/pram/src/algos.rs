//! Per-algorithm cost formulas from §4.1–§4.7.
//!
//! Every function returns an [`Analysis`]: an asymptotic [`Cost`] plus a
//! [`ConflictProfile`] (read/write conflicts and the atomics/locks they
//! translate into, §4.9). Conflict counts are upper bounds with unit
//! constants, suitable for variant-vs-variant comparison and for
//! order-of-magnitude cross-checks against instrumented runs.

use crate::model::{log2c, Cost, Direction, PramModel};
use crate::primitives::{k_bar, k_filter, k_relaxation};

/// Graph/algorithm parameters feeding the formulas. Mirrors the notation of
/// §2.2: `n`, `m`, `d̂`, `D`, and the iteration count `L` where applicable.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Vertex count `n`.
    pub n: f64,
    /// Edge count `m`.
    pub m: f64,
    /// Maximum degree `d̂`.
    pub d_max: f64,
    /// Diameter `D` (drives BFS/BC rounds).
    pub diameter: f64,
    /// Iteration count `L` (PR power iterations, BGC rounds).
    pub iters: f64,
}

impl Workload {
    /// A workload with defaults `d̂ = 2m/n`, `D = log2 n`, `L = 1`.
    pub fn new(n: usize, m: usize) -> Self {
        let (nf, mf) = (n as f64, m as f64);
        Self {
            n: nf,
            m: mf,
            d_max: (2.0 * mf / nf.max(1.0)).max(1.0),
            diameter: log2c(nf),
            iters: 1.0,
        }
    }

    /// Sets the maximum degree `d̂`.
    pub fn with_d_max(mut self, d_max: f64) -> Self {
        self.d_max = d_max;
        self
    }

    /// Sets the diameter `D`.
    pub fn with_diameter(mut self, d: f64) -> Self {
        self.diameter = d;
        self
    }

    /// Sets the iteration count `L`.
    pub fn with_iters(mut self, l: usize) -> Self {
        self.iters = l as f64;
        self
    }
}

/// Conflicts and the synchronization they induce (§4.9). Values are
/// asymptotic upper bounds (unit constants).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConflictProfile {
    /// Concurrent reads of one cell (must be resolved only under EREW).
    pub read_conflicts: f64,
    /// Concurrent writes to one cell.
    pub write_conflicts: f64,
    /// CAS/FAA operations resolving integer write conflicts.
    pub atomics: f64,
    /// Lock acquisitions resolving float write conflicts (no CPU float
    /// atomics, §4.1).
    pub locks: f64,
}

/// The outcome of analyzing one (algorithm, direction, model) combination.
#[derive(Clone, Copy, Debug)]
pub struct Analysis {
    /// Asymptotic time/work.
    pub cost: Cost,
    /// Conflict and synchronization profile.
    pub profile: ConflictProfile,
}

/// §4.1 PageRank: `L` power-iteration steps, each relaxing all `m` edges.
/// Pull: `O(L(m/P + d̂))` time, `O(Lm)` work, no sync. Push: same in
/// CRCW-CB, `log d̂` more in CREW; `O(Lm)` float write conflicts → locks.
pub fn pagerank(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let per_iter = k_relaxation(w.m, p, model, dir, w.d_max)
        .par(Cost::new(w.d_max, 0.0))
        .then(Cost::new(k_bar(w.n, p), w.n)); // rank write-back sweep
    let cost = per_iter.repeat(w.iters);
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: w.iters * w.m,
            locks: w.iters * w.m,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: w.iters * w.m,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.2 Triangle counting (NodeIterator): `O(m·d̂)` relaxation volume. Both
/// directions read-conflict `O(m·d̂)`; push adds as many write conflicts,
/// resolved by FAA.
pub fn triangle_count(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let volume = w.m * w.d_max;
    let cost = k_relaxation(volume, p, model, dir, w.d_max).par(Cost::new(w.d_max, 0.0));
    let profile = match dir {
        Direction::Push => ConflictProfile {
            read_conflicts: volume,
            write_conflicts: volume,
            atomics: volume,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: volume,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.3 BFS over `D` rounds with frontier sizes summing to `n`.
/// Pull: `O(D(m/P + d̂))` time, `O(Dm)` work (every round scans all edges).
/// Push CRCW-CB: `O(m/P + D(d̂ + log P))` time, `O(m)` work; CREW adds a
/// `log d̂` factor. Push issues `O(m)` CAS; pull has `O(Dm)` read conflicts.
pub fn bfs(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let pf = p as f64;
    let cost = match dir {
        Direction::Pull => Cost::new(w.diameter * (w.m / pf + w.d_max), w.diameter * w.m),
        Direction::Push => {
            let lg = match model {
                PramModel::CrcwCb => 1.0,
                _ => log2c(w.d_max),
            };
            Cost::new(
                (w.m / pf + w.diameter * (w.d_max + log2c(pf))) * lg,
                w.m * lg,
            )
        }
    };
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: w.m,
            atomics: w.m,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: w.diameter * w.m,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.4 Δ-stepping SSSP. `epochs = L/Δ` (max weighted distance over Δ) and
/// `l_delta` inner iterations per epoch. Pull: `O((L/Δ)·lΔ·(m/P + d̂))` time,
/// `O((L/Δ)·m·lΔ)` work. Push: `O(m·lΔ/P + (L/Δ)·lΔ·d̂)` time, `O(m·lΔ)`
/// work in CRCW-CB (edges of each vertex relax in only one epoch).
pub fn sssp_delta(
    w: &Workload,
    p: usize,
    model: PramModel,
    dir: Direction,
    epochs: f64,
    l_delta: f64,
) -> Analysis {
    let pf = p as f64;
    let cost = match dir {
        Direction::Pull => Cost::new(
            epochs * l_delta * (w.m / pf + w.d_max),
            epochs * l_delta * w.m,
        ),
        Direction::Push => {
            let lg = match model {
                PramModel::CrcwCb => 1.0,
                _ => log2c(w.d_max),
            };
            Cost::new(
                (w.m * l_delta / pf + epochs * l_delta * w.d_max) * lg,
                w.m * l_delta * lg,
            )
        }
    };
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: w.m * l_delta,
            atomics: w.m * l_delta,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: epochs * w.m * l_delta,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.5 Betweenness centrality: dominated by `2n` BFS invocations (forward
/// counting + backward accumulation). The float accumulation operator turns
/// push's conflicts into locks; pull's stay integer-resolvable (Madduri et
/// al.'s observation, reproduced in §4.9).
pub fn bc(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let per_source = bfs(w, p, model, dir);
    let cost = per_source.cost.repeat(2.0 * w.n);
    let b = per_source.profile;
    // §4.9: BC is the exception where both directions conflict on updates —
    // the *type* differs: floats when pushing (→ locks), integers when
    // pulling (ready-counter bookkeeping à la Madduri et al. → atomics).
    // Each traversal has O(m) conflicting updates.
    let updates = 2.0 * w.n * w.m;
    let profile = match dir {
        Direction::Push => ConflictProfile {
            read_conflicts: 2.0 * w.n * b.read_conflicts,
            write_conflicts: updates,
            locks: updates,
            atomics: 0.0,
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: 2.0 * w.n * b.read_conflicts,
            write_conflicts: 0.0,
            atomics: updates,
            locks: 0.0,
        },
    };
    Analysis { cost, profile }
}

/// §4.6 Boman graph coloring: `L` rounds, each a `|B|`-relaxation with
/// `|B| = Θ(n)` worst case plus a full conflict sweep: `O(L(m/P + d̂))`
/// time, `O(Lm)` work; push pays `log d̂` in CREW. Both directions resolve
/// conflicts with CAS (§4.6).
pub fn coloring(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let per_iter = k_relaxation(w.m, p, model, dir, w.d_max).par(Cost::new(w.d_max, 0.0));
    let cost = per_iter.repeat(w.iters);
    let conflicts = w.iters * w.m;
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: conflicts,
            atomics: conflicts,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: conflicts,
            atomics: conflicts,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.7 Boruvka MST: `O(log n)` rounds of find-minimum + merge;
/// `O(n²/P)` time and `O(n²)` work overall (supervertex degrees can reach
/// `Θ(n)`), with a further `log n` factor for push in CREW. Push handles
/// write conflicts with `O(n²)` CAS.
pub fn boruvka(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let n2 = w.n * w.n;
    let base = Cost::new(n2 / p as f64, n2);
    let cost = match (dir, model) {
        (Direction::Push, PramModel::Crew) | (Direction::Push, PramModel::Erew) => {
            base.scale(log2c(w.n))
        }
        _ => base,
    };
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: n2,
            atomics: n2,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: n2,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// Connected components by label propagation (the connectivity core of
/// §3.7's supervertex machinery, isolated as the simplest iterative scheme).
/// `rounds` is the label-propagation distance (≤ diameter). Pull rescans all
/// edges every round: `O(R(m/P + d̂))` time, `O(Rm)` work, no sync. Push
/// relaxes an edge only when its source label improves — `O(Rm)` CAS worst
/// case but `O(m)` typical — and pays the CREW `log d̂` merge factor.
pub fn connected_components(
    w: &Workload,
    p: usize,
    model: PramModel,
    dir: Direction,
    rounds: f64,
) -> Analysis {
    let pf = p as f64;
    let cost = match dir {
        Direction::Pull => Cost::new(rounds * (w.m / pf + w.d_max), rounds * w.m),
        Direction::Push => {
            let lg = match model {
                PramModel::CrcwCb => 1.0,
                _ => log2c(w.d_max),
            };
            Cost::new(
                (w.m / pf + rounds * (w.d_max + log2c(pf))) * lg,
                rounds * w.m * lg,
            )
        }
    };
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: rounds * w.m,
            atomics: rounds * w.m,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: rounds * w.m,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// k-core decomposition by parallel peeling over `rounds` waves (bounded by
/// the degeneracy times the per-level wave count). Structurally BFS-like:
/// push decrements each arc's counter at most once overall (`O(m)` FAAs,
/// `O(m)` work), pull recounts live neighbors every wave (`O(R·m)` reads,
/// no synchronization) — §4.9's trade in its purest integer form.
pub fn kcore(w: &Workload, p: usize, model: PramModel, dir: Direction, rounds: f64) -> Analysis {
    let pf = p as f64;
    let cost = match dir {
        Direction::Pull => Cost::new(rounds * (w.m / pf + w.d_max), rounds * w.m),
        Direction::Push => {
            let lg = match model {
                PramModel::CrcwCb => 1.0,
                _ => log2c(w.d_max),
            };
            Cost::new((w.m / pf + rounds * (w.d_max + log2c(pf))) * lg, w.m * lg)
        }
    };
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: w.m,
            atomics: w.m,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: rounds * w.m,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// Bellman–Ford SSSP (the Δ→∞ limit of §4.4) over `rounds` relaxation
/// rounds (the weighted hop radius). Push relaxes only improved frontiers
/// (`O(m)` typical, `O(Rm)` worst-case CAS); pull rescans everything every
/// round.
pub fn bellman_ford(
    w: &Workload,
    p: usize,
    model: PramModel,
    dir: Direction,
    rounds: f64,
) -> Analysis {
    // Identical shape to Δ-stepping with a single epoch whose inner
    // iteration count is the hop radius.
    sssp_delta(w, p, model, dir, 1.0, rounds)
}

/// Community label propagation: `L` synchronous iterations, each moving all
/// `m` arc labels. The vote *multiset* must reach the deciding thread: pull
/// gathers it read-only; push deposits into shared ballots, one lock per
/// arc per iteration — the lock-heavy profile of push-PR (§4.1) with `L·m`
/// locks.
pub fn label_propagation(w: &Workload, p: usize, model: PramModel, dir: Direction) -> Analysis {
    let per_iter = k_relaxation(w.m, p, model, dir, w.d_max).par(Cost::new(w.d_max, 0.0));
    let cost = per_iter.repeat(w.iters);
    let volume = w.iters * w.m;
    let profile = match dir {
        Direction::Push => ConflictProfile {
            write_conflicts: volume,
            locks: volume,
            ..Default::default()
        },
        Direction::Pull => ConflictProfile {
            read_conflicts: volume,
            ..Default::default()
        },
    };
    Analysis { cost, profile }
}

/// §4.8 "Directed Graphs": on digraphs, pushing iterates out-edges of a
/// subset of vertices while pulling iterates in-edges of all vertices, so
/// the `d̂` in each bound specializes to `d̂_out` (push) or `d̂_in` (pull).
/// This wraps any of the undirected analyses with the appropriate maximum
/// degree substituted.
pub fn directed<F>(analysis: F, w: &Workload, d_out: f64, d_in: f64, dir: Direction) -> Analysis
where
    F: Fn(&Workload) -> Analysis,
{
    let w_dir = match dir {
        Direction::Push => w.with_d_max(d_out),
        Direction::Pull => w.with_d_max(d_in),
    };
    analysis(&w_dir)
}

/// BFS per-round frontier cost, exposed for fine-grained comparisons (the
/// push/pull switching analyses of §5 reason about single rounds): cost of
/// round with frontier size `f` where pushing explores `f·d̂` arcs and
/// pulling scans all `m`.
pub fn bfs_round(w: &Workload, p: usize, model: PramModel, dir: Direction, frontier: f64) -> Cost {
    match dir {
        Direction::Pull => Cost::new(w.m / p as f64 + w.d_max, w.m),
        Direction::Push => {
            let explored = frontier * w.d_max;
            k_relaxation(explored, p, model, dir, w.d_max).then(k_filter(explored, p, w.n, dir))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Workload {
        Workload::new(1 << 16, 1 << 20)
            .with_d_max(512.0)
            .with_diameter(12.0)
            .with_iters(20)
    }

    #[test]
    fn pagerank_push_crew_is_log_slower() {
        let pull = pagerank(&w(), 16, PramModel::Crew, Direction::Pull);
        let push = pagerank(&w(), 16, PramModel::Crew, Direction::Push);
        let ratio = push.cost.work / pull.cost.work;
        assert!(ratio > 4.0, "expected ≈log d̂ work blowup, got {ratio}");
        assert_eq!(push.profile.locks, 20.0 * (1 << 20) as f64);
        assert_eq!(pull.profile.locks, 0.0);
    }

    #[test]
    fn bfs_push_is_work_efficient() {
        // §4.3: push does O(m) work, pull O(Dm).
        let push = bfs(&w(), 16, PramModel::CrcwCb, Direction::Push);
        let pull = bfs(&w(), 16, PramModel::CrcwCb, Direction::Pull);
        assert!(pull.cost.work / push.cost.work > 10.0);
    }

    #[test]
    fn sssp_push_cheaper_since_single_epoch_relaxation() {
        // §4.4: "Pushing achieves a smaller cost, since we relax the edges
        // leaving each node in only one of L/Δ epochs."
        let push = sssp_delta(&w(), 16, PramModel::CrcwCb, Direction::Push, 10.0, 3.0);
        let pull = sssp_delta(&w(), 16, PramModel::CrcwCb, Direction::Pull, 10.0, 3.0);
        assert!(push.cost.work < pull.cost.work);
        assert_eq!(push.profile.atomics, (1 << 20) as f64 * 3.0);
    }

    #[test]
    fn bc_push_uses_locks_pull_uses_atomics() {
        // §4.9: BC changes the conflict type from float to int.
        let push = bc(&w(), 16, PramModel::CrcwCb, Direction::Push);
        let pull = bc(&w(), 16, PramModel::CrcwCb, Direction::Pull);
        assert!(push.profile.locks > 0.0);
        assert_eq!(push.profile.atomics, 0.0);
        assert!(pull.profile.atomics > 0.0);
        assert_eq!(pull.profile.locks, 0.0);
    }

    #[test]
    fn coloring_both_directions_use_cas() {
        for dir in Direction::BOTH {
            let a = coloring(&w(), 16, PramModel::CrcwCb, dir);
            assert!(a.profile.atomics > 0.0, "{dir:?}");
            assert_eq!(a.profile.locks, 0.0);
        }
    }

    #[test]
    fn boruvka_quadratic_work() {
        let a = boruvka(&w(), 16, PramModel::CrcwCb, Direction::Pull);
        let n = (1 << 16) as f64;
        assert_eq!(a.cost.work, n * n);
        assert_eq!(a.cost.time, n * n / 16.0);
    }

    #[test]
    fn bfs_round_crossover_with_frontier_size() {
        // Small frontier: pushing explores few arcs and wins. Frontier ≈ n:
        // pushing explores ≈ m arcs plus filter overhead and the advantage
        // evaporates — the crossover behind direction-optimizing BFS.
        let wl = w();
        let small_push = bfs_round(&wl, 16, PramModel::CrcwCb, Direction::Push, 4.0);
        let pull = bfs_round(&wl, 16, PramModel::CrcwCb, Direction::Pull, 4.0);
        assert!(small_push.work < pull.work);
        let huge_push = bfs_round(&wl, 16, PramModel::CrcwCb, Direction::Push, wl.n);
        assert!(huge_push.work > pull.work * 8.0);
    }

    #[test]
    fn components_pull_work_scales_with_rounds() {
        let pull8 = connected_components(&w(), 16, PramModel::CrcwCb, Direction::Pull, 8.0);
        let pull16 = connected_components(&w(), 16, PramModel::CrcwCb, Direction::Pull, 16.0);
        assert_eq!(pull16.cost.work, 2.0 * pull8.cost.work);
        assert_eq!(pull8.profile.atomics, 0.0);
        let push = connected_components(&w(), 16, PramModel::CrcwCb, Direction::Push, 8.0);
        assert!(push.profile.atomics > 0.0);
    }

    #[test]
    fn kcore_push_atomics_bounded_by_m() {
        let m = (1 << 20) as f64;
        let push = kcore(&w(), 16, PramModel::CrcwCb, Direction::Push, 40.0);
        assert_eq!(push.profile.atomics, m);
        assert_eq!(push.cost.work, m);
        let pull = kcore(&w(), 16, PramModel::CrcwCb, Direction::Pull, 40.0);
        assert_eq!(pull.profile.read_conflicts, 40.0 * m);
        assert!(pull.cost.work > push.cost.work);
    }

    #[test]
    fn kcore_push_pays_log_in_crew() {
        let cb = kcore(&w(), 16, PramModel::CrcwCb, Direction::Push, 10.0);
        let crew = kcore(&w(), 16, PramModel::Crew, Direction::Push, 10.0);
        assert!(crew.cost.work > 4.0 * cb.cost.work);
    }

    #[test]
    fn bellman_ford_is_single_epoch_delta_stepping() {
        let bf = bellman_ford(&w(), 16, PramModel::CrcwCb, Direction::Push, 7.0);
        let ds = sssp_delta(&w(), 16, PramModel::CrcwCb, Direction::Push, 1.0, 7.0);
        assert_eq!(bf.cost.work, ds.cost.work);
        assert_eq!(bf.profile.atomics, ds.profile.atomics);
    }

    #[test]
    fn label_propagation_push_locks_like_pagerank() {
        // Both deposit float/ballot updates under locks; same L·m profile.
        let lp = label_propagation(&w(), 16, PramModel::CrcwCb, Direction::Push);
        let pr = pagerank(&w(), 16, PramModel::CrcwCb, Direction::Push);
        assert_eq!(lp.profile.locks, pr.profile.locks);
        let pull = label_propagation(&w(), 16, PramModel::CrcwCb, Direction::Pull);
        assert_eq!(pull.profile.locks, 0.0);
        assert!(pull.profile.read_conflicts > 0.0);
    }

    #[test]
    fn workload_defaults() {
        let wl = Workload::new(1024, 4096);
        assert_eq!(wl.d_max, 8.0);
        assert_eq!(wl.diameter, 10.0);
        assert_eq!(wl.iters, 1.0);
    }

    #[test]
    fn directed_substitutes_the_right_degree() {
        // §4.8: a digraph with huge in-degrees but small out-degrees makes
        // pulling pay and pushing cheap in the CREW merge-tree factor.
        let wl = w();
        let (d_out, d_in) = (4.0, 4096.0);
        let mk = |w: &Workload| pagerank(w, 16, PramModel::Crew, Direction::Push);
        let push = directed(mk, &wl, d_out, d_in, Direction::Push);
        let mk = |w: &Workload| pagerank(w, 16, PramModel::Crew, Direction::Push);
        let pull_view = directed(mk, &wl, d_out, d_in, Direction::Pull);
        // The same (push) analysis evaluated at d̂_out vs d̂_in differs by
        // the log factor ratio: log2(4096)/log2(4) = 6.
        assert!(pull_view.cost.work / push.cost.work > 5.0);
    }
}
