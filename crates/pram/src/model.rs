//! PRAM variants, direction, cost algebra, and the simulation lemmas of
//! §2.1.

/// The three PRAM variants the paper considers, ordered weakest to
/// strongest (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PramModel {
    /// Exclusive-read exclusive-write: no concurrent accesses to a cell.
    Erew,
    /// Concurrent-read exclusive-write.
    Crew,
    /// Combining concurrent-read concurrent-write: concurrent writes combine
    /// through an associative, commutative operator.
    CrcwCb,
}

/// Push or pull (§3.8): pushing lets any thread modify any vertex; pulling
/// restricts each thread to the vertices it owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Updates flow from a thread's vertices to the shared state.
    Push,
    /// Updates are gathered into a thread's private state.
    Pull,
}

impl Direction {
    /// Both directions, for sweeps.
    pub const BOTH: [Direction; 2] = [Direction::Push, Direction::Pull];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Push => "Pushing",
            Direction::Pull => "Pulling",
        }
    }
}

/// An asymptotic (unit-constant) time/work pair: `time` is the span `S`,
/// `work` the total instruction count `W` (§2.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cost {
    /// Longest execution path.
    pub time: f64,
    /// Total instruction count.
    pub work: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        time: 0.0,
        work: 0.0,
    };

    /// Constructs a cost.
    pub fn new(time: f64, work: f64) -> Self {
        Self { time, work }
    }

    /// Sequential composition: times and works add.
    pub fn then(self, other: Cost) -> Cost {
        Cost::new(self.time + other.time, self.work + other.work)
    }

    /// `k` sequential repetitions.
    pub fn repeat(self, k: f64) -> Cost {
        Cost::new(self.time * k, self.work * k)
    }

    /// Uniform scaling of both components (model slowdowns).
    pub fn scale(self, f: f64) -> Cost {
        Cost::new(self.time * f, self.work * f)
    }

    /// Parallel composition: times max, works add.
    pub fn par(self, other: Cost) -> Cost {
        Cost::new(self.time.max(other.time), self.work + other.work)
    }
}

/// `log2(x)` clamped below at 1 — the paper's `log` factors are slowdowns
/// and never speed anything up for tiny arguments.
pub fn log2c(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// §2.1 "Limiting P" (Brent-style): a problem solvable on a `p`-processor
/// PRAM in time `S` runs on `p' < p` processors in `⌈S·p/p'⌉`.
pub fn limit_processors(cost: Cost, p: usize, p_new: usize) -> Cost {
    assert!(p_new >= 1 && p_new <= p, "p' must satisfy 1 ≤ p' ≤ p");
    Cost::new((cost.time * p as f64 / p_new as f64).ceil(), cost.work)
}

/// §2.1: simulating a CRCW (or CREW) algorithm on the next-weaker model
/// costs a `Θ(log n)` slowdown (and `M·P` memory, not tracked here). Applied
/// zero or more times to bridge from `from` down to `to`.
pub fn simulate_on_weaker(cost: Cost, from: PramModel, to: PramModel, n: f64) -> Cost {
    assert!(to <= from, "can only simulate on a weaker or equal model");
    let steps = (from as u8 - to as u8) as i32;
    cost.scale(log2c(n).powi(steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_algebra() {
        let a = Cost::new(2.0, 10.0);
        let b = Cost::new(3.0, 5.0);
        assert_eq!(a.then(b), Cost::new(5.0, 15.0));
        assert_eq!(a.par(b), Cost::new(3.0, 15.0));
        assert_eq!(a.repeat(4.0), Cost::new(8.0, 40.0));
        assert_eq!(a.scale(2.0), Cost::new(4.0, 20.0));
    }

    #[test]
    fn limit_processors_is_brents_lemma() {
        // S' = ceil(S * P / P').
        let c = limit_processors(Cost::new(100.0, 1000.0), 64, 16);
        assert_eq!(c.time, 400.0);
        assert_eq!(c.work, 1000.0, "work is unchanged");
    }

    #[test]
    #[should_panic(expected = "1 ≤ p'")]
    fn limit_processors_rejects_growth() {
        limit_processors(Cost::ZERO, 4, 8);
    }

    #[test]
    fn simulation_slowdown_is_log_per_step() {
        let c = Cost::new(1.0, 1.0);
        let n = 1024.0;
        let one = simulate_on_weaker(c, PramModel::CrcwCb, PramModel::Crew, n);
        assert_eq!(one.time, 10.0);
        let two = simulate_on_weaker(c, PramModel::CrcwCb, PramModel::Erew, n);
        assert_eq!(two.time, 100.0);
        let zero = simulate_on_weaker(c, PramModel::Crew, PramModel::Crew, n);
        assert_eq!(zero.time, 1.0);
    }

    #[test]
    fn model_ordering_weakest_first() {
        assert!(PramModel::Erew < PramModel::Crew);
        assert!(PramModel::Crew < PramModel::CrcwCb);
    }

    #[test]
    fn log2c_clamps() {
        assert_eq!(log2c(1.0), 1.0);
        assert_eq!(log2c(0.0), 1.0);
        assert_eq!(log2c(8.0), 3.0);
    }
}
