//! The two cost primitives of §4 ("Cost Derivations").
//!
//! All per-algorithm analyses are assembled from `k`-relaxation and
//! `k`-filter. Let `k̄ = max(1, k/P)`:
//!
//! * pulling `k`-relaxation: `O(k̄)` time, `O(k)` work;
//! * pushing `k`-relaxation in CRCW-CB: `O(k̄)` time, `O(k)` work (concurrent
//!   writes combine);
//! * pushing `k`-relaxation in CREW: `O(k̄·log d̂)` time, `O(k·log d̂)` work
//!   via forests of incomplete binary merge-trees;
//! * `k`-filter: `O(log P + k̄)` time, `O(min(k, n))` work via a prefix sum
//!   (needed only when pushing — pulling inspects every vertex anyway).

use crate::model::{log2c, Cost, Direction, PramModel};

/// `k̄ = max(1, k/P)`.
pub fn k_bar(k: f64, p: usize) -> f64 {
    (k / p as f64).max(1.0)
}

/// Cost of one `k`-relaxation (§4): propagating updates from/to `k` vertices
/// to/from one neighbor each. `d_max` is `d̂`, the maximum degree, which
/// bounds the height of the CREW merge trees.
pub fn k_relaxation(k: f64, p: usize, model: PramModel, dir: Direction, d_max: f64) -> Cost {
    let kb = k_bar(k, p);
    match (dir, model) {
        (Direction::Pull, _) => Cost::new(kb, k),
        (Direction::Push, PramModel::CrcwCb) => Cost::new(kb, k),
        // CREW (and EREW, which is no stronger) pay the merge-tree factor.
        (Direction::Push, PramModel::Crew) | (Direction::Push, PramModel::Erew) => {
            let lg = log2c(d_max);
            Cost::new(kb * lg, k * lg)
        }
    }
}

/// Cost of one `k`-filter (§4): extracting the set of updated vertices via a
/// prefix sum over at most `n` candidates. Pulling never needs it (it scans
/// all vertices regardless), so its cost there is zero.
pub fn k_filter(k: f64, p: usize, n: f64, dir: Direction) -> Cost {
    match dir {
        Direction::Pull => Cost::ZERO,
        Direction::Push => Cost::new(log2c(p as f64) + k_bar(k, p), k.min(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_bar_floors_at_one() {
        assert_eq!(k_bar(4.0, 16), 1.0);
        assert_eq!(k_bar(64.0, 16), 4.0);
    }

    #[test]
    fn pull_relaxation_is_model_independent() {
        for model in [PramModel::Erew, PramModel::Crew, PramModel::CrcwCb] {
            let c = k_relaxation(1024.0, 16, model, Direction::Pull, 100.0);
            assert_eq!(c, Cost::new(64.0, 1024.0));
        }
    }

    #[test]
    fn push_crcw_matches_pull() {
        let push = k_relaxation(1024.0, 16, PramModel::CrcwCb, Direction::Push, 100.0);
        let pull = k_relaxation(1024.0, 16, PramModel::CrcwCb, Direction::Pull, 100.0);
        assert_eq!(push, pull);
    }

    #[test]
    fn push_crew_pays_log_dmax() {
        let crcw = k_relaxation(1024.0, 16, PramModel::CrcwCb, Direction::Push, 256.0);
        let crew = k_relaxation(1024.0, 16, PramModel::Crew, Direction::Push, 256.0);
        assert_eq!(crew.time, crcw.time * 8.0);
        assert_eq!(crew.work, crcw.work * 8.0);
    }

    #[test]
    fn filter_only_costs_when_pushing() {
        assert_eq!(k_filter(100.0, 4, 1000.0, Direction::Pull), Cost::ZERO);
        let f = k_filter(100.0, 4, 1000.0, Direction::Push);
        assert_eq!(f.time, 2.0 + 25.0);
        assert_eq!(f.work, 100.0);
    }

    #[test]
    fn filter_work_capped_at_n() {
        let f = k_filter(5000.0, 4, 1000.0, Direction::Push);
        assert_eq!(f.work, 1000.0);
    }
}
